#include "src/sim/latency_probe.h"

#include <algorithm>
#include <cmath>

#include "src/core/metrics.h"

namespace emu {

void LatencyStats::Add(Picoseconds sample) {
  samples_.push_back(sample);
  histogram_.Observe(sample >= 0 ? static_cast<u64>(sample) : 0);
}

void LatencyStats::AddPacket(const Packet& packet) {
  Add(packet.egress_time() - packet.ingress_time());
}

double LatencyStats::MeanUs() const {
  if (samples_.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (Picoseconds s : samples_) {
    sum += static_cast<double>(s);
  }
  return sum / static_cast<double>(samples_.size()) / static_cast<double>(kPicosPerMicro);
}

double LatencyStats::MinUs() const {
  if (samples_.empty()) {
    return 0.0;
  }
  return ToMicroseconds(*std::min_element(samples_.begin(), samples_.end()));
}

double LatencyStats::MaxUs() const {
  if (samples_.empty()) {
    return 0.0;
  }
  return ToMicroseconds(*std::max_element(samples_.begin(), samples_.end()));
}

double LatencyStats::StdDevUs() const {
  if (samples_.size() < 2) {
    return 0.0;
  }
  const double mean = MeanUs();
  double acc = 0.0;
  for (Picoseconds s : samples_) {
    const double d = ToMicroseconds(s) - mean;
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double LatencyStats::PercentileUs(double p) const {
  if (samples_.empty()) {
    return 0.0;
  }
  const usize n = samples_.size();
  // Nearest-rank: smallest sample whose cumulative frequency >= p%. The
  // 1-based rank is ceil(p/100 * n), clamped into [1, n] so p=0 selects the
  // minimum and p=100 selects the maximum rather than reading past the end.
  usize rank = static_cast<usize>(std::ceil(p / 100.0 * static_cast<double>(n)));
  if (rank < 1) {
    rank = 1;
  }
  if (rank > n) {
    rank = n;
  }
  std::vector<Picoseconds> scratch = samples_;
  auto nth = scratch.begin() + static_cast<std::ptrdiff_t>(rank - 1);
  std::nth_element(scratch.begin(), nth, scratch.end());
  return ToMicroseconds(*nth);
}

double LatencyStats::TailToAverage() const {
  const double mean = MeanUs();
  return mean > 0.0 ? PercentileUs(99.0) / mean : 0.0;
}

void LatencyStats::RegisterMetrics(MetricsRegistry& registry,
                                   const std::string& prefix) const {
  registry.RegisterHistogram(prefix + "_ps", &histogram_);
  registry.Register(prefix + ".lost", &lost_);
}

void LatencyStats::Clear() {
  samples_.clear();
  histogram_.Clear();
  lost_ = 0;
}

}  // namespace emu
