#include "src/sim/latency_probe.h"

#include <algorithm>
#include <cmath>

namespace emu {

void LatencyStats::Add(Picoseconds sample) {
  samples_.push_back(sample);
  sorted_ = false;
}

void LatencyStats::AddPacket(const Packet& packet) {
  Add(packet.egress_time() - packet.ingress_time());
}

void LatencyStats::Sort() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double LatencyStats::MeanUs() const {
  if (samples_.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (Picoseconds s : samples_) {
    sum += static_cast<double>(s);
  }
  return sum / static_cast<double>(samples_.size()) / static_cast<double>(kPicosPerMicro);
}

double LatencyStats::MinUs() const {
  if (samples_.empty()) {
    return 0.0;
  }
  Sort();
  return ToMicroseconds(samples_.front());
}

double LatencyStats::MaxUs() const {
  if (samples_.empty()) {
    return 0.0;
  }
  Sort();
  return ToMicroseconds(samples_.back());
}

double LatencyStats::StdDevUs() const {
  if (samples_.size() < 2) {
    return 0.0;
  }
  const double mean = MeanUs();
  double acc = 0.0;
  for (Picoseconds s : samples_) {
    const double d = ToMicroseconds(s) - mean;
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double LatencyStats::PercentileUs(double p) const {
  if (samples_.empty()) {
    return 0.0;
  }
  Sort();
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const usize lo = static_cast<usize>(rank);
  const usize hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return ToMicroseconds(samples_[lo]) * (1.0 - frac) + ToMicroseconds(samples_[hi]) * frac;
}

double LatencyStats::TailToAverage() const {
  const double mean = MeanUs();
  return mean > 0.0 ? PercentileUs(99.0) / mean : 0.0;
}

void LatencyStats::Clear() {
  samples_.clear();
  sorted_ = true;
  lost_ = 0;
}

}  // namespace emu
