#include "src/sim/sim_host.h"

#include <cassert>

#include "src/core/metrics.h"
#include "src/obs/trace_hooks.h"

namespace emu {

const char* HostLifecycleName(HostLifecycle state) {
  switch (state) {
    case HostLifecycle::kUp: return "up";
    case HostLifecycle::kCrashed: return "crashed";
    case HostLifecycle::kRestarting: return "restarting";
  }
  return "?";
}

SimHost::SimHost(EventScheduler& scheduler, std::string name, MacAddress mac, Ipv4Address ip)
    : scheduler_(scheduler), name_(std::move(name)), mac_(mac), ip_(ip) {}

void SimHost::AttachUplink(Link* link, bool is_end_a) {
  uplink_ = link;
  uplink_end_a_ = is_end_a;
  if (is_end_a) {
    link->AttachA([this](Packet frame) { Receive(std::move(frame)); });
  } else {
    link->AttachB([this](Packet frame) { Receive(std::move(frame)); });
  }
}

void SimHost::Crash() {
  if (lifecycle_ == HostLifecycle::kCrashed) {
    return;
  }
  lifecycle_ = HostLifecycle::kCrashed;
  ++boot_epoch_;  // invalidates any in-flight boot completion
  ++crashes_;
  if (obs::TraceBuffer* tb = obs::ActiveBuffer()) {
    obs::EmitInstant(tb, "chaos.crash." + name_, scheduler_.now());
  }
}

void SimHost::Restart(Picoseconds boot_delay) {
  // A restart of an up host is a power-cycle: drop straight into the boot
  // window with crash semantics (Crash() keeps its own idempotence).
  if (lifecycle_ == HostLifecycle::kUp) {
    Crash();
  }
  lifecycle_ = HostLifecycle::kRestarting;
  const u64 epoch = ++boot_epoch_;
  const auto complete = [this, epoch] {
    if (boot_epoch_ != epoch) {
      return;  // superseded by a later crash/restart
    }
    lifecycle_ = HostLifecycle::kUp;
    ++restarts_;
    if (obs::TraceBuffer* tb = obs::ActiveBuffer()) {
      obs::EmitInstant(tb, "chaos.restart." + name_, scheduler_.now());
    }
    if (on_restart_) {
      on_restart_();
    }
  };
  if (boot_delay <= 0) {
    complete();
  } else {
    scheduler_.After(boot_delay, complete);
  }
}

void SimHost::RegisterMetrics(MetricsRegistry& metrics, const std::string& prefix) const {
  metrics.Register(prefix + ".sent", &sent_);
  metrics.Register(prefix + ".received", &received_);
  metrics.Register(prefix + ".lifecycle_dropped", &lifecycle_dropped_);
  metrics.Register(prefix + ".crashes", &crashes_);
  metrics.Register(prefix + ".restarts", &restarts_);
}

void SimHost::Send(Packet frame) {
  assert(uplink_ != nullptr && "host must be attached to a link");
  if (!up()) {
    ++lifecycle_dropped_;  // a dead host transmits nothing
    return;
  }
  ++sent_;
  // Flight recorder ingress point for simulator topologies: the sending
  // host assigns the flight id and opens the whole-flight span; the reply
  // arriving back at a host closes it.
  if (obs::TraceBuffer* tb = obs::ActiveBuffer()) {
    if (frame.trace_id() == 0) {
      frame.set_trace_id(obs::NextFlightId(tb));
    }
    obs::EmitAsyncBegin(tb, "pkt.flight", scheduler_.now(), frame.trace_id());
  }
  if (uplink_end_a_) {
    uplink_->SendToB(std::move(frame));
  } else {
    uplink_->SendToA(std::move(frame));
  }
}

void SimHost::Receive(Packet frame) {
  if (!up()) {
    // In-flight frame disposal: anything that reaches a crashed or booting
    // host vanishes, exactly as a dead NIC would drop it.
    ++lifecycle_dropped_;
    return;
  }
  ++received_;
  if (obs::TraceBuffer* tb = obs::ActiveBuffer()) {
    if (frame.trace_id() != 0) {
      obs::EmitAsyncEnd(tb, "pkt.flight", scheduler_.now(), frame.trace_id());
    }
  }
  if (app_) {
    app_(*this, std::move(frame));
  }
}

ServiceNode::ServiceNode(EventScheduler& scheduler, Service& service)
    : scheduler_(scheduler), target_(service), ports_(kNetFpgaPortCount) {}

void ServiceNode::AttachPort(u8 port, Link* link, bool is_end_a) {
  assert(port < ports_.size());
  ports_[port] = PortAttachment{link, is_end_a};
  const auto receiver = [this, port](Packet frame) { Receive(port, std::move(frame)); };
  if (is_end_a) {
    link->AttachA(receiver);
  } else {
    link->AttachB(receiver);
  }
}

void ServiceNode::Receive(u8 port, Packet frame) {
  frame.set_src_port(port);
  // The node's service time on the simulator timeline. (The CpuTarget's own
  // clock is a private domain; tracing it here keeps one coherent timeline.)
  if (obs::TraceBuffer* tb = obs::ActiveBuffer()) {
    if (frame.trace_id() != 0) {
      obs::EmitComplete(tb, "node.service", scheduler_.now(), processing_delay_);
    }
  }
  // Run the service (software semantics) on the frame now, emit the results
  // after the node's processing delay.
  auto outputs = target_.Deliver(std::move(frame));
  for (auto& out : outputs) {
    scheduler_.At(scheduler_.now() + processing_delay_,
                  [this, out = std::move(out)]() mutable { Emit(std::move(out)); });
  }
}

void ServiceNode::Emit(Packet frame) {
  const u8 mask = frame.dst_port_mask();
  for (u8 port = 0; port < ports_.size(); ++port) {
    if (((mask >> port) & 1u) == 0 || ports_[port].link == nullptr) {
      continue;
    }
    ++forwarded_;
    Packet copy = frame;
    if (ports_[port].is_end_a) {
      ports_[port].link->SendToB(std::move(copy));
    } else {
      ports_[port].link->SendToA(std::move(copy));
    }
  }
}

}  // namespace emu
