// memaslap-style Memcached workload generator (§5.4).
//
// The paper's Memcached evaluation uses memaslap "configured to use a mix of
// 90% GET and 10% SET requests with random keys". MemaslapLoadgen produces
// that stream as ready-to-inject UDP frames, plus the prewarm SETs that
// populate the store, from a deterministic seed.
#ifndef SRC_SIM_MEMASLAP_H_
#define SRC_SIM_MEMASLAP_H_

#include <string>

#include "src/common/rng.h"
#include "src/net/mac_address.h"
#include "src/net/memcached.h"
#include "src/net/packet.h"

namespace emu {

struct MemaslapConfig {
  MacAddress server_mac;
  Ipv4Address server_ip;
  MacAddress client_mac = MacAddress::FromU48(0x02'00'00'00'c1'00);
  Ipv4Address client_ip = Ipv4Address(10, 0, 0, 77);
  McProtocol protocol = McProtocol::kAscii;
  double get_fraction = 0.9;  // the 90/10 mix
  usize key_space = 1000;
  usize key_bytes = 6;    // the paper's initial prototype sizes
  usize value_bytes = 8;
  u64 seed = 1234;
};

class MemaslapLoadgen {
 public:
  explicit MemaslapLoadgen(MemaslapConfig config);

  // SET frames that populate every key once.
  Packet PrewarmFrame(usize index);
  usize prewarm_count() const { return config_.key_space; }

  // The i-th workload frame: GET with probability get_fraction, else SET,
  // uniform random key.
  Packet WorkloadFrame(usize index);

  // Fraction of frames that were GETs so far (for test assertions).
  double ObservedGetFraction() const;

  const MemaslapConfig& config() const { return config_; }

 private:
  std::string KeyName(usize key) const;
  std::string ValueFor(usize key) const;
  Packet MakeFrame(const McRequest& request);

  MemaslapConfig config_;
  Rng rng_;
  u64 gets_ = 0;
  u64 total_ = 0;
};

}  // namespace emu

#endif  // SRC_SIM_MEMASLAP_H_
