#include "src/sim/event_scheduler.h"

namespace emu {

void EventScheduler::At(Picoseconds when, Action action) {
  queue_.push(Event{when < now_ ? now_ : when, next_seq_++, std::move(action)});
}

bool EventScheduler::Step() {
  if (queue_.empty()) {
    return false;
  }
  // Move the event out before running it: the action may schedule more.
  Event event = queue_.top();
  queue_.pop();
  now_ = event.when;
  ++executed_;
  event.action();
  return true;
}

void EventScheduler::Run(usize max_events) {
  for (usize i = 0; i < max_events && Step(); ++i) {
  }
}

void EventScheduler::RunUntil(Picoseconds deadline) {
  while (!queue_.empty() && queue_.top().when <= deadline) {
    Step();
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
}

usize EventScheduler::RunWhileBefore(Picoseconds bound, usize max_events) {
  usize ran = 0;
  while (ran < max_events && !queue_.empty() && queue_.top().when < bound) {
    Step();
    ++ran;
  }
  return ran;
}

}  // namespace emu
