#include "src/sim/event_scheduler.h"

namespace emu {

bool EventScheduler::Step() {
  if (queue_.empty()) {
    return false;
  }
  Event event = queue_.top();  // POD copy; the closure stays pooled until run
  queue_.pop();
  now_ = event.when;
  ++executed_;
  event.run(*this, event.ctx);
  if (queue_.empty()) {
    // Epoch boundary: a drained queue proves no pooled closure is live, so
    // the backing arena can rewind to empty (chunks retained).
    pool_.Reset();
  }
  return true;
}

void EventScheduler::Run(usize max_events) {
  for (usize i = 0; i < max_events && Step(); ++i) {
  }
}

void EventScheduler::RunUntil(Picoseconds deadline) {
  while (!queue_.empty() && queue_.top().when <= deadline) {
    Step();
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
}

usize EventScheduler::RunWhileBefore(Picoseconds bound, usize max_events) {
  usize ran = 0;
  while (ran < max_events && !queue_.empty() && queue_.top().when < bound) {
    Step();
    ++ran;
  }
  return ran;
}

}  // namespace emu
