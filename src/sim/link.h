// Point-to-point link with bandwidth and propagation delay.
//
// A link delivers every frame perfectly unless impairment is enabled:
// EnableImpairment attaches a FrameImpairer whose fault points
// (`<name>.drop` / `.corrupt` / `.dup` / `.reorder` / `.delay`) are armed
// through a FaultRegistry plan. With the points disarmed the link's timing
// and delivery are bit-identical to an unimpaired link.
//
// A link may also span two shards of a parallel topology run: RouteRemote
// diverts one direction's completed transmissions to a sink (the parallel
// runner's inbox for the receiving shard) instead of the local event queue.
// Each handoff is stamped with its absolute arrival time and a per-direction
// sequence number, so the receiving shard can order simultaneous arrivals
// deterministically regardless of thread interleaving. The link's minimum
// transit time (serialization of the smallest frame plus propagation) is the
// conservative lookahead the runner synchronizes on.
#ifndef SRC_SIM_LINK_H_
#define SRC_SIM_LINK_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>

#include "src/fault/frame_impairer.h"
#include "src/net/packet.h"
#include "src/sim/event_scheduler.h"

namespace emu {

class MetricsRegistry;

class Link {
 public:
  using Receiver = std::function<void(Packet)>;

  // One cross-shard handoff: a frame plus everything the receiving shard
  // needs to schedule it deterministically.
  struct RemoteFrame {
    Picoseconds arrival = 0;
    u64 link_id = 0;  // runner-assigned, unique per routed direction
    u64 seq = 0;      // per-direction FIFO stamp, assigned by the sender
    Packet frame;
  };
  using RemoteSink = std::function<void(RemoteFrame)>;

  Link(EventScheduler& scheduler, u64 bits_per_second, Picoseconds propagation_delay)
      : scheduler_(scheduler),
        bits_per_second_(bits_per_second),
        propagation_delay_(propagation_delay) {}

  void AttachA(Receiver receiver) { end_a_ = std::move(receiver); }
  void AttachB(Receiver receiver) { end_b_ = std::move(receiver); }

  // Sends toward end B (from A) or end A (from B); the frame is delivered
  // after serialization + propagation, respecting link occupancy.
  void SendToB(Packet frame) { Transmit(std::move(frame), /*to_b=*/true); }
  void SendToA(Packet frame) { Transmit(std::move(frame), /*to_b=*/false); }

  // Registers this link's impairment fault points as `<name>.*` in the
  // registry. Both directions share the points and counters.
  // Mutually exclusive with RouteRemote: a shared impairer's RNG streams are
  // sampled in frame order, which two sender shards cannot reproduce.
  void EnableImpairment(FaultRegistry& registry, const std::string& name);

  // Per-direction impairment (`<name>.*` points owned by that direction
  // alone). This form COMPOSES with cross-shard routing: each direction's
  // points are sampled only in Transmit, which runs on that direction's
  // sending shard in its deterministic event order, so the streams replay
  // bit-exactly for any thread count. The two directions must use distinct
  // names — sharing a prefix would share FaultPoints (and their RNG streams)
  // across two sender shards, which is exactly the race the shared form's
  // exclusivity rule exists to prevent.
  void EnableImpairment(bool to_b, FaultRegistry& registry, const std::string& name);

  bool impaired() const {
    return impairer_ != nullptr || impairer_to_b_ != nullptr || impairer_to_a_ != nullptr;
  }
  // Only the shared form conflicts with routing; per-direction impairers are
  // sampled on their own sending shard and compose with it.
  bool shared_impaired() const { return impairer_ != nullptr; }
  // The impairer deciding for one direction (direction-owned wins), or null.
  FrameImpairer* impairer(bool to_b) {
    FrameImpairer* directional = to_b ? impairer_to_b_.get() : impairer_to_a_.get();
    return directional != nullptr ? directional : impairer_.get();
  }

  // --- Partition gate (emu-gossip) ---
  // While a direction's gate is closed every frame submitted on it is
  // dropped (and counted) instead of transmitted — an asymmetric cable cut.
  // Gating is checked sender-side in Transmit, so on a cross-shard link the
  // gate must only be toggled from the sending shard (schedule the toggle on
  // the sender's EventScheduler); the counters then stay shard-local and
  // thread-count independent.
  void SetGate(bool to_b, bool blocked) { (to_b ? gate_to_b_ : gate_to_a_) = blocked; }
  bool gated(bool to_b) const { return to_b ? gate_to_b_ : gate_to_a_; }

  // Shard-boundary routing for the `to_b` direction: transmissions complete
  // into `sink` instead of the local event queue, and Transmit reads the
  // clock from `sender` (the sending shard's scheduler). The receiving shard
  // delivers via CompleteRemote.
  void RouteRemote(bool to_b, EventScheduler& sender, u64 link_id, RemoteSink sink);
  bool remote(bool to_b) const { return to_b ? static_cast<bool>(remote_b_) : static_cast<bool>(remote_a_); }

  // Executes one drained cross-shard delivery on the receiving shard.
  void CompleteRemote(Packet frame, bool to_b);

  // Lower bound on sender-clock-to-delivery latency for any frame: one
  // minimum-size serialization plus propagation. This is the conservative
  // lookahead a parallel run may advance a receiving shard by.
  Picoseconds MinTransitPs() const;

  // Counters are kept per direction (each direction's Transmit runs on its
  // own sending shard, so a shared counter would race on a routed link); the
  // accessors sum both. Read after Run() returns, as with all sim counters.
  u64 delivered() const { return delivered_.load(std::memory_order_relaxed); }
  u64 dropped() const { return dropped_[0] + dropped_[1]; }
  u64 corrupted() const { return corrupted_[0] + corrupted_[1]; }
  u64 duplicated() const { return duplicated_[0] + duplicated_[1]; }
  u64 gated_dropped() const { return gated_dropped_[0] + gated_dropped_[1]; }

  // Registers delivered/dropped/corrupted/duplicated as counters under
  // `prefix` (e.g. "link.uplink0").
  void RegisterMetrics(MetricsRegistry& metrics, const std::string& prefix) const;

 private:
  struct RemoteRoute {
    EventScheduler* sender = nullptr;
    u64 link_id = 0;
    u64 next_seq = 0;
    RemoteSink sink;
    explicit operator bool() const { return static_cast<bool>(sink); }
  };

  void Transmit(Packet frame, bool to_b);
  void Deliver(Packet frame, bool to_b, Picoseconds arrival);
  EventScheduler& SchedulerFor(bool to_b);

  EventScheduler& scheduler_;
  u64 bits_per_second_;
  Picoseconds propagation_delay_;
  Receiver end_a_;
  Receiver end_b_;
  Picoseconds busy_until_a_to_b_ = 0;
  Picoseconds busy_until_b_to_a_ = 0;
  // `delivered_` is bumped on the receiving shard's thread while the sender
  // bumps the impairment counters; atomic keeps the cross-shard counter safe
  // without a lock (relaxed: counters, not synchronization).
  std::atomic<u64> delivered_{0};
  // Index 0: the to_a direction; index 1: to_b. Bumped sender-side only.
  u64 dropped_[2] = {0, 0};
  u64 corrupted_[2] = {0, 0};
  u64 duplicated_[2] = {0, 0};
  u64 gated_dropped_[2] = {0, 0};
  bool gate_to_b_ = false;  // partition gates, per direction
  bool gate_to_a_ = false;
  RemoteRoute remote_a_;  // deliveries toward end A
  RemoteRoute remote_b_;  // deliveries toward end B
  std::unique_ptr<FrameImpairer> impairer_;       // legacy shared (local links)
  std::unique_ptr<FrameImpairer> impairer_to_b_;  // direction-owned
  std::unique_ptr<FrameImpairer> impairer_to_a_;
};

}  // namespace emu

#endif  // SRC_SIM_LINK_H_
