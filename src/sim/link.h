// Point-to-point link with bandwidth and propagation delay.
//
// A link delivers every frame perfectly unless impairment is enabled:
// EnableImpairment attaches a FrameImpairer whose fault points
// (`<name>.drop` / `.corrupt` / `.dup` / `.reorder` / `.delay`) are armed
// through a FaultRegistry plan. With the points disarmed the link's timing
// and delivery are bit-identical to an unimpaired link.
#ifndef SRC_SIM_LINK_H_
#define SRC_SIM_LINK_H_

#include <functional>
#include <memory>
#include <string>

#include "src/fault/frame_impairer.h"
#include "src/net/packet.h"
#include "src/sim/event_scheduler.h"

namespace emu {

class Link {
 public:
  using Receiver = std::function<void(Packet)>;

  Link(EventScheduler& scheduler, u64 bits_per_second, Picoseconds propagation_delay)
      : scheduler_(scheduler),
        bits_per_second_(bits_per_second),
        propagation_delay_(propagation_delay) {}

  void AttachA(Receiver receiver) { end_a_ = std::move(receiver); }
  void AttachB(Receiver receiver) { end_b_ = std::move(receiver); }

  // Sends toward end B (from A) or end A (from B); the frame is delivered
  // after serialization + propagation, respecting link occupancy.
  void SendToB(Packet frame) { Transmit(std::move(frame), /*to_b=*/true); }
  void SendToA(Packet frame) { Transmit(std::move(frame), /*to_b=*/false); }

  // Registers this link's impairment fault points as `<name>.*` in the
  // registry. Both directions share the points and counters.
  void EnableImpairment(FaultRegistry& registry, const std::string& name);
  bool impaired() const { return impairer_ != nullptr; }

  u64 delivered() const { return delivered_; }
  u64 dropped() const { return dropped_; }
  u64 corrupted() const { return corrupted_; }
  u64 duplicated() const { return duplicated_; }

 private:
  void Transmit(Packet frame, bool to_b);
  void Deliver(Packet frame, bool to_b, Picoseconds arrival);

  EventScheduler& scheduler_;
  u64 bits_per_second_;
  Picoseconds propagation_delay_;
  Receiver end_a_;
  Receiver end_b_;
  Picoseconds busy_until_a_to_b_ = 0;
  Picoseconds busy_until_b_to_a_ = 0;
  u64 delivered_ = 0;
  u64 dropped_ = 0;
  u64 corrupted_ = 0;
  u64 duplicated_ = 0;
  std::unique_ptr<FrameImpairer> impairer_;
};

}  // namespace emu

#endif  // SRC_SIM_LINK_H_
