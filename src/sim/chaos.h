// ChaosDirector: applies a FaultPlan's topology-scoped events (host crash /
// restart / partition windows, emu-gossip) to a TopologyBuilder-built
// topology (HubTopology included).
//
// The events are RNG-free and statically known, so Apply() does everything
// determinism needs up front, before any shard thread runs:
//
//  1. Validates every event against the topology (unknown host -> error with
//     the plan line, nothing scheduled).
//  2. Logs the whole campaign to the FaultRegistry in time order — the
//     injection log and LogDigest() then cover node-level chaos without any
//     cross-thread logging at fire time.
//  3. Schedules the state changes where they are safe: crash/restart on the
//     OWNING host's EventScheduler (the host shard's thread flips the
//     lifecycle, so the state machine never races the frame path), partition
//     block/unblock on the hub's EventScheduler (the hub shard's thread
//     mutates the port-pair block matrix).
//
// With the same plan and topology, a run is bit-exact under replay and for
// any ParallelRunner thread count.
#ifndef SRC_SIM_CHAOS_H_
#define SRC_SIM_CHAOS_H_

#include <string>

#include "src/common/status.h"
#include "src/fault/fault_registry.h"
#include "src/sim/topology.h"

namespace emu {

class ChaosDirector {
 public:
  // `registry` may be null: events still apply, just unlogged. The director
  // drives any TopologyBuilder-built topology; partitions additionally need
  // a hub (host i on hub port i) to block port pairs on.
  explicit ChaosDirector(TopologyBuilder& topo, FaultRegistry* registry = nullptr)
      : topo_(topo), registry_(registry) {}
  explicit ChaosDirector(HubTopology& topo, FaultRegistry* registry = nullptr)
      : ChaosDirector(topo.builder(), registry) {}

  // Boot window charged by every `restart` event (default 5 ms: a fast
  // kexec-style reboot on the simulated timeline).
  void set_boot_delay(Picoseconds delay) { boot_delay_ = delay; }
  Picoseconds boot_delay() const { return boot_delay_; }

  // Validates, logs, and schedules plan.topo_events. On error (unknown host)
  // nothing is logged or scheduled. Point-schedule entries in the plan are
  // not touched — arm those on the registry as usual.
  Status Apply(const FaultPlan& plan);

  // Scheduler events planted by successful Apply() calls.
  usize scheduled() const { return scheduled_; }

 private:
  TopologyBuilder& topo_;
  FaultRegistry* registry_;
  Picoseconds boot_delay_ = 5 * kPicosPerMilli;
  usize scheduled_ = 0;
};

}  // namespace emu

#endif  // SRC_SIM_CHAOS_H_
