#include "src/sim/trace_dump.h"

#include <cstdio>
#include <fstream>

#include "src/common/hexdump.h"
#include "src/net/arp.h"
#include "src/net/ethernet.h"
#include "src/net/ipv4.h"

namespace emu {

std::string DescribePacket(const Packet& packet) {
  Packet copy = packet;
  EthernetView eth(copy);
  if (!eth.Valid()) {
    return "short-frame len=" + std::to_string(packet.size());
  }
  char buf[160];
  if (eth.EtherTypeIs(EtherType::kIpv4)) {
    Ipv4View ip(copy);
    if (ip.Valid()) {
      std::snprintf(buf, sizeof(buf), "IPv4 %s>%s proto=%u ttl=%u len=%zu",
                    ip.source().ToString().c_str(), ip.destination().ToString().c_str(),
                    ip.protocol_raw(), ip.ttl(), packet.size());
      return buf;
    }
    return "malformed-IPv4 len=" + std::to_string(packet.size());
  }
  if (eth.EtherTypeIs(EtherType::kArp)) {
    ArpView arp(copy);
    if (arp.Valid()) {
      std::snprintf(buf, sizeof(buf), "ARP %s %s asks %s",
                    arp.OperIs(ArpOper::kRequest) ? "request" : "reply",
                    arp.sender_ip().ToString().c_str(), arp.target_ip().ToString().c_str());
      return buf;
    }
  }
  std::snprintf(buf, sizeof(buf), "eth %s>%s type=0x%04x len=%zu",
                eth.source().ToString().c_str(), eth.destination().ToString().c_str(),
                eth.ether_type_raw(), packet.size());
  return buf;
}

void TraceDump::Capture(Picoseconds time, std::string tag, const Packet& packet) {
  if (records_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  records_.push_back(Record{time, std::move(tag), packet});
}

std::string TraceDump::Summary() const {
  std::string out;
  char head[64];
  for (const Record& record : records_) {
    std::snprintf(head, sizeof(head), "%12.3fus %-12s ", ToMicroseconds(record.time),
                  record.tag.c_str());
    out += head;
    out += DescribePacket(record.packet);
    out += '\n';
  }
  if (dropped_ > 0) {
    out += "(" + std::to_string(dropped_) + " packets dropped at capacity " +
           std::to_string(capacity_) + ")\n";
  }
  return out;
}

std::string TraceDump::Full() const {
  std::string out;
  char head[64];
  for (const Record& record : records_) {
    std::snprintf(head, sizeof(head), "%12.3fus %-12s ", ToMicroseconds(record.time),
                  record.tag.c_str());
    out += head;
    out += DescribePacket(record.packet);
    out += '\n';
    out += Hexdump(record.packet.bytes());
  }
  return out;
}

bool TraceDump::WritePcap(const std::string& path) const {
  std::ofstream file(path, std::ios::binary);
  if (!file) {
    return false;
  }
  const auto put32 = [&](u32 value) {
    file.write(reinterpret_cast<const char*>(&value), 4);  // host order, per pcap magic
  };
  const auto put16 = [&](u16 value) {
    file.write(reinterpret_cast<const char*>(&value), 2);
  };
  // Global header: magic, version 2.4, zone 0, sigfigs 0, snaplen, Ethernet.
  put32(0xa1b2c3d4);
  put16(2);
  put16(4);
  put32(0);
  put32(0);
  put32(65535);
  put32(1);  // LINKTYPE_ETHERNET
  for (const Record& record : records_) {
    const u64 micros = static_cast<u64>(record.time / kPicosPerMicro);
    put32(static_cast<u32>(micros / 1'000'000));  // seconds
    put32(static_cast<u32>(micros % 1'000'000));  // microseconds
    put32(static_cast<u32>(record.packet.size()));
    put32(static_cast<u32>(record.packet.size()));
    file.write(reinterpret_cast<const char*>(record.packet.bytes().data()),
               static_cast<std::streamsize>(record.packet.size()));
  }
  return static_cast<bool>(file);
}

bool TraceDump::WriteToFile(const std::string& path) const {
  std::ofstream file(path);
  if (!file) {
    return false;
  }
  file << Full();
  return static_cast<bool>(file);
}

Expected<std::vector<Packet>> ReadPcap(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    return NotFound("cannot open pcap file " + path);
  }
  const auto get32 = [&](u32* out) {
    file.read(reinterpret_cast<char*>(out), 4);
    return static_cast<bool>(file);
  };
  u32 magic = 0;
  if (!get32(&magic) || magic != 0xa1b2c3d4) {
    return MalformedPacket("bad pcap magic (only host-endian v2.4 supported)");
  }
  u32 scratch = 0;
  get32(&scratch);  // version
  get32(&scratch);  // zone
  get32(&scratch);  // sigfigs
  u32 snaplen = 0;
  get32(&snaplen);
  u32 linktype = 0;
  if (!get32(&linktype) || linktype != 1) {
    return UnsupportedProtocol("pcap linktype is not Ethernet");
  }
  std::vector<Packet> packets;
  for (;;) {
    u32 ts_sec = 0;
    if (!get32(&ts_sec)) {
      break;  // clean EOF
    }
    u32 ts_usec = 0;
    u32 incl = 0;
    u32 orig = 0;
    if (!get32(&ts_usec) || !get32(&incl) || !get32(&orig)) {
      return MalformedPacket("truncated pcap record header");
    }
    if (incl > snaplen || incl > 1u << 20) {
      return MalformedPacket("pcap record length implausible");
    }
    std::vector<u8> data(incl);
    file.read(reinterpret_cast<char*>(data.data()), incl);
    if (!file) {
      return MalformedPacket("truncated pcap record body");
    }
    Packet packet(std::move(data));
    packet.set_ingress_time(
        (static_cast<Picoseconds>(ts_sec) * 1'000'000 + ts_usec) * kPicosPerMicro);
    packets.push_back(std::move(packet));
  }
  return packets;
}

}  // namespace emu
