#include "src/sim/link.h"

#include <algorithm>
#include <cassert>

#include "src/core/metrics.h"
#include "src/obs/trace_hooks.h"

namespace emu {

void Link::EnableImpairment(FaultRegistry& registry, const std::string& name) {
  assert(!remote_a_ && !remote_b_ &&
         "shared impairment and cross-shard routing are mutually exclusive; "
         "use the per-direction EnableImpairment overload");
  impairer_ = std::make_unique<FrameImpairer>(registry, name);
}

void Link::EnableImpairment(bool to_b, FaultRegistry& registry, const std::string& name) {
  std::unique_ptr<FrameImpairer>& slot = to_b ? impairer_to_b_ : impairer_to_a_;
  assert(slot == nullptr && "direction already impaired");
  slot = std::make_unique<FrameImpairer>(registry, name);
}

void Link::RouteRemote(bool to_b, EventScheduler& sender, u64 link_id, RemoteSink sink) {
  assert(impairer_ == nullptr &&
         "shared impairment and cross-shard routing are mutually exclusive; "
         "use the per-direction EnableImpairment overload");
  RemoteRoute& route = to_b ? remote_b_ : remote_a_;
  route = RemoteRoute{&sender, link_id, 0, std::move(sink)};
}

EventScheduler& Link::SchedulerFor(bool to_b) {
  const RemoteRoute& route = to_b ? remote_b_ : remote_a_;
  return route ? *route.sender : scheduler_;
}

Picoseconds Link::MinTransitPs() const {
  // Smallest wire occupancy: a zero-byte payload still carries the 24 bytes
  // of preamble + FCS + IFG that Transmit charges.
  const u64 min_bits = 24 * 8;
  const Picoseconds min_serialization =
      static_cast<Picoseconds>(min_bits * kPicosPerSecond / bits_per_second_);
  return min_serialization + propagation_delay_;
}

void Link::Transmit(Packet frame, bool to_b) {
  const usize dir = to_b ? 1 : 0;
  if (to_b ? gate_to_b_ : gate_to_a_) {
    // Partitioned direction: the frame never reaches the wire, so it charges
    // no occupancy and leaves the busy window untouched.
    ++gated_dropped_[dir];
    return;
  }
  EventScheduler& clock = SchedulerFor(to_b);
  const u64 bits = static_cast<u64>(frame.size() + 24) * 8;  // preamble+FCS+IFG
  const Picoseconds serialization =
      static_cast<Picoseconds>(bits * kPicosPerSecond / bits_per_second_);
  Picoseconds& busy_until = to_b ? busy_until_a_to_b_ : busy_until_b_to_a_;
  const Picoseconds start = std::max(clock.now(), busy_until);
  busy_until = start + serialization;
  Picoseconds arrival = busy_until + propagation_delay_;
  Receiver& receiver = to_b ? end_b_ : end_a_;
  if (!receiver) {
    return;
  }
  if (FrameImpairer* imp = impairer(to_b); imp != nullptr) {
    const FrameImpairer::Decision decision =
        imp->Decide(static_cast<u64>(clock.now()), frame.size());
    if (decision.drop) {
      ++dropped_[dir];
      return;
    }
    if (decision.corrupt_bit != FrameImpairer::kNoCorrupt) {
      FrameImpairer::FlipBit(frame, decision.corrupt_bit);
      ++corrupted_[dir];
    }
    if (decision.duplicate) {
      // The copy occupies the wire like a real retransmission would.
      ++duplicated_[dir];
      Packet copy = frame;
      busy_until += serialization;
      Deliver(std::move(copy), to_b, busy_until + propagation_delay_);
    }
    if (decision.reorder) {
      // Held back just past one more serialization slot, so a back-to-back
      // successor arrives first.
      arrival += serialization + 1;
    }
    arrival += static_cast<Picoseconds>(decision.extra_delay_ps);
  }
  // Flight recorder: the transit span is emitted sender-side (both endpoints
  // of the span), so cross-shard links trace deterministically — the sending
  // shard knows the arrival time without hearing back from the receiver.
  if (obs::TraceBuffer* tb = obs::ActiveBuffer()) {
    const u64 flight = obs::FrameTraceId(frame);
    if (flight != 0) {
      obs::EmitAsyncBegin(tb, "link.transit", start, flight);
      obs::EmitAsyncEnd(tb, "link.transit", arrival, flight);
    }
  }
  Deliver(std::move(frame), to_b, arrival);
}

void Link::Deliver(Packet frame, bool to_b, Picoseconds arrival) {
  RemoteRoute& route = to_b ? remote_b_ : remote_a_;
  if (route) {
    // Cross-shard: hand off to the runner's inbox; the receiving shard
    // schedules and executes the delivery at `arrival` on its own clock.
    route.sink(RemoteFrame{arrival, route.link_id, route.next_seq++, std::move(frame)});
    return;
  }
  Receiver& receiver = to_b ? end_b_ : end_a_;
  scheduler_.At(arrival, [this, &receiver, frame = std::move(frame)]() mutable {
    delivered_.fetch_add(1, std::memory_order_relaxed);
    receiver(std::move(frame));
  });
}

void Link::CompleteRemote(Packet frame, bool to_b) {
  Receiver& receiver = to_b ? end_b_ : end_a_;
  assert(receiver && "remote delivery on an unattached link end");
  delivered_.fetch_add(1, std::memory_order_relaxed);
  receiver(std::move(frame));
}

void Link::RegisterMetrics(MetricsRegistry& metrics, const std::string& prefix) const {
  metrics.Register(prefix + ".delivered", [this] { return delivered(); });
  metrics.Register(prefix + ".dropped", [this] { return dropped(); });
  metrics.Register(prefix + ".corrupted", [this] { return corrupted(); });
  metrics.Register(prefix + ".duplicated", [this] { return duplicated(); });
  metrics.Register(prefix + ".gated_dropped", [this] { return gated_dropped(); });
}

}  // namespace emu
