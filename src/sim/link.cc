#include "src/sim/link.h"

#include <algorithm>

namespace emu {

void Link::Transmit(Packet frame, bool to_b) {
  const u64 bits = static_cast<u64>(frame.size() + 24) * 8;  // preamble+FCS+IFG
  const Picoseconds serialization =
      static_cast<Picoseconds>(bits * kPicosPerSecond / bits_per_second_);
  Picoseconds& busy_until = to_b ? busy_until_a_to_b_ : busy_until_b_to_a_;
  const Picoseconds start = std::max(scheduler_.now(), busy_until);
  busy_until = start + serialization;
  const Picoseconds arrival = busy_until + propagation_delay_;
  Receiver& receiver = to_b ? end_b_ : end_a_;
  if (!receiver) {
    return;
  }
  scheduler_.At(arrival, [this, &receiver, frame = std::move(frame)]() mutable {
    ++delivered_;
    receiver(std::move(frame));
  });
}

}  // namespace emu
