#include "src/sim/link.h"

#include <algorithm>

namespace emu {

void Link::EnableImpairment(FaultRegistry& registry, const std::string& name) {
  impairer_ = std::make_unique<FrameImpairer>(registry, name);
}

void Link::Transmit(Packet frame, bool to_b) {
  const u64 bits = static_cast<u64>(frame.size() + 24) * 8;  // preamble+FCS+IFG
  const Picoseconds serialization =
      static_cast<Picoseconds>(bits * kPicosPerSecond / bits_per_second_);
  Picoseconds& busy_until = to_b ? busy_until_a_to_b_ : busy_until_b_to_a_;
  const Picoseconds start = std::max(scheduler_.now(), busy_until);
  busy_until = start + serialization;
  Picoseconds arrival = busy_until + propagation_delay_;
  Receiver& receiver = to_b ? end_b_ : end_a_;
  if (!receiver) {
    return;
  }
  if (impairer_ != nullptr) {
    const FrameImpairer::Decision decision =
        impairer_->Decide(static_cast<u64>(scheduler_.now()), frame.size());
    if (decision.drop) {
      ++dropped_;
      return;
    }
    if (decision.corrupt_bit != FrameImpairer::kNoCorrupt) {
      FrameImpairer::FlipBit(frame, decision.corrupt_bit);
      ++corrupted_;
    }
    if (decision.duplicate) {
      // The copy occupies the wire like a real retransmission would.
      ++duplicated_;
      Packet copy = frame;
      busy_until += serialization;
      Deliver(std::move(copy), to_b, busy_until + propagation_delay_);
    }
    if (decision.reorder) {
      // Held back just past one more serialization slot, so a back-to-back
      // successor arrives first.
      arrival += serialization + 1;
    }
    arrival += static_cast<Picoseconds>(decision.extra_delay_ps);
  }
  Deliver(std::move(frame), to_b, arrival);
}

void Link::Deliver(Packet frame, bool to_b, Picoseconds arrival) {
  Receiver& receiver = to_b ? end_b_ : end_a_;
  scheduler_.At(arrival, [this, &receiver, frame = std::move(frame)]() mutable {
    ++delivered_;
    receiver(std::move(frame));
  });
}

}  // namespace emu
