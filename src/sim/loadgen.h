// OSNT-style traffic generation and measurement (§5.2).
//
// The paper uses the Open Source Network Tester to replay traffic while
// modifying the rate to find maximum throughput, and a DAG card for latency.
// OsntLoadgen reproduces that methodology against a FpgaTarget: fixed-rate
// replay with loss accounting, sequential request/response RTT measurement,
// and a binary rate search for the highest load below a loss threshold.
#ifndef SRC_SIM_LOADGEN_H_
#define SRC_SIM_LOADGEN_H_

#include <functional>
#include <string>
#include <vector>

#include "src/core/targets.h"
#include "src/sim/latency_probe.h"

namespace emu {

class MetricsRegistry;

// Builds the i-th frame to inject on `port`.
using FrameFactory = std::function<Packet(usize index, u8 port)>;

struct LoadgenReport {
  usize injected = 0;
  usize egressed = 0;
  // Drops explained by instrumented counters (impaired links, service
  // rejects); reported by FixedRateConfig::accounted_drops.
  u64 accounted_drops = 0;
  double offered_mqps = 0.0;   // million requests (frames) per second
  double achieved_mqps = 0.0;  // egress rate over the active window
  // Unexplained loss: frames neither egressed nor claimed by a drop counter.
  // This is what the rate search thresholds on, so deliberate impairment
  // doesn't read as congestion.
  double loss_rate = 0.0;
  double raw_loss_rate = 0.0;  // 1 - egressed/injected, impairment included
  LatencyStats latency;

  // Publishes the report under `<prefix>.injected/.egressed/
  // .accounted_drops` plus the latency histogram (`<prefix>.latency_ps`)
  // so harnesses scrape loadgen results like any service counter. The
  // report must outlive the registry bindings.
  void RegisterMetrics(MetricsRegistry& registry, const std::string& prefix) const;
};

class OsntLoadgen {
 public:
  struct FixedRateConfig {
    double offered_mqps = 1.0;
    usize frames = 1000;
    std::vector<u8> ports = {0};  // round-robin across these
    Cycle drain_limit = 10'000'000;
    // Sums the run's per-link/per-service drop counters (sampled once at
    // drain). Unset: no accounting, loss_rate == raw_loss_rate.
    std::function<u64()> accounted_drops;
  };

  // Replays `frames` frames at the offered rate and reports achieved rate,
  // loss, and per-frame latency.
  static LoadgenReport RunFixedRate(FpgaTarget& target, const FrameFactory& factory,
                                    const FixedRateConfig& config);

  // Sequential request/response RTTs (the Table 4 latency methodology: one
  // outstanding request, warm service).
  static LatencyStats MeasureUnloadedRtt(FpgaTarget& target, const FrameFactory& factory,
                                         usize requests, u8 port = 0,
                                         Cycle per_request_limit = 1'000'000);

  // Binary-searches the highest offered rate whose loss stays below
  // `loss_threshold`. `trial` must run a FRESH target at the given rate.
  using TrialRunner = std::function<LoadgenReport(double offered_mqps)>;
  static double FindMaxThroughputMqps(const TrialRunner& trial, double lo_mqps,
                                      double hi_mqps, double loss_threshold = 0.001,
                                      int iterations = 12);
};

}  // namespace emu

#endif  // SRC_SIM_LOADGEN_H_
