// HubNode: a learning switch for host-to-host topologies (emu-gossip).
//
// ServiceNode is capped at kNetFpgaPortCount ports because it models a
// NetFPGA pipeline; a gossip cluster needs N hosts talking to each other.
// HubNode is the sim-level answer: an arbitrary-port learning switch that
// learns source MACs, forwards to the learned port, and floods unknown or
// broadcast destinations — enough L2 for a UDP membership protocol, with no
// service semantics of its own.
//
// Partitions: the hub holds a COUNTED per-(in_port, out_port) block matrix.
// While block_count(in, out) > 0 no frame entering on `in` leaves on `out`
// (it is dropped and counted). Counts — not booleans — so overlapping
// partition windows compose: each window increments on open and decrements
// on close, and connectivity returns only when every window covering the
// pair has closed. Blocks are directional; a symmetric partition sets both
// directions. Toggle blocks only from the hub's own shard (schedule them on
// the hub's EventScheduler) — the matrix is not synchronized.
#ifndef SRC_SIM_HUB_H_
#define SRC_SIM_HUB_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/sim/event_scheduler.h"
#include "src/sim/link.h"

namespace emu {

class MetricsRegistry;

class HubNode {
 public:
  HubNode(EventScheduler& scheduler, usize port_count,
          Picoseconds forward_delay = 1 * kPicosPerMicro);

  EventScheduler& scheduler() { return scheduler_; }
  usize port_count() const { return ports_.size(); }

  // Attaches a link end as port `port`; frames arriving there enter the hub.
  void AttachPort(usize port, Link* link, bool is_end_a);

  // Delivers a frame as if received on `port` (links call this).
  void Receive(usize port, Packet frame);

  // Counted directional block: `blocked=true` increments the (from, to)
  // count, `false` decrements it. The pair is partitioned while count > 0.
  void SetBlocked(usize from_port, usize to_port, bool blocked);
  bool Blocked(usize from_port, usize to_port) const;

  void set_forward_delay(Picoseconds delay) { forward_delay_ = delay; }

  u64 forwarded() const { return forwarded_; }
  u64 flooded() const { return flooded_; }
  u64 partition_dropped() const { return partition_dropped_; }

  // Registers forwarded/flooded/partition_dropped under `prefix`
  // (e.g. "hub").
  void RegisterMetrics(MetricsRegistry& metrics, const std::string& prefix) const;

 private:
  struct PortAttachment {
    Link* link = nullptr;
    bool is_end_a = true;
  };

  void Emit(usize in_port, Packet frame);
  u32& BlockCount(usize from_port, usize to_port) {
    return block_counts_[from_port * ports_.size() + to_port];
  }

  EventScheduler& scheduler_;
  std::vector<PortAttachment> ports_;
  std::vector<u32> block_counts_;  // port_count^2, row = ingress port
  std::unordered_map<u64, usize> mac_table_;  // src MAC (u48) -> port
  Picoseconds forward_delay_;
  u64 forwarded_ = 0;
  u64 flooded_ = 0;
  u64 partition_dropped_ = 0;
};

}  // namespace emu

#endif  // SRC_SIM_HUB_H_
