#include "src/sim/parallel_runner.h"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <cassert>
#include <limits>
#include <thread>
#include <tuple>

#include "src/obs/pulse.h"
#include "src/obs/trace.h"

namespace emu {
namespace {

constexpr Picoseconds kNever = std::numeric_limits<Picoseconds>::max();

}  // namespace

usize ParallelRunner::AddShard(EventScheduler& scheduler) {
  auto shard = std::make_unique<Shard>();
  shard->index = shards_.size();
  shard->scheduler = &scheduler;
  shards_.push_back(std::move(shard));
  return shards_.size() - 1;
}

void ParallelRunner::ConnectDirection(Link& link, bool to_b, usize from, usize to) {
  assert(from < shards_.size() && to < shards_.size());
  assert(from != to && "a link direction within one shard needs no routing");
  assert(!link.shared_impaired() &&
         "shared impairment and cross-shard routing are mutually exclusive; "
         "per-direction impairment composes");
  const Picoseconds lookahead = link.MinTransitPs();
  assert(lookahead > 0 && "zero-lookahead link admits no conservative window");
  const u64 link_id = next_link_id_++;
  // The assert above vanishes in release builds; the recorded cut lets the
  // static SHARDCUT check (src/analysis/elab) enforce the same rule always.
  cuts_.push_back(ShardCut{from, to, link_id, lookahead});
  Shard& receiver = *shards_[to];
  receiver.inbound.push_back(InboundEdge{from, lookahead});
  link.RouteRemote(to_b, *shards_[from]->scheduler, link_id,
                   [&receiver, &link, to_b](Link::RemoteFrame rf) {
                     std::lock_guard<std::mutex> lock(receiver.inbox_mu);
                     receiver.inbox.push_back(PendingDelivery{
                         rf.arrival, rf.link_id, rf.seq, &link, to_b, std::move(rf.frame)});
                   });
}

bool ParallelRunner::PlanEpoch(usize budget) {
  const u64 plan_begin_ns = pulse_ != nullptr ? pulse_->NowNs() : 0;
  u64 drained = 0;
  // Drain every inbox in canonical (arrival, link, seq) order so the
  // receiving scheduler's tie-break sequence numbers are independent of the
  // order worker threads pushed the frames.
  for (auto& entry : shards_) {
    Shard& shard = *entry;
    std::vector<PendingDelivery> pending;
    {
      std::lock_guard<std::mutex> lock(shard.inbox_mu);
      pending.swap(shard.inbox);
    }
    std::sort(pending.begin(), pending.end(),
              [](const PendingDelivery& a, const PendingDelivery& b) {
                return std::tie(a.arrival, a.link_id, a.seq) <
                       std::tie(b.arrival, b.link_id, b.seq);
              });
    drained += pending.size();
    for (PendingDelivery& delivery : pending) {
      shard.scheduler->At(delivery.arrival,
                          [link = delivery.link, to_b = delivery.to_b,
                           frame = std::move(delivery.frame)]() mutable {
                            link->CompleteRemote(std::move(frame), to_b);
                          });
    }
  }
  frames_drained_ += drained;

  bool any_pending = false;
  std::vector<Picoseconds> next(shards_.size(), kNever);
  for (usize i = 0; i < shards_.size(); ++i) {
    if (!shards_[i]->scheduler->Empty()) {
      next[i] = shards_[i]->scheduler->NextEventTime();
      any_pending = true;
    }
  }
  if (!any_pending) {
    return false;
  }
  // Transitive earliest-action bound. A shard with an empty queue is NOT
  // silent for the epoch: a frame arriving mid-epoch can wake it and make it
  // send (a hub shard between chatty hosts is the canonical case). Relax the
  // next-event times through the cut edges to a fixpoint — batched
  // Chandy-Misra null messages; positive lookaheads guarantee convergence in
  // at most |shards| sweeps — so lb[i] bounds the earliest time shard i can
  // execute ANY event this epoch, woken or not.
  std::vector<Picoseconds> lb = next;
  u64 sweeps = 0;
  u64 relaxations = 0;
  for (bool changed = true; changed;) {
    changed = false;
    ++sweeps;
    for (auto& entry : shards_) {
      Shard& shard = *entry;
      for (const InboundEdge& edge : shard.inbound) {
        if (lb[edge.from] == kNever) {
          continue;
        }
        const Picoseconds candidate = lb[edge.from] + edge.lookahead;
        if (candidate < lb[shard.index]) {
          lb[shard.index] = candidate;
          changed = true;
          ++relaxations;
        }
      }
    }
  }
  relax_sweeps_ += sweeps;
  null_message_relaxations_ += relaxations;
  for (auto& entry : shards_) {
    Shard& shard = *entry;
    Picoseconds horizon = kNever;
    for (const InboundEdge& edge : shard.inbound) {
      if (lb[edge.from] == kNever) {
        continue;  // nothing anywhere can ever reach this sender: truly silent
      }
      horizon = std::min(horizon, lb[edge.from] + edge.lookahead);
    }
    shard.horizon = horizon;
    shard.budget = budget;
    shard.epoch_executed = 0;
  }
  ++epochs_;
  if (pulse_ != nullptr) {
    obs::PlanRecord record;
    record.epoch = epochs_;
    record.begin_ns = plan_begin_ns;
    record.wall_ns = pulse_->NowNs() - plan_begin_ns;
    record.relax_sweeps = sweeps;
    record.relaxations = relaxations;
    record.frames_drained = drained;
    pulse_->RecordPlan(record);
  }
  return true;
}

void ParallelRunner::FlushEpochRecords(u64 epoch_end_ns) {
  for (auto& entry : shards_) {
    Shard& shard = *entry;
    obs::ShardEpochRecord record;
    record.epoch = epochs_;
    record.shard = static_cast<u32>(shard.index);
    record.horizon_ps = shard.horizon == kNever ? -1 : shard.horizon;
    record.executed = shard.epoch_executed;
    record.work_begin_ns = shard.work_begin_ns;
    record.work_end_ns = shard.work_end_ns;
    record.barrier_wait_ns =
        epoch_end_ns > shard.work_end_ns ? epoch_end_ns - shard.work_end_ns : 0;
    pulse_->RecordShardEpoch(record);
  }
}

void ParallelRunner::RunShardEpoch(Shard& shard) {
  // Bind the shard's trace buffer to whichever thread runs this epoch:
  // events land in per-shard buffers regardless of the worker interleaving,
  // which is what makes the merged trace independent of the thread count.
  obs::TraceSession* session = obs::TraceSession::Current();
  obs::TraceBuffer* previous = obs::ActiveBuffer();
  if (session != nullptr) {
    obs::BindThreadToShard(session, shard.index);
  }
  if (pulse_ != nullptr) {
    // Worker-side wall stamps: safe concurrently (NowNs only reads the run
    // base) and each worker owns its shards' fields for the epoch.
    shard.work_begin_ns = pulse_->NowNs();
    shard.epoch_executed = shard.scheduler->RunWhileBefore(shard.horizon, shard.budget);
    shard.work_end_ns = pulse_->NowNs();
  } else {
    shard.epoch_executed = shard.scheduler->RunWhileBefore(shard.horizon, shard.budget);
  }
  if (session != nullptr) {
    obs::BindThreadToBuffer(previous);
  }
}

u64 ParallelRunner::Run(const ParallelRunOptions& opts) {
  const usize threads =
      std::max<usize>(1, std::min(opts.threads, shards_.size()));
  if (obs::TraceSession* session = obs::TraceSession::Current()) {
    // Grow the shard buffers before workers exist; EnsureShards is
    // single-threaded by contract.
    session->EnsureShards(shards_.size());
  }
  if (pulse_ != nullptr) {
    pulse_->BeginRun(shards_.size(), threads);
  }
  u64 total = 0;
  const auto remaining = [&]() -> usize {
    return opts.max_events > total ? static_cast<usize>(opts.max_events - total) : 0;
  };

  if (threads == 1) {
    while (remaining() > 0 && PlanEpoch(remaining())) {
      for (auto& shard : shards_) {
        RunShardEpoch(*shard);
        total += shard->epoch_executed;
      }
      if (pulse_ != nullptr) {
        FlushEpochRecords(pulse_->NowNs());
      }
    }
    if (pulse_ != nullptr) {
      pulse_->EndRun(total);
    }
    return total;
  }

  std::barrier<> start_gate(static_cast<std::ptrdiff_t>(threads) + 1);
  std::barrier<> done_gate(static_cast<std::ptrdiff_t>(threads) + 1);
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (usize w = 0; w < threads; ++w) {
    workers.emplace_back([this, w, threads, &start_gate, &done_gate, &stop] {
      for (;;) {
        start_gate.arrive_and_wait();
        if (stop.load(std::memory_order_acquire)) {
          return;
        }
        // Contiguous block partition: topology builders register each
        // service node right before its hosts, so a block keeps a node and
        // its hosts on one worker while different nodes (the heavy shards)
        // land on different workers.
        const usize begin = w * shards_.size() / threads;
        const usize end = (w + 1) * shards_.size() / threads;
        for (usize i = begin; i < end; ++i) {
          RunShardEpoch(*shards_[i]);
        }
        done_gate.arrive_and_wait();
      }
    });
  }
  for (;;) {
    // The plan (drain + horizons) runs single-threaded between barriers;
    // workers only ever touch their own shards inside an epoch.
    const bool more = remaining() > 0 && PlanEpoch(remaining());
    if (!more) {
      stop.store(true, std::memory_order_release);
      start_gate.arrive_and_wait();
      break;
    }
    start_gate.arrive_and_wait();
    done_gate.arrive_and_wait();
    // Epoch closed: every worker has passed the done barrier, so the shard
    // stamps are safely visible here (barrier = release/acquire).
    if (pulse_ != nullptr) {
      FlushEpochRecords(pulse_->NowNs());
    }
    for (auto& shard : shards_) {
      total += shard->epoch_executed;
    }
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  if (pulse_ != nullptr) {
    pulse_->EndRun(total);
  }
  return total;
}

}  // namespace emu
