#include "src/sim/chaos.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace emu {
namespace {

u64 StartTime(const TopoFault& tf) {
  return tf.kind == TopoFault::Kind::kPartition ? tf.from : tf.at;
}

std::string JoinGroup(const std::vector<std::string>& group) {
  std::string joined;
  for (usize i = 0; i < group.size(); ++i) {
    joined += (i == 0 ? "" : ",") + group[i];
  }
  return joined;
}

// Injection-log site name for a topo event. Times live in the log's tick
// field, so the site carries only the identity.
std::string SiteName(const TopoFault& tf) {
  switch (tf.kind) {
    case TopoFault::Kind::kCrash:
      return "topo.crash." + tf.host;
    case TopoFault::Kind::kRestart:
      return "topo.restart." + tf.host;
    case TopoFault::Kind::kPartition: {
      std::string site = "topo.partition." + JoinGroup(tf.group_a) + "|" + JoinGroup(tf.group_b);
      if (tf.oneway) {
        site += ".oneway";
      }
      return site;
    }
  }
  return "topo.?";
}

}  // namespace

Status ChaosDirector::Apply(const FaultPlan& plan) {
  // Validate everything first so a bad plan applies nothing.
  for (const TopoFault& tf : plan.topo_events) {
    std::vector<const std::string*> names;
    if (tf.kind == TopoFault::Kind::kPartition) {
      for (const std::string& name : tf.group_a) names.push_back(&name);
      for (const std::string& name : tf.group_b) names.push_back(&name);
    } else {
      names.push_back(&tf.host);
    }
    for (const std::string* name : names) {
      if (topo_.FindHost(*name) == topo_.host_count()) {
        return NotFound("fault plan line " + std::to_string(tf.line) + ": unknown host '" +
                        *name + "' (topology has " + std::to_string(topo_.host_count()) +
                        " hosts)");
      }
    }
    if (tf.kind == TopoFault::Kind::kPartition && !topo_.has_hub()) {
      return InvalidArgument("fault plan line " + std::to_string(tf.line) +
                             ": partition requires a hub topology");
    }
  }

  // Log the whole campaign up front in time order (stable sort: plan order
  // breaks ties), before any shard thread could be running.
  if (registry_ != nullptr) {
    std::vector<const TopoFault*> ordered;
    ordered.reserve(plan.topo_events.size());
    for (const TopoFault& tf : plan.topo_events) {
      ordered.push_back(&tf);
    }
    std::stable_sort(ordered.begin(), ordered.end(),
                     [](const TopoFault* a, const TopoFault* b) {
                       return StartTime(*a) < StartTime(*b);
                     });
    for (const TopoFault* tf : ordered) {
      u64 detail = 0;
      switch (tf->kind) {
        case TopoFault::Kind::kCrash: break;
        case TopoFault::Kind::kRestart: detail = static_cast<u64>(boot_delay_); break;
        case TopoFault::Kind::kPartition: detail = tf->until; break;
      }
      registry_->LogTopoEvent(StartTime(*tf), SiteName(*tf), tf->cls(), detail);
    }
  }

  // Schedule the state changes on the shards that own the state.
  for (const TopoFault& tf : plan.topo_events) {
    switch (tf.kind) {
      case TopoFault::Kind::kCrash: {
        SimHost& host = topo_.host(topo_.FindHost(tf.host));
        host.scheduler().At(static_cast<Picoseconds>(tf.at), [&host] { host.Crash(); });
        ++scheduled_;
        break;
      }
      case TopoFault::Kind::kRestart: {
        SimHost& host = topo_.host(topo_.FindHost(tf.host));
        const Picoseconds delay = boot_delay_;
        host.scheduler().At(static_cast<Picoseconds>(tf.at),
                            [&host, delay] { host.Restart(delay); });
        ++scheduled_;
        break;
      }
      case TopoFault::Kind::kPartition: {
        std::vector<std::pair<usize, usize>> pairs;
        for (const std::string& a : tf.group_a) {
          for (const std::string& b : tf.group_b) {
            const usize pa = topo_.FindHost(a);
            const usize pb = topo_.FindHost(b);
            pairs.emplace_back(pa, pb);
            if (!tf.oneway) {
              pairs.emplace_back(pb, pa);
            }
          }
        }
        HubNode& hub = topo_.hub();
        hub.scheduler().At(static_cast<Picoseconds>(tf.from), [&hub, pairs] {
          for (const auto& [from, to] : pairs) {
            hub.SetBlocked(from, to, true);
          }
        });
        hub.scheduler().At(static_cast<Picoseconds>(tf.until), [&hub, pairs] {
          for (const auto& [from, to] : pairs) {
            hub.SetBlocked(from, to, false);
          }
        });
        scheduled_ += 2;
        break;
      }
    }
  }
  return Status::Ok();
}

}  // namespace emu
