// Packet trace capture and replay: human-readable dumps plus real libpcap
// files in both directions — the OSNT side of the rig "replays real traffic
// traces" (§5.2), and ReadPcap is how such a trace gets into a loadgen.
#ifndef SRC_SIM_TRACE_DUMP_H_
#define SRC_SIM_TRACE_DUMP_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/net/packet.h"

namespace emu {

class TraceDump {
 public:
  struct Record {
    Picoseconds time = 0;
    std::string tag;
    Packet packet;
  };

  // Records at most `capacity()` packets; once full, further captures are
  // counted in `dropped()` instead of growing without bound (long soaks used
  // to accumulate gigabytes of copies here).
  void Capture(Picoseconds time, std::string tag, const Packet& packet);

  usize size() const { return records_.size(); }
  const Record& record(usize i) const { return records_[i]; }

  usize capacity() const { return capacity_; }
  void set_capacity(usize capacity) { capacity_ = capacity; }
  u64 dropped() const { return dropped_; }

  // One line per packet: time, tag, decoded L2/L3 summary (plus a trailing
  // drop note when the capture cap was hit).
  std::string Summary() const;
  // Full hexdump rendering.
  std::string Full() const;

  // Writes Full() to a file; returns false on I/O failure.
  bool WriteToFile(const std::string& path) const;

  // Writes a classic libpcap (v2.4, LINKTYPE_ETHERNET) capture file openable
  // in wireshark/tcpdump; timestamps come from each record's capture time.
  bool WritePcap(const std::string& path) const;

  void Clear() {
    records_.clear();
    dropped_ = 0;
  }

 private:
  // Default is generous for unit tests yet small enough that a runaway soak
  // stays bounded (~64k frame copies).
  static constexpr usize kDefaultCapacity = 65536;

  std::vector<Record> records_;
  usize capacity_ = kDefaultCapacity;
  u64 dropped_ = 0;
};

// Decodes a one-line human summary of a frame ("IPv4 10.0.0.1>10.0.0.2
// proto=17 len=60").
std::string DescribePacket(const Packet& packet);

// Loads a classic libpcap file (as written by WritePcap, or any
// host-endian v2.4 Ethernet capture). Each record's capture time lands in
// the packet's ingress_time, so a loadgen can replay with original pacing.
Expected<std::vector<Packet>> ReadPcap(const std::string& path);

}  // namespace emu

#endif  // SRC_SIM_TRACE_DUMP_H_
