#include "src/core/targets.h"

#include "src/obs/trace_hooks.h"

namespace emu {

FpgaTarget::FpgaTarget(Service& service, PipelineConfig config, u64 clock_hz)
    : scheduler_(clock_hz) {
  pipeline_ = std::make_unique<NetFpgaPipeline>(scheduler_.sim(), service, config);
  pipeline_->SetEgressSink([this](u8 port, Packet frame) {
    // Flight recorder egress point: closes the whole-flight span opened at
    // the ingress port.
    if (obs::TraceBuffer* tb = obs::ActiveBuffer()) {
      if (frame.trace_id() != 0) {
        const Picoseconds ts =
            frame.egress_time() > 0 ? frame.egress_time() : scheduler_.sim().NowPs();
        obs::EmitAsyncEnd(tb, "pkt.flight", ts, frame.trace_id());
      }
    }
    egress_.push_back(EgressFrame{port, std::move(frame)});
  });
}

void FpgaTarget::Inject(u8 port, Packet frame, Cycle earliest) {
  pipeline_->InjectFrame(port, std::move(frame), earliest);
}

bool FpgaTarget::RunUntilEgressCount(usize count, Cycle limit) {
  return scheduler_.RunUntil([this, count] { return egress_.size() >= count; }, limit);
}

Expected<Packet> FpgaTarget::SendAndCollect(u8 port, Packet frame, Cycle limit) {
  const usize before = egress_.size();
  Inject(port, std::move(frame));
  if (!RunUntilEgressCount(before + 1, limit)) {
    return Timeout("no egress frame within cycle limit");
  }
  return egress_[before].frame;
}

std::vector<EgressFrame> FpgaTarget::TakeEgress() {
  std::vector<EgressFrame> out = std::move(egress_);
  egress_.clear();
  return out;
}

CpuTarget::CpuTarget(Service& service, usize fifo_depth) : service_(service) {
  rx_ = std::make_unique<SyncFifo<Packet>>(scheduler_.sim(), "cpu_rx", fifo_depth, 256);
  tx_ = std::make_unique<SyncFifo<Packet>>(scheduler_.sim(), "cpu_tx", fifo_depth, 256);
  // The host side of the dataplane: Deliver() pushes rx and drains tx from
  // outside the process graph (emu-lint must not flag them as dead ends).
  scheduler_.sim().catalog().MarkExternal(rx_.get());
  scheduler_.sim().catalog().MarkExternal(tx_.get());
  service_.Instantiate(scheduler_.sim(), Dataplane{rx_.get(), tx_.get()});
}

std::vector<Packet> CpuTarget::Deliver(Packet frame, usize max_quanta) {
  const u64 flight = frame.trace_id();
  if (rx_->CanPush()) {
    rx_->Push(std::move(frame));
  }
  std::vector<Packet> out;
  // Run until the service has drained its input and stopped producing: give
  // it a grace window of quanta with no new output before declaring it idle
  // (some services emit several frames per input, and request FSMs can spend
  // hundreds of quanta before replying). The advance goes through RunUntil
  // rather than per-cycle Step so the kernel's quiescence fast path can jump
  // the idle stretches — in a sharded topology run this is what keeps each
  // node shard cheap between frames.
  constexpr usize kIdleGrace = 1024;
  usize spent = 0;
  usize idle = 0;
  while (spent < max_quanta && idle < kIdleGrace) {
    const usize chunk = std::min(max_quanta - spent, kIdleGrace - idle);
    const Cycle before = scheduler_.sim().now();
    scheduler_.sim().RunUntil([this] { return !tx_->Empty(); },
                              static_cast<Cycle>(chunk));
    const usize ran = static_cast<usize>(scheduler_.sim().now() - before);
    spent += ran;
    if (tx_->Empty()) {
      idle += ran;  // the whole chunk elapsed without output
      continue;
    }
    idle = 0;
    while (!tx_->Empty()) {
      out.push_back(tx_->Pop());
    }
  }
  // Replies built from scratch by the service lose the request's flight id;
  // restore it so the waterfall spans the round trip.
  if (flight != 0) {
    for (Packet& reply : out) {
      if (reply.trace_id() == 0) {
        reply.set_trace_id(flight);
      }
    }
  }
  return out;
}

}  // namespace emu
