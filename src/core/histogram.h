// Log2-bucketed histogram for the telemetry pipeline (emu-scope).
//
// Fixed 65-bucket layout covering the full u64 range: bucket 0 holds the
// value 0, bucket k (k >= 1) holds [2^(k-1), 2^k - 1]. Observation is two
// adds and a bit-scan — cheap enough to live on packet paths — and two
// histograms merge by element-wise addition, which is what per-shard
// telemetry needs. Percentiles are nearest-rank over the buckets with linear
// interpolation inside the bucket, so the estimate is exact to within one
// bucket width (a factor-of-two band).
#ifndef SRC_CORE_HISTOGRAM_H_
#define SRC_CORE_HISTOGRAM_H_

#include <array>

#include "src/common/types.h"

namespace emu {

class Histogram {
 public:
  static constexpr usize kBucketCount = 65;

  void Observe(u64 value);

  u64 count() const { return count_; }
  u64 sum() const { return sum_; }
  u64 bucket(usize i) const { return buckets_[i]; }

  // Index of the bucket holding `value`.
  static usize BucketIndex(u64 value);

  // Largest value bucket `i` holds (inclusive); 0 for bucket 0,
  // 2^i - 1 for i >= 1, u64 max for the last bucket.
  static u64 BucketUpperBound(usize i);

  // Smallest value bucket `i` holds.
  static u64 BucketLowerBound(usize i);

  void Merge(const Histogram& other);

  // Nearest-rank percentile (p in [0, 100]) interpolated within its bucket.
  // 0 when empty.
  u64 PercentileEstimate(double p) const;

  void Clear();

 private:
  std::array<u64, kBucketCount> buckets_{};
  u64 count_ = 0;
  u64 sum_ = 0;
};

}  // namespace emu

#endif  // SRC_CORE_HISTOGRAM_H_
