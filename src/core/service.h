// Service: the unit of deployment in Emu.
//
// A service is written once — as one or more Kiwi-style coroutine processes
// reading NetFpgaData from an rx FIFO and writing to a tx FIFO — and then
// instantiated on any target (§3.3): the cycle-accurate NetFPGA pipeline
// (FpgaTarget), a plain software runtime (CpuTarget), or the event-driven
// network simulator (SimTarget). Multi-process services model Kiwi's
// "parallel threads become parallel sub-circuits" semantics and are how a
// design is pipelined for line rate.
#ifndef SRC_CORE_SERVICE_H_
#define SRC_CORE_SERVICE_H_

#include <string>
#include <string_view>

#include "src/hdl/fifo.h"
#include "src/hdl/module.h"
#include "src/hdl/process.h"
#include "src/net/packet.h"

namespace emu {

class FaultRegistry;
class MetricsRegistry;

// The dataplane attachment handed to a service at instantiation time.
struct Dataplane {
  SyncFifo<Packet>* rx = nullptr;
  SyncFifo<Packet>* tx = nullptr;
};

class Service {
 public:
  virtual ~Service() = default;

  virtual std::string_view name() const = 0;

  // Instantiates the service's processes and IP blocks on `sim`, attached to
  // `dp`. Called exactly once per target instantiation; the service keeps
  // ownership of any state it creates. Implementations must register every
  // process with sim.AddProcess().
  virtual void Instantiate(Simulator& sim, Dataplane dp) = 0;

  // Resource bill of the service's main logical core (valid after
  // Instantiate); the utilization rows of Tables 3 and 5.
  virtual ResourceUsage Resources() const = 0;

  // Cycles from the last word of a request entering the core to the first
  // word of the response leaving it — the "Module latency" row of Table 3.
  virtual Cycle ModuleLatency() const = 0;

  // Minimum cycles between accepting consecutive frames (pipelined II);
  // bounds throughput together with the bus and line rate.
  virtual Cycle InitiationInterval() const = 0;

  // emu-fault opt-in: registers the service's named fault points (table
  // exhaustion, checksum fold, ...) with `registry`. Called by fault-aware
  // harnesses after Instantiate(); services without injectable state keep
  // the default no-op. Never called on the bench paths, so services must not
  // change behaviour merely because points exist — only when a plan arms
  // them.
  virtual void RegisterFaultPoints(FaultRegistry& registry) { (void)registry; }

  // Metrics opt-in (src/core/metrics.h): registers the service's named
  // counters ("<service>.<counter>", mirroring fault-point naming) with
  // `registry`. The registry reads the counters in place, so call this after
  // Instantiate() and keep the service alive while the registry is read.
  // Services without counters keep the default no-op.
  virtual void RegisterMetrics(MetricsRegistry& registry) { (void)registry; }
};

}  // namespace emu

#endif  // SRC_CORE_SERVICE_H_
