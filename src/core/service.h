// Service: the unit of deployment in Emu.
//
// A service is written once — as one or more Kiwi-style coroutine processes
// reading NetFpgaData from an rx FIFO and writing to a tx FIFO — and then
// instantiated on any target (§3.3): the cycle-accurate NetFPGA pipeline
// (FpgaTarget), a plain software runtime (CpuTarget), or the event-driven
// network simulator (SimTarget). Multi-process services model Kiwi's
// "parallel threads become parallel sub-circuits" semantics and are how a
// design is pipelined for line rate.
#ifndef SRC_CORE_SERVICE_H_
#define SRC_CORE_SERVICE_H_

#include <string>
#include <string_view>

#include "src/hdl/fifo.h"
#include "src/hdl/module.h"
#include "src/hdl/process.h"
#include "src/net/mac_address.h"
#include "src/net/packet.h"

namespace emu {

class FaultRegistry;
class MetricsRegistry;

// The dataplane attachment handed to a service at instantiation time.
struct Dataplane {
  SyncFifo<Packet>* rx = nullptr;
  SyncFifo<Packet>* tx = nullptr;
};

// How a service slots into a composed pipeline (emu-chain, src/chain): the
// chain runtime stamps ingress frames with the port the service expects for
// that direction of travel, rewrites their destination MAC to the identity
// the service answers to, and classifies egress frames by dst_port_mask —
// bits inside `downstream_mask` continue toward the chain tail, everything
// else flows back toward the source. The defaults fit a symmetric two-port
// middlebox (upstream on port 1, downstream on port 0); services with their
// own port conventions (NAT's external/internal split, the memcached L1
// tier's host port) override ChainIo().
struct ChainStageIo {
  u8 forward_in_port = 1;     // src_port for frames entering from upstream
  u8 reply_in_port = 0;       // src_port for frames entering from downstream
  u8 downstream_mask = 0x01;  // egress mask bits that continue downstream
  // Ingress dst-MAC rewrite per direction; a zero MAC leaves frames as-is.
  MacAddress forward_mac;
  MacAddress reply_mac;
  // Reply frames are re-addressed to the stage's upstream neighbor instead
  // of `reply_mac`. For services that bind requester MACs at ingress and
  // route replies by destination MAC (the L1 tier's client CAM): hop-by-hop
  // transport rewrites MACs per link, so the requester a mid-chain stage
  // learned IS its upstream neighbor.
  bool reply_to_upstream = false;
};

class Service {
 public:
  virtual ~Service() = default;

  virtual std::string_view name() const = 0;

  // Instantiates the service's processes and IP blocks on `sim`, attached to
  // `dp`. Called exactly once per target instantiation; the service keeps
  // ownership of any state it creates. Implementations must register every
  // process with sim.AddProcess().
  virtual void Instantiate(Simulator& sim, Dataplane dp) = 0;

  // Resource bill of the service's main logical core (valid after
  // Instantiate); the utilization rows of Tables 3 and 5.
  virtual ResourceUsage Resources() const = 0;

  // Cycles from the last word of a request entering the core to the first
  // word of the response leaving it — the "Module latency" row of Table 3.
  virtual Cycle ModuleLatency() const = 0;

  // Minimum cycles between accepting consecutive frames (pipelined II);
  // bounds throughput together with the bus and line rate.
  virtual Cycle InitiationInterval() const = 0;

  // emu-fault opt-in: registers the service's named fault points (table
  // exhaustion, checksum fold, ...) with `registry`. Called by fault-aware
  // harnesses after Instantiate(); services without injectable state keep
  // the default no-op. Never called on the bench paths, so services must not
  // change behaviour merely because points exist — only when a plan arms
  // them.
  virtual void RegisterFaultPoints(FaultRegistry& registry) { (void)registry; }

  // Metrics opt-in (src/core/metrics.h): registers the service's named
  // counters ("<service>.<counter>", mirroring fault-point naming) with
  // `registry`. The registry reads the counters in place, so call this after
  // Instantiate() and keep the service alive while the registry is read.
  // Services without counters keep the default no-op.
  virtual void RegisterMetrics(MetricsRegistry& registry) { (void)registry; }

  // emu-chain opt-in: the stage ingress/egress surface this service exposes
  // when composed into a pipeline. See ChainStageIo above.
  virtual ChainStageIo ChainIo() const { return ChainStageIo{}; }
};

}  // namespace emu

#endif  // SRC_CORE_SERVICE_H_
