#include "src/core/metrics.h"

#include <sstream>

namespace emu {

void MetricsRegistry::Register(const std::string& name, const u64* source) {
  Register(name, [source] { return *source; });
}

void MetricsRegistry::Register(const std::string& name, std::function<u64()> getter) {
  for (Entry& entry : entries_) {
    if (entry.name == name) {
      entry.getter = std::move(getter);
      return;
    }
  }
  entries_.push_back(Entry{name, std::move(getter)});
}

const MetricsRegistry::Entry* MetricsRegistry::FindEntry(const std::string& name) const {
  for (const Entry& entry : entries_) {
    if (entry.name == name) {
      return &entry;
    }
  }
  return nullptr;
}

bool MetricsRegistry::Has(const std::string& name) const { return FindEntry(name) != nullptr; }

u64 MetricsRegistry::Get(const std::string& name) const {
  const Entry* entry = FindEntry(name);
  return entry != nullptr ? entry->getter() : 0;
}

std::vector<std::pair<std::string, u64>> MetricsRegistry::Snapshot() const {
  std::vector<std::pair<std::string, u64>> out;
  out.reserve(entries_.size());
  for (const Entry& entry : entries_) {
    out.emplace_back(entry.name, entry.getter());
  }
  return out;
}

std::string MetricsRegistry::Format() const {
  std::ostringstream out;
  for (const Entry& entry : entries_) {
    out << entry.name << "=" << entry.getter() << "\n";
  }
  return out.str();
}

}  // namespace emu
