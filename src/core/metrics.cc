#include "src/core/metrics.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <limits>
#include <map>
#include <set>
#include <sstream>

namespace emu {
namespace {

// Derived scalar views a histogram entry exposes through Snapshot/Get.
constexpr const char* kHistogramViews[] = {".count", ".sum", ".p50", ".p99"};

u64 HistogramView(const Histogram& h, const std::string& suffix) {
  if (suffix == ".count") {
    return h.count();
  }
  if (suffix == ".sum") {
    return h.sum();
  }
  if (suffix == ".p50") {
    return h.PercentileEstimate(50.0);
  }
  return h.PercentileEstimate(99.0);
}

std::string SanitizeName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) {
    out.insert(out.begin(), '_');
  }
  return out;
}

}  // namespace

void MetricsRegistry::Upsert(Entry entry) {
  for (Entry& existing : entries_) {
    if (existing.name == entry.name) {
      existing = std::move(entry);
      return;
    }
  }
  entries_.push_back(std::move(entry));
}

void MetricsRegistry::Register(const std::string& name, const u64* source) {
  Register(name, [source] { return *source; });
}

void MetricsRegistry::Register(const std::string& name, std::function<u64()> getter) {
  Upsert(Entry{name, MetricKind::kCounter, std::move(getter), nullptr});
}

void MetricsRegistry::RegisterGauge(const std::string& name, const u64* source) {
  RegisterGauge(name, [source] { return *source; });
}

void MetricsRegistry::RegisterGauge(const std::string& name, std::function<u64()> getter) {
  Upsert(Entry{name, MetricKind::kGauge, std::move(getter), nullptr});
}

void MetricsRegistry::RegisterHistogram(const std::string& name, const Histogram* histogram) {
  Upsert(Entry{name, MetricKind::kHistogram,
               [histogram] { return histogram->count(); }, histogram});
}

const MetricsRegistry::Entry* MetricsRegistry::FindEntry(const std::string& name) const {
  for (const Entry& entry : entries_) {
    if (entry.name == name) {
      return &entry;
    }
  }
  return nullptr;
}

bool MetricsRegistry::Has(const std::string& name) const { return TryGet(name).has_value(); }

u64 MetricsRegistry::Get(const std::string& name) const { return TryGet(name).value_or(0); }

std::optional<u64> MetricsRegistry::TryGet(const std::string& name) const {
  if (const Entry* entry = FindEntry(name)) {
    return entry->getter();
  }
  // Derived histogram views: "<hist>.count" etc. resolve against the parent.
  const auto dot = name.rfind('.');
  if (dot == std::string::npos) {
    return std::nullopt;
  }
  const std::string base = name.substr(0, dot);
  const std::string suffix = name.substr(dot);
  for (const char* view : kHistogramViews) {
    if (suffix == view) {
      const Entry* entry = FindEntry(base);
      if (entry != nullptr && entry->kind == MetricKind::kHistogram) {
        return HistogramView(*entry->histogram, suffix);
      }
    }
  }
  return std::nullopt;
}

std::optional<MetricKind> MetricsRegistry::Kind(const std::string& name) const {
  if (const Entry* entry = FindEntry(name)) {
    return entry->kind;
  }
  if (TryGet(name).has_value()) {
    return MetricKind::kHistogram;
  }
  return std::nullopt;
}

const Histogram* MetricsRegistry::GetHistogram(const std::string& name) const {
  const Entry* entry = FindEntry(name);
  return entry != nullptr && entry->kind == MetricKind::kHistogram ? entry->histogram : nullptr;
}

std::vector<std::pair<std::string, u64>> MetricsRegistry::Snapshot() const {
  std::vector<std::pair<std::string, u64>> out;
  out.reserve(entries_.size());
  for (const Entry& entry : entries_) {
    if (entry.kind == MetricKind::kHistogram) {
      for (const char* view : kHistogramViews) {
        out.emplace_back(entry.name + view, HistogramView(*entry.histogram, view));
      }
      continue;
    }
    out.emplace_back(entry.name, entry.getter());
  }
  return out;
}

std::string MetricsRegistry::Format() const {
  std::ostringstream out;
  for (const auto& [name, value] : Snapshot()) {
    out << name << "=" << value << "\n";
  }
  return out.str();
}

std::string MetricsRegistry::PrometheusText() const {
  std::ostringstream out;
  for (const Entry& entry : entries_) {
    const std::string name = SanitizeName(entry.name);
    switch (entry.kind) {
      case MetricKind::kCounter:
        out << "# TYPE " << name << " counter\n" << name << " " << entry.getter() << "\n";
        break;
      case MetricKind::kGauge:
        out << "# TYPE " << name << " gauge\n" << name << " " << entry.getter() << "\n";
        break;
      case MetricKind::kHistogram: {
        const Histogram& h = *entry.histogram;
        out << "# TYPE " << name << " histogram\n";
        usize last = 0;
        for (usize i = 0; i < Histogram::kBucketCount; ++i) {
          if (h.bucket(i) != 0) {
            last = i;
          }
        }
        u64 cumulative = 0;
        for (usize i = 0; i <= last; ++i) {
          cumulative += h.bucket(i);
          out << name << "_bucket{le=\"" << Histogram::BucketUpperBound(i) << "\"} "
              << cumulative << "\n";
        }
        out << name << "_bucket{le=\"+Inf\"} " << h.count() << "\n";
        out << name << "_sum " << h.sum() << "\n";
        out << name << "_count " << h.count() << "\n";
        break;
      }
    }
  }
  return out.str();
}

// ---------------------------------------------------------------------------
// promtool-style lint.

namespace {

bool ValidMetricName(const std::string& name) {
  if (name.empty()) {
    return false;
  }
  for (usize i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':';
    const bool digit = c >= '0' && c <= '9';
    if (!(alpha || (digit && i > 0))) {
      return false;
    }
  }
  return true;
}

bool ParseDouble(const std::string& text, double* out) {
  if (text == "+Inf") {
    *out = std::numeric_limits<double>::infinity();
    return true;
  }
  try {
    usize consumed = 0;
    *out = std::stod(text, &consumed);
    return consumed == text.size();
  } catch (...) {
    return false;
  }
}

struct LintState {
  std::map<std::string, std::string> types;            // metric -> declared type
  std::map<std::string, std::vector<double>> buckets;  // hist -> (le, cum) pairs
  std::map<std::string, std::vector<double>> bucket_values;
  std::map<std::string, double> counts;
  std::map<std::string, bool> sums;
};

}  // namespace

std::vector<Finding> PrometheusLintFindings(const std::string& text) {
  std::vector<Finding> findings;
  auto report = [&findings](const char* check, const std::string& subject, usize line_no,
                            const std::string& what) {
    findings.push_back(Finding{check, Severity::kError, "metrics", subject,
                               "line " + std::to_string(line_no) + ": " + what});
  };
  LintState state;
  std::set<std::string> sampled;  // metrics that already emitted a sample
  std::istringstream in(text);
  std::string line;
  usize line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) {
      continue;
    }
    if (line[0] == '#') {
      std::istringstream fields(line);
      std::string hash, keyword, metric, rest;
      fields >> hash >> keyword >> metric;
      if (keyword == "TYPE") {
        fields >> rest;
        if (!ValidMetricName(metric)) {
          report("METRICSFMT", metric, line_no, "invalid metric name in TYPE: " + metric);
          continue;
        }
        if (rest != "counter" && rest != "gauge" && rest != "histogram" &&
            rest != "summary" && rest != "untyped") {
          report("METRICSFMT", metric, line_no, "unknown metric type: " + rest);
          continue;
        }
        if (state.types.count(metric) != 0) {
          report("METRICSDUP", metric, line_no, "duplicate TYPE for " + metric);
          continue;
        }
        if (sampled.count(metric) != 0) {
          report("METRICSDUP", metric, line_no, "TYPE after samples for " + metric);
          continue;
        }
        state.types[metric] = rest;
      }
      // HELP and other comments pass through.
      continue;
    }
    // Sample line: name[{labels}] value [timestamp]
    usize name_end = line.find_first_of("{ ");
    if (name_end == std::string::npos) {
      report("METRICSFMT", line, line_no, "sample with no value");
      continue;
    }
    const std::string name = line.substr(0, name_end);
    if (!ValidMetricName(name)) {
      report("METRICSFMT", name, line_no, "invalid metric name: " + name);
      continue;
    }
    std::string labels;
    usize value_start = name_end;
    if (line[name_end] == '{') {
      const usize close = line.find('}', name_end);
      if (close == std::string::npos) {
        report("METRICSFMT", name, line_no, "unterminated label set");
        continue;
      }
      labels = line.substr(name_end + 1, close - name_end - 1);
      value_start = close + 1;
    }
    std::istringstream value_in(line.substr(value_start));
    std::string value_text;
    if (!(value_in >> value_text)) {
      report("METRICSFMT", name, line_no, "sample with no value");
      continue;
    }
    double value = 0;
    if (!ParseDouble(value_text, &value)) {
      report("METRICSFMT", name, line_no, "non-numeric sample value: " + value_text);
      continue;
    }
    // Resolve histogram series back to their base metric for TYPE checks.
    std::string base = name;
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      const std::string s = suffix;
      if (base.size() > s.size() && base.compare(base.size() - s.size(), s.size(), s) == 0 &&
          state.types.count(base.substr(0, base.size() - s.size())) != 0 &&
          state.types[base.substr(0, base.size() - s.size())] == "histogram") {
        base = base.substr(0, base.size() - s.size());
        break;
      }
    }
    sampled.insert(base);
    if (state.types.count(base) != 0 && state.types[base] == "histogram") {
      if (name == base + "_bucket") {
        const std::string key = "le=\"";
        const usize le_pos = labels.find(key);
        if (le_pos == std::string::npos) {
          report("METRICSHIST", base, line_no, "histogram bucket without le label");
          continue;
        }
        const usize le_end = labels.find('"', le_pos + key.size());
        double le = 0;
        if (le_end == std::string::npos ||
            !ParseDouble(labels.substr(le_pos + key.size(), le_end - le_pos - key.size()), &le)) {
          report("METRICSHIST", base, line_no, "unparsable le label");
          continue;
        }
        auto& les = state.buckets[base];
        auto& values = state.bucket_values[base];
        if (!les.empty() && le <= les.back()) {
          report("METRICSHIST", base, line_no, "histogram le bounds not increasing for " + base);
        }
        if (!values.empty() && value < values.back()) {
          report("METRICSHIST", base, line_no, "histogram buckets not cumulative for " + base);
        }
        les.push_back(le);
        values.push_back(value);
      } else if (name == base + "_count") {
        state.counts[base] = value;
      } else if (name == base + "_sum") {
        state.sums[base] = true;
      } else {
        report("METRICSHIST", base, line_no, "bare sample for histogram " + base);
      }
    }
  }
  for (const auto& [metric, type] : state.types) {
    if (type != "histogram") {
      continue;
    }
    const auto& les = state.buckets[metric];
    if (les.empty() || !std::isinf(les.back())) {
      report("METRICSHIST", metric, line_no, "histogram " + metric + " missing +Inf bucket");
    }
    if (state.counts.count(metric) == 0) {
      report("METRICSHIST", metric, line_no, "histogram " + metric + " missing _count");
    }
    if (!state.sums[metric]) {
      report("METRICSHIST", metric, line_no, "histogram " + metric + " missing _sum");
    }
    if (!les.empty() && std::isinf(les.back()) && state.counts.count(metric) != 0 &&
        state.counts[metric] != state.bucket_values[metric].back()) {
      report("METRICSHIST", metric, line_no, "histogram " + metric + " _count != +Inf bucket");
    }
  }
  return findings;
}

bool PrometheusLint(const std::string& text, std::string* error) {
  const std::vector<Finding> findings = PrometheusLintFindings(text);
  if (error != nullptr) {
    error->clear();
    if (!findings.empty()) {
      *error = findings.front().message;
    }
  }
  return findings.empty();
}

}  // namespace emu
