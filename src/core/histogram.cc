#include "src/core/histogram.h"

#include <bit>
#include <cmath>

namespace emu {

usize Histogram::BucketIndex(u64 value) {
  if (value == 0) {
    return 0;
  }
  return static_cast<usize>(64 - std::countl_zero(value));
}

u64 Histogram::BucketUpperBound(usize i) {
  if (i == 0) {
    return 0;
  }
  if (i >= kBucketCount - 1) {
    return ~u64{0};
  }
  return (u64{1} << i) - 1;
}

u64 Histogram::BucketLowerBound(usize i) {
  if (i == 0) {
    return 0;
  }
  return u64{1} << (i - 1);
}

void Histogram::Observe(u64 value) {
  ++buckets_[BucketIndex(value)];
  ++count_;
  sum_ += value;
}

void Histogram::Merge(const Histogram& other) {
  for (usize i = 0; i < kBucketCount; ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

u64 Histogram::PercentileEstimate(double p) const {
  if (count_ == 0) {
    return 0;
  }
  const double clamped = p < 0.0 ? 0.0 : (p > 100.0 ? 100.0 : p);
  u64 rank = static_cast<u64>(std::ceil(clamped / 100.0 * static_cast<double>(count_)));
  if (rank == 0) {
    rank = 1;
  }
  u64 cumulative = 0;
  for (usize i = 0; i < kBucketCount; ++i) {
    if (buckets_[i] == 0) {
      continue;
    }
    if (cumulative + buckets_[i] >= rank) {
      const u64 lo = BucketLowerBound(i);
      const u64 hi = BucketUpperBound(i);
      const u64 into = rank - cumulative;  // 1..buckets_[i]
      // Linear interpolation across the bucket span keeps the estimate
      // monotone in p and within one bucket width of the exact value.
      const double frac =
          buckets_[i] > 1 ? static_cast<double>(into - 1) / static_cast<double>(buckets_[i] - 1)
                          : 1.0;
      return lo + static_cast<u64>(static_cast<double>(hi - lo) * frac);
    }
    cumulative += buckets_[i];
  }
  return BucketUpperBound(kBucketCount - 1);
}

void Histogram::Clear() {
  buckets_.fill(0);
  count_ = 0;
  sum_ = 0;
}

}  // namespace emu
