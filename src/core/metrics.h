// MetricsRegistry: the canonical counter surface of a deployment.
//
// Every service accumulates operational counters (frames encrypted, queries
// resolved, NAT rejects, ...). Historically each grew a bespoke getter and
// every harness hard-coded the ones it knew about. The registry replaces
// that N×M wiring: a service registers its counters once by dotted name
// (`Service::RegisterMetrics`), and any consumer — examples, the chaos
// harness, the CASP debug controller (DirectionController::AttachMetrics) —
// enumerates or reads them uniformly. The per-service getters remain as thin
// wrappers around the same underlying counters.
//
// Registered sources are non-owning: a `const u64*` points at the counter
// member itself, a getter closure computes derived values. Either must
// outlive the registry reads.
#ifndef SRC_CORE_METRICS_H_
#define SRC_CORE_METRICS_H_

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "src/common/types.h"

namespace emu {

class MetricsRegistry {
 public:
  MetricsRegistry() = default;

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Registers counter `name` (dotted, e.g. "nat.translated_out") backed by
  // the counter variable itself. Re-registering a name replaces the source
  // (a re-instantiated service keeps one entry).
  void Register(const std::string& name, const u64* source);

  // Same, for derived/computed values.
  void Register(const std::string& name, std::function<u64()> getter);

  bool Has(const std::string& name) const;

  // Current value of `name`; 0 for unknown names (a metric that never
  // existed reads like one that never incremented).
  u64 Get(const std::string& name) const;

  usize size() const { return entries_.size(); }

  // Name/value pairs in registration order.
  std::vector<std::pair<std::string, u64>> Snapshot() const;

  // "name=value" lines, one per metric, in registration order.
  std::string Format() const;

 private:
  struct Entry {
    std::string name;
    std::function<u64()> getter;
  };

  const Entry* FindEntry(const std::string& name) const;

  std::vector<Entry> entries_;
};

}  // namespace emu

#endif  // SRC_CORE_METRICS_H_
