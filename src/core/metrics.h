// MetricsRegistry: the canonical telemetry surface of a deployment.
//
// Every service accumulates operational counters (frames encrypted, queries
// resolved, NAT rejects, ...). Historically each grew a bespoke getter and
// every harness hard-coded the ones it knew about. The registry replaces
// that N×M wiring: a service registers its metrics once by dotted name
// (`Service::RegisterMetrics`), and any consumer — examples, the chaos
// harness, the CASP debug controller (DirectionController::AttachMetrics),
// the MetricsSampler — enumerates or reads them uniformly.
//
// Three kinds (emu-scope):
//   - counter: monotonically increasing u64 (the original kind).
//   - gauge: a u64 that may go up or down (live processes, queue depth).
//   - histogram: a log2-bucketed `Histogram` distribution. A histogram also
//     exposes derived scalar views — `<name>.count`, `<name>.sum`,
//     `<name>.p50`, `<name>.p99` — through Snapshot/Get/TryGet, so scalar
//     consumers (the CASP bridge binds every snapshot name as a variable)
//     read distribution stats with no histogram-specific code.
//
// Registered sources are non-owning: a `const u64*` points at the counter
// member itself, a getter closure computes derived values, a
// `const Histogram*` points at the live distribution. Either must outlive
// the registry reads.
//
// `PrometheusText()` renders the registry in Prometheus text exposition
// format (counters, gauges, and full `_bucket`/`_sum`/`_count` histogram
// series); `PrometheusLint()` is a promtool-style checker used by tests and
// drivers to keep the exposition scrape-valid.
#ifndef SRC_CORE_METRICS_H_
#define SRC_CORE_METRICS_H_

#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/analysis/finding.h"
#include "src/common/types.h"
#include "src/core/histogram.h"

namespace emu {

enum class MetricKind : u8 {
  kCounter,
  kGauge,
  kHistogram,
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Registers counter `name` (dotted, e.g. "nat.translated_out") backed by
  // the counter variable itself. Re-registering a name replaces the source
  // (a re-instantiated service keeps one entry).
  void Register(const std::string& name, const u64* source);

  // Same, for derived/computed values.
  void Register(const std::string& name, std::function<u64()> getter);

  // A value that may decrease (occupancy, live process count).
  void RegisterGauge(const std::string& name, const u64* source);
  void RegisterGauge(const std::string& name, std::function<u64()> getter);

  // A live distribution. Scalar reads of `name` see its count; Snapshot
  // additionally expands `<name>.count/.sum/.p50/.p99`.
  void RegisterHistogram(const std::string& name, const Histogram* histogram);

  bool Has(const std::string& name) const;

  // Current value of `name`; 0 for unknown names (a metric that never
  // existed reads like one that never incremented). Prefer TryGet when the
  // caller must distinguish "absent" from 0.
  u64 Get(const std::string& name) const;

  // Current value of `name`, or nullopt when no such metric (nor derived
  // histogram view) is registered.
  std::optional<u64> TryGet(const std::string& name) const;

  // Kind of an exactly-registered metric (derived histogram views resolve
  // to their parent's kind); nullopt for unknown names.
  std::optional<MetricKind> Kind(const std::string& name) const;

  // The registered histogram, or nullptr when `name` is not a histogram.
  const Histogram* GetHistogram(const std::string& name) const;

  usize size() const { return entries_.size(); }

  // Name/value pairs in registration order; histograms expand to their four
  // derived scalar views.
  std::vector<std::pair<std::string, u64>> Snapshot() const;

  // "name=value" lines, one per metric, in registration order.
  std::string Format() const;

  // Prometheus text exposition (https://prometheus.io/docs/instrumenting/
  // exposition_formats/): dotted names sanitized to [a-zA-Z0-9_:], one
  // `# TYPE` line per metric, histogram series with cumulative `_bucket`
  // samples, `_sum` and `_count`.
  std::string PrometheusText() const;

 private:
  struct Entry {
    std::string name;
    MetricKind kind = MetricKind::kCounter;
    std::function<u64()> getter;
    const Histogram* histogram = nullptr;
  };

  void Upsert(Entry entry);
  const Entry* FindEntry(const std::string& name) const;

  std::vector<Entry> entries_;
};

// promtool-style validation of a Prometheus text exposition: name syntax,
// one TYPE per metric and before its samples, numeric sample values, and
// histogram invariants (cumulative non-decreasing buckets, increasing `le`
// bounds, `+Inf` bucket present and equal to `_count`, `_sum` present).
// Returns EVERY violation (not just the first) as shared Finding records so
// the diagnostics route through the same text/JSON formatters as emu_lint
// and emu_check. Check ids: METRICSFMT (syntax), METRICSDUP (duplicate or
// misplaced TYPE), METRICSHIST (histogram invariants); all Severity::kError.
std::vector<Finding> PrometheusLintFindings(const std::string& text);

// Convenience wrapper: true when the text scrapes clean; otherwise fills
// `error` with the first finding's message.
bool PrometheusLint(const std::string& text, std::string* error);

}  // namespace emu

#endif  // SRC_CORE_METRICS_H_
