#include "src/core/retry.h"

namespace emu {

u64 RetryPolicy::NominalDelay(u32 attempt) const {
  // Growth in double (exactly representable well past any sane delay), with
  // an overflow guard long before the u64 edge.
  constexpr double kCeiling = 9.0e18;
  double delay = static_cast<double>(base);
  for (u32 i = 0; i < attempt; ++i) {
    delay *= multiplier;
    if (delay >= kCeiling) {
      delay = kCeiling;
      break;
    }
  }
  u64 ticks = static_cast<u64>(delay);
  if (cap > 0 && ticks > cap) {
    ticks = cap;
  }
  return ticks > 0 ? ticks : 1;
}

u64 Retrier::NextDelay() {
  const u64 nominal = policy_.NominalDelay(attempt_);
  ++attempt_;
  // One draw per call, unconditionally (see header).
  const double unit = rng_.NextDouble() * 2.0 - 1.0;  // [-1, 1)
  const double jittered =
      static_cast<double>(nominal) * (1.0 + policy_.jitter * unit);
  const u64 ticks = jittered <= 1.0 ? 1 : static_cast<u64>(jittered);
  return ticks;
}

}  // namespace emu
