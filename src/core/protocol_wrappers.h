// Protocol wrappers in the paper's style (Fig. 3):
//
//   var eth = new EthernetWrapper(dataplane.tdata);
//   var ip  = new IPv4Wrapper(dataplane.tdata);
//   var tcp = new TCPWrapper(dataplane.tdata);
//   var arp = new ARPWrapper(dataplane.tdata);
//
// Each wrapper binds a protocol view to a NetFpgaData frame at the right
// offset (computed from the lower layers, e.g. TCP after the actual IHL) and
// exposes a Valid() check. They are thin sugar over the src/net views so
// service code reads like the paper's C#.
#ifndef SRC_CORE_PROTOCOL_WRAPPERS_H_
#define SRC_CORE_PROTOCOL_WRAPPERS_H_

#include "src/net/arp.h"
#include "src/net/ethernet.h"
#include "src/net/icmp.h"
#include "src/net/ipv4.h"
#include "src/net/tcp.h"
#include "src/net/udp.h"
#include "src/netfpga/dataplane.h"

namespace emu {

class EthernetWrapper : public EthernetView {
 public:
  explicit EthernetWrapper(NetFpgaData& dataplane) : EthernetView(dataplane.tdata) {}
};

class Ipv4Wrapper : public Ipv4View {
 public:
  explicit Ipv4Wrapper(NetFpgaData& dataplane)
      : Ipv4View(dataplane.tdata, kEthernetHeaderSize),
        reachable_(EthernetView(dataplane.tdata).Valid() &&
                   EthernetView(dataplane.tdata).EtherTypeIs(EtherType::kIpv4)) {}

  // Valid IPv4 *and* the Ethernet header says this is IPv4.
  bool Reachable() const { return reachable_ && Valid(); }

 private:
  bool reachable_;
};

class ArpWrapper : public ArpView {
 public:
  explicit ArpWrapper(NetFpgaData& dataplane)
      : ArpView(dataplane.tdata, kEthernetHeaderSize),
        reachable_(EthernetView(dataplane.tdata).Valid() &&
                   EthernetView(dataplane.tdata).EtherTypeIs(EtherType::kArp)) {}

  bool Reachable() const { return reachable_ && Valid(); }

 private:
  bool reachable_;
};

// L4 wrappers compute their offset from the IPv4 IHL; Reachable() is false
// when the frame is not IPv4 or carries a different protocol.
class TcpWrapper : public TcpView {
 public:
  explicit TcpWrapper(NetFpgaData& dataplane);
  bool Reachable() const { return reachable_ && Valid(); }
  usize SegmentLength() const { return segment_length_; }

 private:
  bool reachable_;
  usize segment_length_ = 0;
};

class UdpWrapper : public UdpView {
 public:
  explicit UdpWrapper(NetFpgaData& dataplane);
  bool Reachable() const { return reachable_ && Valid(); }

 private:
  bool reachable_;
};

class IcmpWrapper : public IcmpView {
 public:
  explicit IcmpWrapper(NetFpgaData& dataplane);
  bool Reachable() const { return reachable_ && Valid(); }
  usize MessageLength() const { return message_length_; }

 private:
  bool reachable_;
  usize message_length_ = 0;
};

}  // namespace emu

#endif  // SRC_CORE_PROTOCOL_WRAPPERS_H_
