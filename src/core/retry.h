// Retry / timeout / backoff primitives (emu-gossip).
//
// Deadline: a cycle on a Simulator clock that a coroutine service can wait
// against. WaitUntil predicates must normally not read the clock
// (src/hdl/process.h): the quiescence fast path skips windows in which no
// wake-tracked state changes, so a time-only predicate would oversleep.
// Deadline squares that — constructing one registers a forced wake
// (Simulator::RequestWakeAt) at the deadline cycle, so the scheduler is
// guaranteed to execute that edge and re-evaluate parked predicates there.
// Reading the clock against a registered deadline is therefore sound:
//
//   Deadline deadline = Deadline::After(sim, policy.NominalDelay(attempt));
//   co_await UntilOrDeadline(deadline, [&] { return acked; });
//   if (deadline.expired() && !acked) { /* retransmit */ }
//
// RetryPolicy / Retrier: exponential backoff with bounded attempts and
// seed-stable jitter. Delays are plain u64 ticks — cycles against a
// Simulator clock, picoseconds against an EventScheduler — the policy does
// not care. Jitter draws come from the Retrier's own seeded Rng stream with
// a fixed draw count per call (exactly one), so a run's retry timing replays
// bit-exactly from the seed no matter what else draws randomness.
#ifndef SRC_CORE_RETRY_H_
#define SRC_CORE_RETRY_H_

#include <utility>

#include "src/common/rng.h"
#include "src/common/types.h"
#include "src/hdl/process.h"
#include "src/hdl/simulator.h"

namespace emu {

class Deadline {
 public:
  // Registers the forced wake on construction; `at` is an absolute cycle.
  Deadline(Simulator& sim, Cycle at) : sim_(sim), at_(at) { sim.RequestWakeAt(at); }

  static Deadline After(Simulator& sim, u64 cycles) {
    return Deadline(sim, sim.now() + cycles);
  }

  Cycle at() const { return at_; }
  bool expired() const { return sim_.now() >= at_; }

 private:
  Simulator& sim_;
  Cycle at_;
};

// `co_await UntilOrDeadline(deadline, pred)`: resumes on the first edge where
// pred() holds or the deadline has passed, whichever comes first; the caller
// checks deadline.expired() to learn which. The deadline must outlive the
// await (keep it in the coroutine frame).
template <typename Pred>
auto UntilOrDeadline(const Deadline& deadline, Pred pred) {
  return WaitUntil([&deadline, pred = std::move(pred)]() mutable {
    return deadline.expired() || pred();
  });
}

struct RetryPolicy {
  u64 base = 64;           // nominal delay of the first retry, in ticks
  double multiplier = 2.0;  // geometric growth per attempt
  u64 cap = 0;             // nominal delay ceiling; 0 = uncapped
  u32 max_attempts = 5;    // Retrier::Exhausted after this many NextDelay calls
  double jitter = 0.1;     // symmetric fraction: delay in nominal * [1-j, 1+j]

  // base * multiplier^attempt, capped. Computed by repeated IEEE double
  // multiplication — never std::pow, whose last-ulp results differ across
  // libms and would make replay digests toolchain-dependent.
  u64 NominalDelay(u32 attempt) const;
};

// Issues the jittered delay sequence for one retried operation.
class Retrier {
 public:
  Retrier(RetryPolicy policy, u64 seed) : policy_(policy), rng_(seed) {}

  u32 attempt() const { return attempt_; }
  bool Exhausted() const { return attempt_ >= policy_.max_attempts; }

  // Jittered delay for the current attempt (>= 1 tick); advances the attempt
  // counter. Always draws exactly one jitter sample, even at jitter == 0, so
  // the stream position depends only on how many delays were issued.
  u64 NextDelay();

  // Success: the next failure backs off from `base` again. The Rng stream is
  // deliberately NOT rewound — position stays a pure function of total
  // NextDelay calls.
  void Reset() { attempt_ = 0; }

 private:
  RetryPolicy policy_;
  Rng rng_;
  u32 attempt_ = 0;
};

}  // namespace emu

#endif  // SRC_CORE_RETRY_H_
