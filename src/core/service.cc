// Service is an interface; see service.h.
#include "src/core/service.h"
