#include "src/core/protocol_wrappers.h"

namespace emu {
namespace {

// Offset of the L4 header, or 0 when the frame is not valid IPv4 carrying
// `protocol`.
usize L4Offset(Packet& packet, IpProtocol protocol) {
  EthernetView eth(packet);
  if (!eth.Valid() || !eth.EtherTypeIs(EtherType::kIpv4)) {
    return 0;
  }
  Ipv4View ip(packet);
  if (!ip.Valid() || !ip.ProtocolIs(protocol)) {
    return 0;
  }
  return ip.payload_offset();
}

usize L4Length(Packet& packet) {
  Ipv4View ip(packet);
  // total_length comes off the wire: a corrupted frame can claim more bytes
  // than the buffer holds (or fewer than its own header). Clamp to what is
  // actually present so checksum walks never read past the frame.
  const usize header = ip.HeaderBytes();
  const usize claimed = ip.total_length();
  if (claimed < header) {
    return 0;
  }
  const usize offset = ip.payload_offset();
  const usize available = packet.size() > offset ? packet.size() - offset : 0;
  const usize length = claimed - header;
  return length < available ? length : available;
}

}  // namespace

TcpWrapper::TcpWrapper(NetFpgaData& dataplane)
    : TcpView(dataplane.tdata, L4Offset(dataplane.tdata, IpProtocol::kTcp)),
      reachable_(L4Offset(dataplane.tdata, IpProtocol::kTcp) != 0) {
  if (reachable_) {
    segment_length_ = L4Length(dataplane.tdata);
  }
}

UdpWrapper::UdpWrapper(NetFpgaData& dataplane)
    : UdpView(dataplane.tdata, L4Offset(dataplane.tdata, IpProtocol::kUdp)),
      reachable_(L4Offset(dataplane.tdata, IpProtocol::kUdp) != 0) {}

IcmpWrapper::IcmpWrapper(NetFpgaData& dataplane)
    : IcmpView(dataplane.tdata, L4Offset(dataplane.tdata, IpProtocol::kIcmp)),
      reachable_(L4Offset(dataplane.tdata, IpProtocol::kIcmp) != 0) {
  if (reachable_) {
    message_length_ = L4Length(dataplane.tdata);
  }
}

}  // namespace emu
