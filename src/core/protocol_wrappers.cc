#include "src/core/protocol_wrappers.h"

namespace emu {
namespace {

// Offset of the L4 header, or 0 when the frame is not valid IPv4 carrying
// `protocol`.
usize L4Offset(Packet& packet, IpProtocol protocol) {
  EthernetView eth(packet);
  if (!eth.Valid() || !eth.EtherTypeIs(EtherType::kIpv4)) {
    return 0;
  }
  Ipv4View ip(packet);
  if (!ip.Valid() || !ip.ProtocolIs(protocol)) {
    return 0;
  }
  return ip.payload_offset();
}

usize L4Length(Packet& packet) {
  Ipv4View ip(packet);
  return ip.total_length() - ip.HeaderBytes();
}

}  // namespace

TcpWrapper::TcpWrapper(NetFpgaData& dataplane)
    : TcpView(dataplane.tdata, L4Offset(dataplane.tdata, IpProtocol::kTcp)),
      reachable_(L4Offset(dataplane.tdata, IpProtocol::kTcp) != 0) {
  if (reachable_) {
    segment_length_ = L4Length(dataplane.tdata);
  }
}

UdpWrapper::UdpWrapper(NetFpgaData& dataplane)
    : UdpView(dataplane.tdata, L4Offset(dataplane.tdata, IpProtocol::kUdp)),
      reachable_(L4Offset(dataplane.tdata, IpProtocol::kUdp) != 0) {}

IcmpWrapper::IcmpWrapper(NetFpgaData& dataplane)
    : IcmpView(dataplane.tdata, L4Offset(dataplane.tdata, IpProtocol::kIcmp)),
      reachable_(L4Offset(dataplane.tdata, IpProtocol::kIcmp) != 0) {
  if (reachable_) {
    message_length_ = L4Length(dataplane.tdata);
  }
}

}  // namespace emu
