// Execution targets: the same Service source runs on all of them (§3.3).
//
//   FpgaTarget — the cycle-accurate NetFPGA pipeline (hardware semantics);
//                latency/throughput numbers come from here.
//   CpuTarget  — plain software execution (software semantics); the paper's
//                x86 run/test environment for development and debugging.
//
// The third target, attachment to the event-driven network simulator
// (Mininet substitute), lives in src/sim/sim_host.h because it depends on
// the simulator; it reuses CpuTarget's software semantics.
#ifndef SRC_CORE_TARGETS_H_
#define SRC_CORE_TARGETS_H_

#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "src/core/service.h"
#include "src/kiwi/hw_scheduler.h"
#include "src/kiwi/sw_scheduler.h"
#include "src/netfpga/pipeline.h"

namespace emu {

struct EgressFrame {
  u8 port = 0;
  Packet frame;
};

class FpgaTarget {
 public:
  // `clock_hz` lets baselines run at their own fabric rate (the P4FPGA
  // comparison point uses 250 MHz, §5.3).
  explicit FpgaTarget(Service& service, PipelineConfig config = {},
                      u64 clock_hz = Simulator::kNetFpgaClockHz);

  Simulator& sim() { return scheduler_.sim(); }
  NetFpgaPipeline& pipeline() { return *pipeline_; }

  // Schedules a frame's arrival; does not advance time.
  void Inject(u8 port, Packet frame, Cycle earliest = 0);

  // Advances the clock.
  void Run(Cycle cycles) { scheduler_.sim().Run(cycles); }

  // Pre-elaborates the constructed pipeline into the flat scheduled edge
  // loop (see Simulator::EnableFlatSchedule). The NetFPGA datapath declares
  // all of its IO, so this succeeds for every stock service; it returns
  // false (leaving dynamic dispatch) only when a custom Service left a
  // process undeclared or declared a cyclic comb path.
  bool EnableFlatSchedule() { return scheduler_.sim().EnableFlatSchedule(); }

  // Runs until at least `count` frames have egressed (or `limit` elapses).
  bool RunUntilEgressCount(usize count, Cycle limit);

  // Options for RunUntilEgress. `threads` selects the parallel sharded
  // runner (emu-par) where the target has shardable structure: a sharded
  // topology (ShardedTopology, src/sim/topology.h) runs one worker thread
  // per shard group. A lone FpgaTarget pipeline is a single clock domain —
  // one Simulator whose processes share state every cycle — so values above
  // 1 are accepted here for API uniformity but execute on the serial
  // kernel; results are identical for any value.
  struct RunOptions {
    usize threads = 1;
    Cycle limit = 1'000'000;
  };

  // Runs until the next frame egresses (or `limit` elapses). The canonical
  // request/response loop: Inject(); RunUntilEgress();
  bool RunUntilEgress(Cycle limit = 1'000'000) {
    return RunUntilEgressCount(egress_.size() + 1, limit);
  }
  bool RunUntilEgress(const RunOptions& opts) {
    return RunUntilEgressCount(egress_.size() + 1, opts.limit);
  }

  // Runs until `done()` holds (or `limit` elapses). `done` must be a pure
  // function of simulation state — it is evaluated before each edge, and the
  // kernel may fast-forward across quiescent windows between evaluations.
  bool RunUntil(const std::function<bool()>& done, Cycle limit) {
    return scheduler_.RunUntil(done, limit);
  }

  // Convenience single request/response exchange: injects, runs until one
  // frame egresses, and returns it.
  Expected<Packet> SendAndCollect(u8 port, Packet frame, Cycle limit = 1'000'000);

  // All egressed frames so far, in egress order; Take clears the log.
  const std::vector<EgressFrame>& egress() const { return egress_; }
  std::vector<EgressFrame> TakeEgress();

 private:
  HwScheduler scheduler_;
  std::unique_ptr<NetFpgaPipeline> pipeline_;
  std::vector<EgressFrame> egress_;
};

class CpuTarget {
 public:
  explicit CpuTarget(Service& service, usize fifo_depth = 1024);

  Simulator& sim() { return scheduler_.sim(); }

  // Delivers one frame to the service under software semantics and returns
  // everything it emitted before going idle.
  std::vector<Packet> Deliver(Packet frame, usize max_quanta = 100'000);

  Service& service() { return service_; }

 private:
  Service& service_;
  SwScheduler scheduler_;
  std::unique_ptr<SyncFifo<Packet>> rx_;
  std::unique_ptr<SyncFifo<Packet>> tx_;
};

}  // namespace emu

#endif  // SRC_CORE_TARGETS_H_
