// Bump arena and recycling pool for hot-path allocations (emu-speed).
//
// Two allocation patterns dominate the kernel's malloc traffic:
//
//   1. Coroutine frames. Every HwProcess body is one heap allocation made by
//      the compiler when the coroutine is called. Frames live as long as the
//      process (i.e. as long as the owning Simulator), so a bump arena that
//      is only reclaimed wholesale fits exactly: BumpArena packs the frames
//      of one design contiguously (cache locality for the per-edge sweep)
//      and frees them all when the Simulator dies. CoroFrameArenaScope routes
//      HwProcess::promise_type::operator new to an arena for the duration of
//      design construction; frames allocated outside any scope fall back to
//      the global heap.
//
//   2. Scheduler event closures. EventScheduler used to type-erase each
//      scheduled action into a std::function, one heap allocation per event
//      beyond the small-buffer limit. RecyclingPool backs those closures with
//      size-class free lists over a bump arena: steady-state scheduling hits
//      the free list (no malloc at all), and the arena rewinds whenever the
//      owning scheduler's queue drains (the per-shard epoch boundary — an
//      empty queue proves no closure is live).
//
// Neither class is thread-safe; each belongs to exactly one shard, matching
// the parallel runner's one-scheduler-per-shard ownership.
#ifndef SRC_CORE_ARENA_H_
#define SRC_CORE_ARENA_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "src/common/types.h"

namespace emu {

class BumpArena {
 public:
  explicit BumpArena(usize chunk_bytes = 64 * 1024) : chunk_bytes_(chunk_bytes) {}

  BumpArena(const BumpArena&) = delete;
  BumpArena& operator=(const BumpArena&) = delete;

  void* Allocate(usize size, usize align) {
    usize offset = (offset_ + align - 1) & ~(align - 1);
    if (chunk_ == nullptr || offset + size > chunk_bytes_) [[unlikely]] {
      return AllocateSlow(size, align);
    }
    void* out = chunk_ + offset;
    offset_ = offset + size;
    return out;
  }

  // Rewinds to empty, retaining every chunk for reuse. Only call when no
  // allocation is live (the caller proves that, e.g. by an empty event
  // queue).
  void Reset() {
    next_chunk_ = 0;
    chunk_ = chunks_.empty() ? nullptr : chunks_[0].get();
    if (chunk_ != nullptr) {
      next_chunk_ = 1;
    }
    offset_ = 0;
  }

  usize chunks() const { return chunks_.size(); }

 private:
  void* AllocateSlow(usize size, usize align) {
    // Oversized requests get a dedicated chunk so chunk_bytes_ stays a
    // steady-state tuning knob, not a hard limit.
    const usize need = size + align;
    if (need > chunk_bytes_) {
      chunks_.insert(chunks_.begin() + static_cast<std::ptrdiff_t>(next_chunk_),
                     std::make_unique<std::byte[]>(need));
      std::byte* base = chunks_[next_chunk_].get();
      ++next_chunk_;
      const usize aligned =
          (reinterpret_cast<usize>(base) + align - 1) & ~(align - 1);
      return reinterpret_cast<void*>(aligned);
    }
    if (next_chunk_ == chunks_.size()) {
      chunks_.push_back(std::make_unique<std::byte[]>(chunk_bytes_));
    }
    chunk_ = chunks_[next_chunk_].get();
    ++next_chunk_;
    offset_ = 0;
    const usize offset = (offset_ + align - 1) & ~(align - 1);
    void* out = chunk_ + offset;
    offset_ = offset + size;
    return out;
  }

  usize chunk_bytes_;
  std::vector<std::unique_ptr<std::byte[]>> chunks_;
  std::byte* chunk_ = nullptr;  // current chunk (new[] storage is max-aligned)
  usize next_chunk_ = 0;        // index of the next retained chunk to reuse
  usize offset_ = 0;
};

// Size-class recycling over a BumpArena: Allocate pops the class free list
// or bumps; Free pushes back. Sizes above kMaxPooled fall through to the
// global heap (rare, e.g. a closure capturing a whole Packet by value).
class RecyclingPool {
 public:
  void* Allocate(usize size) {
    const int cls = ClassOf(size);
    if (cls < 0) {
      return ::operator new(size);
    }
    if (void* head = free_[static_cast<usize>(cls)]) {
      free_[static_cast<usize>(cls)] = *static_cast<void**>(head);
      return head;
    }
    return arena_.Allocate(kClassBytes[static_cast<usize>(cls)],
                           alignof(std::max_align_t));
  }

  void Free(void* ptr, usize size) {
    const int cls = ClassOf(size);
    if (cls < 0) {
      ::operator delete(ptr);
      return;
    }
    *static_cast<void**>(ptr) = free_[static_cast<usize>(cls)];
    free_[static_cast<usize>(cls)] = ptr;
  }

  // Rewinds the backing arena and drops the free lists (which point into
  // it). Only valid when every pooled allocation has been freed.
  void Reset() {
    for (void*& head : free_) {
      head = nullptr;
    }
    arena_.Reset();
  }

 private:
  static constexpr usize kClassBytes[] = {32, 64, 128, 256, 512, 1024};
  static constexpr usize kClasses = sizeof(kClassBytes) / sizeof(kClassBytes[0]);
  static constexpr usize kMaxPooled = kClassBytes[kClasses - 1];

  static int ClassOf(usize size) {
    if (size > kMaxPooled) {
      return -1;
    }
    for (usize i = 0; i < kClasses; ++i) {
      if (size <= kClassBytes[i]) {
        return static_cast<int>(i);
      }
    }
    return -1;
  }

  BumpArena arena_;
  void* free_[kClasses] = {};
};

// While a scope is live on this thread, HwProcess coroutine frames allocate
// from its arena (see HwProcess::promise_type::operator new). Scopes nest.
class CoroFrameArenaScope {
 public:
  explicit CoroFrameArenaScope(BumpArena& arena) : prev_(current_) { current_ = &arena; }
  ~CoroFrameArenaScope() { current_ = prev_; }

  CoroFrameArenaScope(const CoroFrameArenaScope&) = delete;
  CoroFrameArenaScope& operator=(const CoroFrameArenaScope&) = delete;

  static BumpArena* current() { return current_; }

 private:
  BumpArena* prev_;
  inline static thread_local BumpArena* current_ = nullptr;
};

}  // namespace emu

#endif  // SRC_CORE_ARENA_H_
