#include "src/net/udp.h"

#include "src/common/bit_util.h"
#include "src/net/checksum.h"

namespace emu {

u16 UdpView::source_port() const { return BitUtil::Get16(packet_.bytes(), offset_); }
void UdpView::set_source_port(u16 value) { BitUtil::Set16(packet_.bytes(), offset_, value); }

u16 UdpView::destination_port() const { return BitUtil::Get16(packet_.bytes(), offset_ + 2); }
void UdpView::set_destination_port(u16 value) {
  BitUtil::Set16(packet_.bytes(), offset_ + 2, value);
}

u16 UdpView::length() const { return BitUtil::Get16(packet_.bytes(), offset_ + 4); }
void UdpView::set_length(u16 value) { BitUtil::Set16(packet_.bytes(), offset_ + 4, value); }

u16 UdpView::checksum() const { return BitUtil::Get16(packet_.bytes(), offset_ + 6); }
void UdpView::set_checksum(u16 value) { BitUtil::Set16(packet_.bytes(), offset_ + 6, value); }

// The length field comes off the wire: a corrupted datagram can claim more
// bytes than the frame holds (or fewer than its own header). Every span
// derived from it is clamped to what is actually present.
usize UdpView::BoundedLength() const {
  const usize available = packet_.size() > offset_ ? packet_.size() - offset_ : 0;
  const usize claimed = length();
  return claimed < available ? claimed : available;
}

std::span<const u8> UdpView::Payload() const {
  const usize len = BoundedLength();
  if (len <= kUdpHeaderSize) {
    return {};
  }
  return packet_.View(offset_ + kUdpHeaderSize, len - kUdpHeaderSize);
}

std::span<u8> UdpView::MutablePayload() {
  const usize len = BoundedLength();
  if (len <= kUdpHeaderSize) {
    return {};
  }
  return packet_.MutableView(offset_ + kUdpHeaderSize, len - kUdpHeaderSize);
}

void UdpView::UpdateChecksum(const Ipv4View& ip) {
  set_checksum(0);
  u16 sum = TransportChecksum(ip.source(), ip.destination(), static_cast<u8>(IpProtocol::kUdp),
                              packet_.View(offset_, BoundedLength()));
  if (sum == 0) {
    sum = 0xffff;  // RFC 768: transmitted zero means "no checksum"
  }
  set_checksum(sum);
}

bool UdpView::ChecksumValid(const Ipv4View& ip) const {
  if (checksum() == 0) {
    return true;  // sender opted out
  }
  return TransportChecksum(ip.source(), ip.destination(), static_cast<u8>(IpProtocol::kUdp),
                           packet_.View(offset_, BoundedLength())) == 0;
}

Packet MakeUdpPacket(const UdpPacketSpec& spec, std::span<const u8> payload) {
  std::vector<u8> udp(kUdpHeaderSize, 0);
  udp.insert(udp.end(), payload.begin(), payload.end());

  Ipv4PacketSpec ip_spec;
  ip_spec.eth_dst = spec.eth_dst;
  ip_spec.eth_src = spec.eth_src;
  ip_spec.ip_src = spec.ip_src;
  ip_spec.ip_dst = spec.ip_dst;
  ip_spec.protocol = IpProtocol::kUdp;
  Packet frame = MakeIpv4Packet(ip_spec, udp);

  Ipv4View ip(frame);
  UdpView view(frame, ip.payload_offset());
  view.set_source_port(spec.src_port);
  view.set_destination_port(spec.dst_port);
  view.set_length(static_cast<u16>(kUdpHeaderSize + payload.size()));
  view.UpdateChecksum(ip);
  return frame;
}

}  // namespace emu
