#include "src/net/ipv4.h"

#include "src/common/bit_util.h"
#include "src/net/checksum.h"

namespace emu {

bool Ipv4View::Valid() const {
  if (packet_.size() < offset_ + kIpv4MinHeaderSize) {
    return false;
  }
  if (version() != 4 || ihl() < 5) {
    return false;
  }
  return packet_.size() >= offset_ + HeaderBytes() &&
         packet_.size() >= offset_ + total_length();
}

u8 Ipv4View::version() const { return BitUtil::GetBits(packet_.bytes(), offset_, 0, 4); }

u8 Ipv4View::ihl() const { return BitUtil::GetBits(packet_.bytes(), offset_, 4, 4); }

void Ipv4View::SetVersionIhl(u8 version, u8 ihl) {
  BitUtil::SetBits(packet_.bytes(), offset_, 0, 4, version);
  BitUtil::SetBits(packet_.bytes(), offset_, 4, 4, ihl);
}

u8 Ipv4View::dscp_ecn() const { return BitUtil::Get8(packet_.bytes(), offset_ + 1); }
void Ipv4View::set_dscp_ecn(u8 value) { BitUtil::Set8(packet_.bytes(), offset_ + 1, value); }

u16 Ipv4View::total_length() const { return BitUtil::Get16(packet_.bytes(), offset_ + 2); }
void Ipv4View::set_total_length(u16 value) { BitUtil::Set16(packet_.bytes(), offset_ + 2, value); }

u16 Ipv4View::identification() const { return BitUtil::Get16(packet_.bytes(), offset_ + 4); }
void Ipv4View::set_identification(u16 value) {
  BitUtil::Set16(packet_.bytes(), offset_ + 4, value);
}

u16 Ipv4View::flags_fragment() const { return BitUtil::Get16(packet_.bytes(), offset_ + 6); }
void Ipv4View::set_flags_fragment(u16 value) {
  BitUtil::Set16(packet_.bytes(), offset_ + 6, value);
}

u8 Ipv4View::ttl() const { return BitUtil::Get8(packet_.bytes(), offset_ + 8); }
void Ipv4View::set_ttl(u8 value) { BitUtil::Set8(packet_.bytes(), offset_ + 8, value); }

u8 Ipv4View::protocol_raw() const { return BitUtil::Get8(packet_.bytes(), offset_ + 9); }
void Ipv4View::set_protocol(IpProtocol protocol) {
  BitUtil::Set8(packet_.bytes(), offset_ + 9, static_cast<u8>(protocol));
}

u16 Ipv4View::header_checksum() const { return BitUtil::Get16(packet_.bytes(), offset_ + 10); }
void Ipv4View::set_header_checksum(u16 value) {
  BitUtil::Set16(packet_.bytes(), offset_ + 10, value);
}

Ipv4Address Ipv4View::source() const {
  return Ipv4Address(BitUtil::Get32(packet_.bytes(), offset_ + 12));
}
void Ipv4View::set_source(Ipv4Address addr) {
  BitUtil::Set32(packet_.bytes(), offset_ + 12, addr.value());
}

Ipv4Address Ipv4View::destination() const {
  return Ipv4Address(BitUtil::Get32(packet_.bytes(), offset_ + 16));
}
void Ipv4View::set_destination(Ipv4Address addr) {
  BitUtil::Set32(packet_.bytes(), offset_ + 16, addr.value());
}

void Ipv4View::UpdateChecksum() {
  set_header_checksum(0);
  set_header_checksum(InternetChecksum(packet_.View(offset_, HeaderBytes())));
}

bool Ipv4View::ChecksumValid() const {
  return InternetChecksum(packet_.View(offset_, HeaderBytes())) == 0;
}

std::span<const u8> Ipv4View::Payload() const {
  const usize start = payload_offset();
  const usize len = offset_ + total_length() - start;
  return packet_.View(start, len);
}

std::span<u8> Ipv4View::MutablePayload() {
  const usize start = payload_offset();
  const usize len = offset_ + total_length() - start;
  return packet_.MutableView(start, len);
}

Packet MakeIpv4Packet(const Ipv4PacketSpec& spec, std::span<const u8> l4_payload) {
  std::vector<u8> ip_packet(kIpv4MinHeaderSize, 0);
  ip_packet.insert(ip_packet.end(), l4_payload.begin(), l4_payload.end());

  Packet frame = MakeEthernetFrame(spec.eth_dst, spec.eth_src, EtherType::kIpv4, ip_packet);
  Ipv4View ip(frame);
  ip.SetVersionIhl(4, 5);
  ip.set_total_length(static_cast<u16>(kIpv4MinHeaderSize + l4_payload.size()));
  ip.set_identification(spec.identification);
  ip.set_ttl(spec.ttl);
  ip.set_protocol(spec.protocol);
  ip.set_source(spec.ip_src);
  ip.set_destination(spec.ip_dst);
  ip.UpdateChecksum();
  return frame;
}

}  // namespace emu
