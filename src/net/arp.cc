#include "src/net/arp.h"

#include "src/common/bit_util.h"

namespace emu {

bool ArpView::Valid() const {
  return packet_.size() >= offset_ + kArpPacketSize && htype() == 1 && ptype() == 0x0800 &&
         hlen() == 6 && plen() == 4;
}

u16 ArpView::htype() const { return BitUtil::Get16(packet_.bytes(), offset_); }
u16 ArpView::ptype() const { return BitUtil::Get16(packet_.bytes(), offset_ + 2); }
u8 ArpView::hlen() const { return BitUtil::Get8(packet_.bytes(), offset_ + 4); }
u8 ArpView::plen() const { return BitUtil::Get8(packet_.bytes(), offset_ + 5); }
u16 ArpView::oper_raw() const { return BitUtil::Get16(packet_.bytes(), offset_ + 6); }

void ArpView::set_oper(ArpOper oper) {
  BitUtil::Set16(packet_.bytes(), offset_ + 6, static_cast<u16>(oper));
}

MacAddress ArpView::sender_mac() const {
  return MacAddress::FromU48(BitUtil::Get48(packet_.bytes(), offset_ + 8));
}
void ArpView::set_sender_mac(MacAddress mac) {
  BitUtil::Set48(packet_.bytes(), offset_ + 8, mac.ToU48());
}

Ipv4Address ArpView::sender_ip() const {
  return Ipv4Address(BitUtil::Get32(packet_.bytes(), offset_ + 14));
}
void ArpView::set_sender_ip(Ipv4Address ip) {
  BitUtil::Set32(packet_.bytes(), offset_ + 14, ip.value());
}

MacAddress ArpView::target_mac() const {
  return MacAddress::FromU48(BitUtil::Get48(packet_.bytes(), offset_ + 18));
}
void ArpView::set_target_mac(MacAddress mac) {
  BitUtil::Set48(packet_.bytes(), offset_ + 18, mac.ToU48());
}

Ipv4Address ArpView::target_ip() const {
  return Ipv4Address(BitUtil::Get32(packet_.bytes(), offset_ + 24));
}
void ArpView::set_target_ip(Ipv4Address ip) {
  BitUtil::Set32(packet_.bytes(), offset_ + 24, ip.value());
}

void ArpView::WriteFixedFields() {
  BitUtil::Set16(packet_.bytes(), offset_, 1);           // Ethernet
  BitUtil::Set16(packet_.bytes(), offset_ + 2, 0x0800);  // IPv4
  BitUtil::Set8(packet_.bytes(), offset_ + 4, 6);
  BitUtil::Set8(packet_.bytes(), offset_ + 5, 4);
}

Packet MakeArpRequest(MacAddress sender_mac, Ipv4Address sender_ip, Ipv4Address target_ip) {
  std::vector<u8> body(kArpPacketSize, 0);
  Packet frame = MakeEthernetFrame(MacAddress::Broadcast(), sender_mac, EtherType::kArp, body);
  ArpView arp(frame);
  arp.WriteFixedFields();
  arp.set_oper(ArpOper::kRequest);
  arp.set_sender_mac(sender_mac);
  arp.set_sender_ip(sender_ip);
  arp.set_target_mac(MacAddress());
  arp.set_target_ip(target_ip);
  return frame;
}

Packet MakeArpReply(MacAddress sender_mac, Ipv4Address sender_ip, MacAddress target_mac,
                    Ipv4Address target_ip) {
  std::vector<u8> body(kArpPacketSize, 0);
  Packet frame = MakeEthernetFrame(target_mac, sender_mac, EtherType::kArp, body);
  ArpView arp(frame);
  arp.WriteFixedFields();
  arp.set_oper(ArpOper::kReply);
  arp.set_sender_mac(sender_mac);
  arp.set_sender_ip(sender_ip);
  arp.set_target_mac(target_mac);
  arp.set_target_ip(target_ip);
  return frame;
}

}  // namespace emu
