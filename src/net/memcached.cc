#include "src/net/memcached.h"

#include <cstdio>

#include "src/common/bit_util.h"

namespace emu {
namespace {

constexpr u8 kMagicRequest = 0x80;
constexpr u8 kMagicResponse = 0x81;

void AppendText(std::vector<u8>& out, std::string_view text) {
  out.insert(out.end(), text.begin(), text.end());
}

// Splits `line` into whitespace-separated tokens.
std::vector<std::string_view> Tokenize(std::string_view line) {
  std::vector<std::string_view> tokens;
  usize pos = 0;
  while (pos < line.size()) {
    while (pos < line.size() && line[pos] == ' ') {
      ++pos;
    }
    const usize start = pos;
    while (pos < line.size() && line[pos] != ' ') {
      ++pos;
    }
    if (pos > start) {
      tokens.push_back(line.substr(start, pos - start));
    }
  }
  return tokens;
}

Expected<u64> ParseU64(std::string_view text) {
  if (text.empty()) {
    return InvalidArgument("empty number");
  }
  u64 value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') {
      return InvalidArgument("non-digit in number");
    }
    value = value * 10 + static_cast<u64>(c - '0');
  }
  return value;
}

// Finds the first CRLF at or after `from`; npos-like usize(-1) when absent.
usize FindCrlf(std::span<const u8> data, usize from) {
  for (usize i = from; i + 1 < data.size(); ++i) {
    if (data[i] == '\r' && data[i + 1] == '\n') {
      return i;
    }
  }
  return static_cast<usize>(-1);
}

std::string_view LineView(std::span<const u8> data, usize start, usize end) {
  return std::string_view(reinterpret_cast<const char*>(data.data()) + start, end - start);
}

}  // namespace

// --- Binary protocol -----------------------------------------------------------

std::vector<u8> BuildMcBinaryRequest(const McRequest& request) {
  const bool is_set = request.op == McOpcode::kSet;
  const usize extras = is_set ? 8 : 0;
  const usize body = extras + request.key.size() + (is_set ? request.value.size() : 0);

  std::vector<u8> out(kMcBinaryHeaderSize + body, 0);
  out[0] = kMagicRequest;
  out[1] = static_cast<u8>(request.op);
  BitUtil::Set16(out, 2, static_cast<u16>(request.key.size()));
  out[4] = static_cast<u8>(extras);
  // data type (5) and vbucket (6-7) stay zero
  BitUtil::Set32(out, 8, static_cast<u32>(body));
  BitUtil::Set32(out, 12, request.opaque);
  // cas (16-23) stays zero

  usize pos = kMcBinaryHeaderSize;
  if (is_set) {
    BitUtil::Set32(out, pos, request.flags);
    BitUtil::Set32(out, pos + 4, request.expiry);
    pos += 8;
  }
  for (char c : request.key) {
    out[pos++] = static_cast<u8>(c);
  }
  if (is_set) {
    for (char c : request.value) {
      out[pos++] = static_cast<u8>(c);
    }
  }
  return out;
}

Expected<McRequest> ParseMcBinaryRequest(std::span<const u8> data) {
  if (data.size() < kMcBinaryHeaderSize) {
    return MalformedPacket("binary request shorter than header");
  }
  if (data[0] != kMagicRequest) {
    return MalformedPacket("bad request magic");
  }
  McRequest request;
  request.protocol = McProtocol::kBinary;
  const u8 opcode = data[1];
  if (opcode != static_cast<u8>(McOpcode::kGet) && opcode != static_cast<u8>(McOpcode::kSet) &&
      opcode != static_cast<u8>(McOpcode::kDelete)) {
    return UnsupportedProtocol("unsupported opcode");
  }
  request.op = static_cast<McOpcode>(opcode);
  const u16 key_len = BitUtil::Get16(data, 2);
  const u8 extras_len = data[4];
  const u32 body_len = BitUtil::Get32(data, 8);
  request.opaque = BitUtil::Get32(data, 12);
  if (data.size() < kMcBinaryHeaderSize + body_len ||
      body_len < static_cast<u32>(key_len) + extras_len) {
    return MalformedPacket("binary request body truncated");
  }
  usize pos = kMcBinaryHeaderSize;
  if (request.op == McOpcode::kSet) {
    if (extras_len != 8) {
      return MalformedPacket("SET requires 8 extras bytes");
    }
    request.flags = BitUtil::Get32(data, pos);
    request.expiry = BitUtil::Get32(data, pos + 4);
  }
  pos += extras_len;
  request.key.assign(reinterpret_cast<const char*>(&data[pos]), key_len);
  pos += key_len;
  const usize value_len = body_len - extras_len - key_len;
  if (value_len > 0) {
    request.value.assign(reinterpret_cast<const char*>(&data[pos]), value_len);
  }
  return request;
}

std::vector<u8> BuildMcBinaryResponse(const McResponse& response) {
  const bool get_hit = response.op == McOpcode::kGet && response.status == McStatus::kNoError;
  const usize extras = get_hit ? 4 : 0;
  const usize body = extras + (get_hit ? response.value.size() : 0);

  std::vector<u8> out(kMcBinaryHeaderSize + body, 0);
  out[0] = kMagicResponse;
  out[1] = static_cast<u8>(response.op);
  out[4] = static_cast<u8>(extras);
  BitUtil::Set16(out, 6, static_cast<u16>(response.status));
  BitUtil::Set32(out, 8, static_cast<u32>(body));
  BitUtil::Set32(out, 12, response.opaque);

  usize pos = kMcBinaryHeaderSize;
  if (get_hit) {
    BitUtil::Set32(out, pos, response.flags);
    pos += 4;
    for (char c : response.value) {
      out[pos++] = static_cast<u8>(c);
    }
  }
  return out;
}

Expected<McResponse> ParseMcBinaryResponse(std::span<const u8> data) {
  if (data.size() < kMcBinaryHeaderSize) {
    return MalformedPacket("binary response shorter than header");
  }
  if (data[0] != kMagicResponse) {
    return MalformedPacket("bad response magic");
  }
  McResponse response;
  response.protocol = McProtocol::kBinary;
  response.op = static_cast<McOpcode>(data[1]);
  const u8 extras_len = data[4];
  response.status = static_cast<McStatus>(BitUtil::Get16(data, 6));
  const u32 body_len = BitUtil::Get32(data, 8);
  response.opaque = BitUtil::Get32(data, 12);
  if (data.size() < kMcBinaryHeaderSize + body_len || body_len < extras_len) {
    return MalformedPacket("binary response body truncated");
  }
  usize pos = kMcBinaryHeaderSize;
  if (extras_len >= 4) {
    response.flags = BitUtil::Get32(data, pos);
  }
  pos += extras_len;
  const usize value_len = body_len - extras_len;
  if (value_len > 0) {
    response.value.assign(reinterpret_cast<const char*>(&data[pos]), value_len);
  }
  return response;
}

// --- ASCII protocol --------------------------------------------------------------

std::vector<u8> BuildMcAsciiRequest(const McRequest& request) {
  std::vector<u8> out;
  switch (request.op) {
    case McOpcode::kGet:
      AppendText(out, "get ");
      AppendText(out, request.key);
      AppendText(out, "\r\n");
      break;
    case McOpcode::kSet:
      // Built by concatenation: keys may be up to 250 bytes.
      AppendText(out, "set " + request.key + " " + std::to_string(request.flags) + " " +
                          std::to_string(request.expiry) + " " +
                          std::to_string(request.value.size()) + "\r\n");
      AppendText(out, request.value);
      AppendText(out, "\r\n");
      break;
    case McOpcode::kDelete:
      AppendText(out, "delete ");
      AppendText(out, request.key);
      AppendText(out, "\r\n");
      break;
  }
  return out;
}

Expected<McRequest> ParseMcAsciiRequest(std::span<const u8> data) {
  const usize eol = FindCrlf(data, 0);
  if (eol == static_cast<usize>(-1)) {
    return MalformedPacket("missing CRLF");
  }
  const auto tokens = Tokenize(LineView(data, 0, eol));
  if (tokens.empty()) {
    return MalformedPacket("empty command");
  }
  McRequest request;
  request.protocol = McProtocol::kAscii;
  if (tokens[0] == "get") {
    if (tokens.size() != 2) {
      return MalformedPacket("get expects one key");
    }
    request.op = McOpcode::kGet;
    request.key = std::string(tokens[1]);
    return request;
  }
  if (tokens[0] == "delete") {
    if (tokens.size() != 2) {
      return MalformedPacket("delete expects one key");
    }
    request.op = McOpcode::kDelete;
    request.key = std::string(tokens[1]);
    return request;
  }
  if (tokens[0] == "set") {
    if (tokens.size() != 5) {
      return MalformedPacket("set expects key flags exptime bytes");
    }
    request.op = McOpcode::kSet;
    request.key = std::string(tokens[1]);
    auto flags = ParseU64(tokens[2]);
    auto expiry = ParseU64(tokens[3]);
    auto bytes = ParseU64(tokens[4]);
    if (!flags.ok() || !expiry.ok() || !bytes.ok()) {
      return MalformedPacket("bad numeric field in set");
    }
    request.flags = static_cast<u32>(*flags);
    request.expiry = static_cast<u32>(*expiry);
    const usize value_start = eol + 2;
    if (data.size() < value_start + *bytes + 2) {
      return MalformedPacket("set data block truncated");
    }
    request.value.assign(reinterpret_cast<const char*>(&data[value_start]), *bytes);
    return request;
  }
  return UnsupportedProtocol("unknown ASCII command");
}

std::vector<u8> BuildMcAsciiResponse(const McResponse& response) {
  std::vector<u8> out;
  switch (response.op) {
    case McOpcode::kGet:
      if (response.status == McStatus::kNoError) {
        AppendText(out, "VALUE " + response.key + " " + std::to_string(response.flags) + " " +
                            std::to_string(response.value.size()) + "\r\n");
        AppendText(out, response.value);
        AppendText(out, "\r\n");
      }
      AppendText(out, "END\r\n");
      break;
    case McOpcode::kSet:
      AppendText(out, response.status == McStatus::kNoError ? "STORED\r\n" : "NOT_STORED\r\n");
      break;
    case McOpcode::kDelete:
      AppendText(out,
                 response.status == McStatus::kNoError ? "DELETED\r\n" : "NOT_FOUND\r\n");
      break;
  }
  return out;
}

Expected<McResponse> ParseMcAsciiResponse(std::span<const u8> data) {
  const usize eol = FindCrlf(data, 0);
  if (eol == static_cast<usize>(-1)) {
    return MalformedPacket("missing CRLF");
  }
  const auto tokens = Tokenize(LineView(data, 0, eol));
  if (tokens.empty()) {
    return MalformedPacket("empty response");
  }
  McResponse response;
  response.protocol = McProtocol::kAscii;
  if (tokens[0] == "END") {
    response.op = McOpcode::kGet;
    response.status = McStatus::kKeyNotFound;
    return response;
  }
  if (tokens[0] == "VALUE") {
    if (tokens.size() != 4) {
      return MalformedPacket("VALUE expects key flags bytes");
    }
    response.op = McOpcode::kGet;
    response.key = std::string(tokens[1]);
    auto flags = ParseU64(tokens[2]);
    auto bytes = ParseU64(tokens[3]);
    if (!flags.ok() || !bytes.ok()) {
      return MalformedPacket("bad numeric field in VALUE");
    }
    response.flags = static_cast<u32>(*flags);
    const usize value_start = eol + 2;
    if (data.size() < value_start + *bytes + 2) {
      return MalformedPacket("VALUE data truncated");
    }
    response.value.assign(reinterpret_cast<const char*>(&data[value_start]), *bytes);
    return response;
  }
  if (tokens[0] == "STORED") {
    response.op = McOpcode::kSet;
    return response;
  }
  if (tokens[0] == "NOT_STORED") {
    response.op = McOpcode::kSet;
    response.status = McStatus::kNotStored;
    return response;
  }
  if (tokens[0] == "DELETED") {
    response.op = McOpcode::kDelete;
    return response;
  }
  if (tokens[0] == "NOT_FOUND") {
    response.op = McOpcode::kDelete;
    response.status = McStatus::kKeyNotFound;
    return response;
  }
  return UnsupportedProtocol("unknown ASCII response");
}

// --- Dispatch helpers --------------------------------------------------------------

std::vector<u8> BuildMcRequest(const McRequest& request) {
  return request.protocol == McProtocol::kBinary ? BuildMcBinaryRequest(request)
                                                 : BuildMcAsciiRequest(request);
}

Expected<McRequest> ParseMcRequest(std::span<const u8> data, McProtocol protocol) {
  return protocol == McProtocol::kBinary ? ParseMcBinaryRequest(data)
                                         : ParseMcAsciiRequest(data);
}

std::vector<u8> BuildMcResponse(const McResponse& response) {
  return response.protocol == McProtocol::kBinary ? BuildMcBinaryResponse(response)
                                                  : BuildMcAsciiResponse(response);
}

Expected<McResponse> ParseMcResponse(std::span<const u8> data, McProtocol protocol) {
  return protocol == McProtocol::kBinary ? ParseMcBinaryResponse(data)
                                         : ParseMcAsciiResponse(data);
}

}  // namespace emu
