#include "src/net/ethernet.h"

#include "src/common/bit_util.h"

namespace emu {

MacAddress EthernetView::destination() const {
  return MacAddress::FromU48(BitUtil::Get48(packet_.bytes(), 0));
}

void EthernetView::set_destination(MacAddress mac) {
  BitUtil::Set48(packet_.bytes(), 0, mac.ToU48());
}

MacAddress EthernetView::source() const {
  return MacAddress::FromU48(BitUtil::Get48(packet_.bytes(), 6));
}

void EthernetView::set_source(MacAddress mac) { BitUtil::Set48(packet_.bytes(), 6, mac.ToU48()); }

u16 EthernetView::ether_type_raw() const { return BitUtil::Get16(packet_.bytes(), 12); }

void EthernetView::set_ether_type(EtherType type) {
  BitUtil::Set16(packet_.bytes(), 12, static_cast<u16>(type));
}

std::span<const u8> EthernetView::Payload() const {
  return packet_.View(kEthernetHeaderSize, packet_.size() - kEthernetHeaderSize);
}

std::span<u8> EthernetView::MutablePayload() {
  return packet_.MutableView(kEthernetHeaderSize, packet_.size() - kEthernetHeaderSize);
}

Packet MakeEthernetFrame(MacAddress dst, MacAddress src, EtherType type,
                         std::span<const u8> payload) {
  Packet packet(kEthernetHeaderSize);
  EthernetView eth(packet);
  eth.set_destination(dst);
  eth.set_source(src);
  eth.set_ether_type(type);
  packet.Append(payload);
  if (packet.size() < kEthernetMinFrame) {
    packet.Resize(kEthernetMinFrame);
  }
  return packet;
}

}  // namespace emu
