// IPv4 header view and builders (the paper's IPv4Wrapper, Fig. 3/4).
#ifndef SRC_NET_IPV4_H_
#define SRC_NET_IPV4_H_

#include "src/common/status.h"
#include "src/net/ethernet.h"
#include "src/net/mac_address.h"
#include "src/net/packet.h"

namespace emu {

enum class IpProtocol : u8 {
  kIcmp = 1,
  kTcp = 6,
  kUdp = 17,
};

inline constexpr usize kIpv4MinHeaderSize = 20;

// View over the IPv4 header at byte `offset` inside the packet (normally
// kEthernetHeaderSize). Field names follow RFC 791.
class Ipv4View {
 public:
  explicit Ipv4View(Packet& packet, usize offset = kEthernetHeaderSize)
      : packet_(packet), offset_(offset) {}

  bool Valid() const;

  u8 version() const;
  u8 ihl() const;  // header length in 32-bit words
  usize HeaderBytes() const { return ihl() * 4u; }
  void SetVersionIhl(u8 version, u8 ihl);

  u8 dscp_ecn() const;
  void set_dscp_ecn(u8 value);

  u16 total_length() const;
  void set_total_length(u16 value);

  u16 identification() const;
  void set_identification(u16 value);

  u16 flags_fragment() const;
  void set_flags_fragment(u16 value);

  u8 ttl() const;
  void set_ttl(u8 value);

  u8 protocol_raw() const;
  void set_protocol(IpProtocol protocol);
  bool ProtocolIs(IpProtocol protocol) const {
    return protocol_raw() == static_cast<u8>(protocol);
  }

  u16 header_checksum() const;
  void set_header_checksum(u16 value);

  Ipv4Address source() const;
  void set_source(Ipv4Address addr);

  Ipv4Address destination() const;
  void set_destination(Ipv4Address addr);

  // Recomputes and stores the header checksum.
  void UpdateChecksum();
  // True when the stored checksum verifies.
  bool ChecksumValid() const;

  usize payload_offset() const { return offset_ + HeaderBytes(); }
  std::span<const u8> Payload() const;
  std::span<u8> MutablePayload();

 private:
  Packet& packet_;
  usize offset_;
};

struct Ipv4PacketSpec {
  MacAddress eth_dst;
  MacAddress eth_src;
  Ipv4Address ip_src;
  Ipv4Address ip_dst;
  IpProtocol protocol = IpProtocol::kUdp;
  u8 ttl = 64;
  u16 identification = 0;
};

// Builds Ethernet+IPv4 around an L4 payload, checksum filled in.
Packet MakeIpv4Packet(const Ipv4PacketSpec& spec, std::span<const u8> l4_payload);

}  // namespace emu

#endif  // SRC_NET_IPV4_H_
