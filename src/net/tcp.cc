#include "src/net/tcp.h"

#include "src/common/bit_util.h"
#include "src/net/checksum.h"

namespace emu {

u16 TcpView::source_port() const { return BitUtil::Get16(packet_.bytes(), offset_); }
void TcpView::set_source_port(u16 value) { BitUtil::Set16(packet_.bytes(), offset_, value); }

u16 TcpView::destination_port() const { return BitUtil::Get16(packet_.bytes(), offset_ + 2); }
void TcpView::set_destination_port(u16 value) {
  BitUtil::Set16(packet_.bytes(), offset_ + 2, value);
}

u32 TcpView::sequence() const { return BitUtil::Get32(packet_.bytes(), offset_ + 4); }
void TcpView::set_sequence(u32 value) { BitUtil::Set32(packet_.bytes(), offset_ + 4, value); }

u32 TcpView::ack_number() const { return BitUtil::Get32(packet_.bytes(), offset_ + 8); }
void TcpView::set_ack_number(u32 value) { BitUtil::Set32(packet_.bytes(), offset_ + 8, value); }

u8 TcpView::data_offset() const { return BitUtil::GetBits(packet_.bytes(), offset_ + 12, 0, 4); }
void TcpView::set_data_offset(u8 words) {
  BitUtil::SetBits(packet_.bytes(), offset_ + 12, 0, 4, words);
}

u8 TcpView::flags() const { return BitUtil::Get8(packet_.bytes(), offset_ + 13); }
void TcpView::set_flags(u8 value) { BitUtil::Set8(packet_.bytes(), offset_ + 13, value); }

u16 TcpView::window() const { return BitUtil::Get16(packet_.bytes(), offset_ + 14); }
void TcpView::set_window(u16 value) { BitUtil::Set16(packet_.bytes(), offset_ + 14, value); }

u16 TcpView::checksum() const { return BitUtil::Get16(packet_.bytes(), offset_ + 16); }
void TcpView::set_checksum(u16 value) { BitUtil::Set16(packet_.bytes(), offset_ + 16, value); }

u16 TcpView::urgent_pointer() const { return BitUtil::Get16(packet_.bytes(), offset_ + 18); }
void TcpView::set_urgent_pointer(u16 value) {
  BitUtil::Set16(packet_.bytes(), offset_ + 18, value);
}

// segment_length is derived from wire header fields; clamp to the bytes
// actually present so a corrupted length never walks past the frame.
usize TcpView::BoundedLength(usize segment_length) const {
  const usize available = packet_.size() > offset_ ? packet_.size() - offset_ : 0;
  return segment_length < available ? segment_length : available;
}

void TcpView::UpdateChecksum(const Ipv4View& ip, usize segment_length) {
  set_checksum(0);
  set_checksum(TransportChecksum(ip.source(), ip.destination(),
                                 static_cast<u8>(IpProtocol::kTcp),
                                 packet_.View(offset_, BoundedLength(segment_length))));
}

bool TcpView::ChecksumValid(const Ipv4View& ip, usize segment_length) const {
  return TransportChecksum(ip.source(), ip.destination(), static_cast<u8>(IpProtocol::kTcp),
                           packet_.View(offset_, BoundedLength(segment_length))) == 0;
}

Packet MakeTcpSegment(const TcpSegmentSpec& spec, std::span<const u8> payload) {
  std::vector<u8> tcp(kTcpMinHeaderSize, 0);
  tcp.insert(tcp.end(), payload.begin(), payload.end());

  Ipv4PacketSpec ip_spec;
  ip_spec.eth_dst = spec.eth_dst;
  ip_spec.eth_src = spec.eth_src;
  ip_spec.ip_src = spec.ip_src;
  ip_spec.ip_dst = spec.ip_dst;
  ip_spec.protocol = IpProtocol::kTcp;
  Packet frame = MakeIpv4Packet(ip_spec, tcp);

  Ipv4View ip(frame);
  TcpView view(frame, ip.payload_offset());
  view.set_source_port(spec.src_port);
  view.set_destination_port(spec.dst_port);
  view.set_sequence(spec.seq);
  view.set_ack_number(spec.ack);
  view.set_data_offset(5);
  view.set_flags(spec.flags);
  view.set_window(spec.window);
  view.UpdateChecksum(ip, kTcpMinHeaderSize + payload.size());
  return frame;
}

}  // namespace emu
