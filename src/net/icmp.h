// ICMP echo (the §4.2 ICMP Echo server's protocol surface).
#ifndef SRC_NET_ICMP_H_
#define SRC_NET_ICMP_H_

#include "src/net/ipv4.h"
#include "src/net/packet.h"

namespace emu {

enum class IcmpType : u8 {
  kEchoReply = 0,
  kEchoRequest = 8,
};

inline constexpr usize kIcmpHeaderSize = 8;

class IcmpView {
 public:
  // `offset` is the start of the ICMP header (after the IPv4 header).
  IcmpView(Packet& packet, usize offset) : packet_(packet), offset_(offset) {}

  bool Valid() const { return packet_.size() >= offset_ + kIcmpHeaderSize; }

  u8 type_raw() const;
  void set_type(IcmpType type);
  bool TypeIs(IcmpType type) const { return type_raw() == static_cast<u8>(type); }

  u8 code() const;
  void set_code(u8 value);

  u16 checksum() const;
  void set_checksum(u16 value);

  u16 identifier() const;
  void set_identifier(u16 value);

  u16 sequence() const;
  void set_sequence(u16 value);

  // Checksum over the ICMP header + payload (to the end of the IP payload).
  void UpdateChecksum(usize icmp_length);
  bool ChecksumValid(usize icmp_length) const;

 private:
  usize BoundedLength(usize icmp_length) const;

  Packet& packet_;
  usize offset_;
};

struct IcmpEchoSpec {
  MacAddress eth_dst;
  MacAddress eth_src;
  Ipv4Address ip_src;
  Ipv4Address ip_dst;
  u16 identifier = 0;
  u16 sequence = 0;
};

Packet MakeIcmpEchoRequest(const IcmpEchoSpec& spec, std::span<const u8> payload);

}  // namespace emu

#endif  // SRC_NET_ICMP_H_
