// DNS wire format — the subset the paper's DNS service speaks (§4.3):
// non-recursive A-record queries (QTYPE A, QCLASS IN), single question,
// positive answers or NXDOMAIN. The codec itself handles standard-length
// names; the 26-byte name cap of the paper's prototype is enforced by the
// service, not here.
#ifndef SRC_NET_DNS_H_
#define SRC_NET_DNS_H_

#include <array>
#include <span>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/net/mac_address.h"

namespace emu {

inline constexpr u16 kDnsPort = 53;
inline constexpr usize kDnsHeaderSize = 12;

inline constexpr u16 kDnsTypeA = 1;
inline constexpr u16 kDnsTypeAaaa = 28;
inline constexpr u16 kDnsClassIn = 1;

// Minimal IPv6 address value type (the paper: the DNS prototype's
// constraints "can be relaxed to handle longer names and IPv6").
struct Ipv6Address {
  std::array<u8, 16> octets{};

  static Ipv6Address FromBytes(std::span<const u8> bytes);
  std::string ToString() const;  // full uncompressed hex groups
  friend bool operator==(const Ipv6Address&, const Ipv6Address&) = default;
};

enum class DnsRcode : u8 {
  kNoError = 0,
  kFormErr = 1,
  kServFail = 2,
  kNxDomain = 3,
  kNotImp = 4,
  kRefused = 5,
};

struct DnsHeader {
  u16 id = 0;
  bool qr = false;  // false: query, true: response
  u8 opcode = 0;
  bool aa = false;
  bool tc = false;
  bool rd = false;
  bool ra = false;
  DnsRcode rcode = DnsRcode::kNoError;
  u16 qdcount = 0;
  u16 ancount = 0;
  u16 nscount = 0;
  u16 arcount = 0;
};

struct DnsQuestion {
  std::string name;  // presentation form, e.g. "www.example.com"
  u16 qtype = kDnsTypeA;
  u16 qclass = kDnsClassIn;
};

struct DnsQuery {
  DnsHeader header;
  DnsQuestion question;
};

struct DnsAnswer {
  std::string name;
  u16 rtype = kDnsTypeA;
  Ipv4Address address;        // valid when rtype == kDnsTypeA
  Ipv6Address address6;       // valid when rtype == kDnsTypeAaaa
  u32 ttl = 300;
};

// Encodes a presentation-form name into wire labels ("www.ex" ->
// 3www2ex0). Fails on empty/oversized labels or names.
Expected<std::vector<u8>> EncodeDnsName(const std::string& name);

// Parses a single-question DNS query message.
Expected<DnsQuery> ParseDnsQuery(std::span<const u8> message);

// Builds a single-question query message (qtype A by default).
std::vector<u8> BuildDnsQuery(u16 id, const std::string& name, u16 qtype = kDnsTypeA);

// Builds a positive A-record response to `query` (answer name compressed via
// a pointer to the question).
std::vector<u8> BuildDnsResponse(const DnsQuery& query, Ipv4Address address, u32 ttl = 300);

// AAAA variant (the IPv6 relaxation).
std::vector<u8> BuildDnsResponseAaaa(const DnsQuery& query, const Ipv6Address& address,
                                     u32 ttl = 300);

// Builds an error response (NXDOMAIN for unresolvable names, as the paper's
// server "informs the client that it cannot resolve the name").
std::vector<u8> BuildDnsError(const DnsQuery& query, DnsRcode rcode);

// Parses a response built by BuildDnsResponse/BuildDnsError; yields the
// header plus the first A answer if present.
struct DnsParsedResponse {
  DnsHeader header;
  std::vector<DnsAnswer> answers;
};
Expected<DnsParsedResponse> ParseDnsResponse(std::span<const u8> message);

}  // namespace emu

#endif  // SRC_NET_DNS_H_
