#include "src/net/dns.h"

#include <cstdio>

#include "src/common/bit_util.h"

namespace emu {
namespace {

constexpr usize kMaxNameWireBytes = 255;
constexpr usize kMaxLabelBytes = 63;

void PutHeader(std::vector<u8>& out, const DnsHeader& header) {
  out.resize(kDnsHeaderSize, 0);
  BitUtil::Set16(out, 0, header.id);
  u16 flags = 0;
  flags |= static_cast<u16>(header.qr) << 15;
  flags |= static_cast<u16>(header.opcode & 0xf) << 11;
  flags |= static_cast<u16>(header.aa) << 10;
  flags |= static_cast<u16>(header.tc) << 9;
  flags |= static_cast<u16>(header.rd) << 8;
  flags |= static_cast<u16>(header.ra) << 7;
  flags |= static_cast<u16>(header.rcode) & 0xf;
  BitUtil::Set16(out, 2, flags);
  BitUtil::Set16(out, 4, header.qdcount);
  BitUtil::Set16(out, 6, header.ancount);
  BitUtil::Set16(out, 8, header.nscount);
  BitUtil::Set16(out, 10, header.arcount);
}

Expected<DnsHeader> ReadHeader(std::span<const u8> message) {
  if (message.size() < kDnsHeaderSize) {
    return MalformedPacket("DNS message shorter than header");
  }
  DnsHeader header;
  header.id = BitUtil::Get16(message, 0);
  const u16 flags = BitUtil::Get16(message, 2);
  header.qr = (flags >> 15) & 1;
  header.opcode = (flags >> 11) & 0xf;
  header.aa = (flags >> 10) & 1;
  header.tc = (flags >> 9) & 1;
  header.rd = (flags >> 8) & 1;
  header.ra = (flags >> 7) & 1;
  header.rcode = static_cast<DnsRcode>(flags & 0xf);
  header.qdcount = BitUtil::Get16(message, 4);
  header.ancount = BitUtil::Get16(message, 6);
  header.nscount = BitUtil::Get16(message, 8);
  header.arcount = BitUtil::Get16(message, 10);
  return header;
}

// Decodes a wire-format name starting at `pos`; supports one level of
// compression pointers (enough for messages this library emits). Advances
// `pos` past the name in the original stream.
Expected<std::string> DecodeName(std::span<const u8> message, usize& pos) {
  std::string name;
  usize cursor = pos;
  bool jumped = false;
  usize guard = 0;
  for (;;) {
    if (++guard > 64) {
      return MalformedPacket("DNS name loop");
    }
    if (cursor >= message.size()) {
      return MalformedPacket("DNS name runs past message");
    }
    const u8 len = message[cursor];
    if ((len & 0xc0) == 0xc0) {
      if (cursor + 1 >= message.size()) {
        return MalformedPacket("truncated compression pointer");
      }
      const usize target = static_cast<usize>((len & 0x3f) << 8) | message[cursor + 1];
      if (!jumped) {
        pos = cursor + 2;
        jumped = true;
      }
      if (target >= message.size()) {
        return MalformedPacket("compression pointer out of range");
      }
      cursor = target;
      continue;
    }
    if (len == 0) {
      ++cursor;
      break;
    }
    if (len > kMaxLabelBytes || cursor + 1 + len > message.size()) {
      return MalformedPacket("bad DNS label");
    }
    if (!name.empty()) {
      name += '.';
    }
    name.append(reinterpret_cast<const char*>(&message[cursor + 1]), len);
    cursor += 1 + len;
  }
  if (!jumped) {
    pos = cursor;
  }
  return name;
}

}  // namespace

Ipv6Address Ipv6Address::FromBytes(std::span<const u8> bytes) {
  Ipv6Address out;
  for (usize i = 0; i < 16 && i < bytes.size(); ++i) {
    out.octets[i] = bytes[i];
  }
  return out;
}

std::string Ipv6Address::ToString() const {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%02x%02x:%02x%02x:%02x%02x:%02x%02x:%02x%02x:%02x%02x:%02x%02x:%02x%02x",
                octets[0], octets[1], octets[2], octets[3], octets[4], octets[5], octets[6],
                octets[7], octets[8], octets[9], octets[10], octets[11], octets[12],
                octets[13], octets[14], octets[15]);
  return buf;
}

Expected<std::vector<u8>> EncodeDnsName(const std::string& name) {
  std::vector<u8> out;
  if (name.size() + 2 > kMaxNameWireBytes) {
    return InvalidArgument("DNS name too long");
  }
  usize label_start = 0;
  for (usize i = 0; i <= name.size(); ++i) {
    if (i == name.size() || name[i] == '.') {
      const usize label_len = i - label_start;
      if (label_len == 0 || label_len > kMaxLabelBytes) {
        return InvalidArgument("bad DNS label length");
      }
      out.push_back(static_cast<u8>(label_len));
      for (usize j = label_start; j < i; ++j) {
        out.push_back(static_cast<u8>(name[j]));
      }
      label_start = i + 1;
    }
  }
  out.push_back(0);
  return out;
}

Expected<DnsQuery> ParseDnsQuery(std::span<const u8> message) {
  auto header = ReadHeader(message);
  if (!header.ok()) {
    return header.status();
  }
  if (header->qr) {
    return MalformedPacket("QR set on a query");
  }
  if (header->qdcount != 1) {
    return UnsupportedProtocol("only single-question queries supported");
  }
  usize pos = kDnsHeaderSize;
  auto name = DecodeName(message, pos);
  if (!name.ok()) {
    return name.status();
  }
  if (pos + 4 > message.size()) {
    return MalformedPacket("question truncated");
  }
  DnsQuery query;
  query.header = *header;
  query.question.name = *name;
  query.question.qtype = BitUtil::Get16(message, pos);
  query.question.qclass = BitUtil::Get16(message, pos + 2);
  return query;
}

std::vector<u8> BuildDnsQuery(u16 id, const std::string& name, u16 qtype) {
  DnsHeader header;
  header.id = id;
  header.rd = false;  // the paper's server is non-recursive
  header.qdcount = 1;
  std::vector<u8> out;
  PutHeader(out, header);
  auto encoded = EncodeDnsName(name);
  if (encoded.ok()) {
    out.insert(out.end(), encoded->begin(), encoded->end());
  } else {
    out.push_back(0);  // root label fallback for invalid names
  }
  const usize qtail = out.size();
  out.resize(qtail + 4);
  BitUtil::Set16(out, qtail, qtype);
  BitUtil::Set16(out, qtail + 2, kDnsClassIn);
  return out;
}

namespace {

std::vector<u8> BuildResponseCommon(const DnsQuery& query, DnsRcode rcode, u16 ancount) {
  DnsHeader header;
  header.id = query.header.id;
  header.qr = true;
  header.aa = true;
  header.rd = query.header.rd;
  header.rcode = rcode;
  header.qdcount = 1;
  header.ancount = ancount;
  std::vector<u8> out;
  PutHeader(out, header);
  auto encoded = EncodeDnsName(query.question.name);
  if (encoded.ok()) {
    out.insert(out.end(), encoded->begin(), encoded->end());
  } else {
    out.push_back(0);
  }
  const usize qtail = out.size();
  out.resize(qtail + 4);
  BitUtil::Set16(out, qtail, query.question.qtype);
  BitUtil::Set16(out, qtail + 2, query.question.qclass);
  return out;
}

}  // namespace

std::vector<u8> BuildDnsResponse(const DnsQuery& query, Ipv4Address address, u32 ttl) {
  std::vector<u8> out = BuildResponseCommon(query, DnsRcode::kNoError, 1);
  const usize answer = out.size();
  out.resize(answer + 2 + 2 + 2 + 4 + 2 + 4);
  // Compression pointer to the question name at offset 12.
  BitUtil::Set16(out, answer, 0xc000 | kDnsHeaderSize);
  BitUtil::Set16(out, answer + 2, kDnsTypeA);
  BitUtil::Set16(out, answer + 4, kDnsClassIn);
  BitUtil::Set32(out, answer + 6, ttl);
  BitUtil::Set16(out, answer + 10, 4);  // RDLENGTH
  BitUtil::Set32(out, answer + 12, address.value());
  return out;
}

std::vector<u8> BuildDnsResponseAaaa(const DnsQuery& query, const Ipv6Address& address,
                                     u32 ttl) {
  std::vector<u8> out = BuildResponseCommon(query, DnsRcode::kNoError, 1);
  const usize answer = out.size();
  out.resize(answer + 2 + 2 + 2 + 4 + 2 + 16);
  BitUtil::Set16(out, answer, 0xc000 | kDnsHeaderSize);
  BitUtil::Set16(out, answer + 2, kDnsTypeAaaa);
  BitUtil::Set16(out, answer + 4, kDnsClassIn);
  BitUtil::Set32(out, answer + 6, ttl);
  BitUtil::Set16(out, answer + 10, 16);  // RDLENGTH
  for (usize i = 0; i < 16; ++i) {
    out[answer + 12 + i] = address.octets[i];
  }
  return out;
}

std::vector<u8> BuildDnsError(const DnsQuery& query, DnsRcode rcode) {
  return BuildResponseCommon(query, rcode, 0);
}

Expected<DnsParsedResponse> ParseDnsResponse(std::span<const u8> message) {
  auto header = ReadHeader(message);
  if (!header.ok()) {
    return header.status();
  }
  if (!header->qr) {
    return MalformedPacket("QR clear on a response");
  }
  DnsParsedResponse response;
  response.header = *header;
  usize pos = kDnsHeaderSize;
  // Skip questions.
  for (u16 q = 0; q < header->qdcount; ++q) {
    auto name = DecodeName(message, pos);
    if (!name.ok()) {
      return name.status();
    }
    pos += 4;
  }
  for (u16 a = 0; a < header->ancount; ++a) {
    auto name = DecodeName(message, pos);
    if (!name.ok()) {
      return name.status();
    }
    if (pos + 10 > message.size()) {
      return MalformedPacket("answer truncated");
    }
    const u16 rtype = BitUtil::Get16(message, pos);
    const u32 ttl = BitUtil::Get32(message, pos + 4);
    const u16 rdlength = BitUtil::Get16(message, pos + 8);
    pos += 10;
    if (pos + rdlength > message.size()) {
      return MalformedPacket("rdata truncated");
    }
    if (rtype == kDnsTypeA && rdlength == 4) {
      DnsAnswer answer;
      answer.name = *name;
      answer.rtype = kDnsTypeA;
      answer.address = Ipv4Address(BitUtil::Get32(message, pos));
      answer.ttl = ttl;
      response.answers.push_back(answer);
    } else if (rtype == kDnsTypeAaaa && rdlength == 16) {
      DnsAnswer answer;
      answer.name = *name;
      answer.rtype = kDnsTypeAaaa;
      answer.address6 = Ipv6Address::FromBytes(message.subspan(pos, 16));
      answer.ttl = ttl;
      response.answers.push_back(answer);
    }
    pos += rdlength;
  }
  return response;
}

}  // namespace emu
