// UDP (the transport under the DNS, Memcached, and NAT services).
#ifndef SRC_NET_UDP_H_
#define SRC_NET_UDP_H_

#include "src/net/ipv4.h"
#include "src/net/packet.h"

namespace emu {

inline constexpr usize kUdpHeaderSize = 8;

class UdpView {
 public:
  UdpView(Packet& packet, usize offset) : packet_(packet), offset_(offset) {}

  bool Valid() const {
    return packet_.size() >= offset_ + kUdpHeaderSize &&
           length() >= kUdpHeaderSize && packet_.size() >= offset_ + length();
  }

  u16 source_port() const;
  void set_source_port(u16 value);

  u16 destination_port() const;
  void set_destination_port(u16 value);

  u16 length() const;
  void set_length(u16 value);
  // length() clamped to the bytes actually present after offset — safe to
  // span even when the wire length field is corrupted.
  usize BoundedLength() const;

  u16 checksum() const;
  void set_checksum(u16 value);

  std::span<const u8> Payload() const;
  std::span<u8> MutablePayload();

  // UDP checksum over the IPv4 pseudo header (src/dst taken from `ip`).
  void UpdateChecksum(const Ipv4View& ip);
  bool ChecksumValid(const Ipv4View& ip) const;

 private:
  Packet& packet_;
  usize offset_;
};

struct UdpPacketSpec {
  MacAddress eth_dst;
  MacAddress eth_src;
  Ipv4Address ip_src;
  Ipv4Address ip_dst;
  u16 src_port = 0;
  u16 dst_port = 0;
};

Packet MakeUdpPacket(const UdpPacketSpec& spec, std::span<const u8> payload);

}  // namespace emu

#endif  // SRC_NET_UDP_H_
