// MAC and IPv4 address value types.
#ifndef SRC_NET_MAC_ADDRESS_H_
#define SRC_NET_MAC_ADDRESS_H_

#include <array>
#include <compare>
#include <span>
#include <string>
#include <string_view>

#include "src/common/status.h"
#include "src/common/types.h"

namespace emu {

class MacAddress {
 public:
  static constexpr usize kSize = 6;

  constexpr MacAddress() = default;
  explicit constexpr MacAddress(std::array<u8, kSize> octets) : octets_(octets) {}

  // From/to the low 48 bits of a u64 (the CAM key encoding).
  static constexpr MacAddress FromU48(u64 value) {
    MacAddress mac;
    for (usize i = 0; i < kSize; ++i) {
      mac.octets_[i] = static_cast<u8>(value >> (8 * (kSize - 1 - i)));
    }
    return mac;
  }

  constexpr u64 ToU48() const {
    u64 value = 0;
    for (u8 octet : octets_) {
      value = (value << 8) | octet;
    }
    return value;
  }

  static MacAddress FromBytes(std::span<const u8> bytes);
  // Parses "aa:bb:cc:dd:ee:ff".
  static Expected<MacAddress> Parse(std::string_view text);

  static constexpr MacAddress Broadcast() {
    return MacAddress({0xff, 0xff, 0xff, 0xff, 0xff, 0xff});
  }

  constexpr bool IsBroadcast() const { return ToU48() == 0xffffffffffffULL; }
  // Group bit: LSB of the first octet.
  constexpr bool IsMulticast() const { return (octets_[0] & 1) != 0; }
  constexpr bool IsZero() const { return ToU48() == 0; }

  std::span<const u8, kSize> octets() const { return octets_; }
  void CopyTo(std::span<u8> out) const;

  std::string ToString() const;

  friend constexpr bool operator==(const MacAddress&, const MacAddress&) = default;
  friend constexpr std::strong_ordering operator<=>(const MacAddress& a, const MacAddress& b) {
    return a.ToU48() <=> b.ToU48();
  }

 private:
  std::array<u8, kSize> octets_{};
};

class Ipv4Address {
 public:
  constexpr Ipv4Address() = default;
  explicit constexpr Ipv4Address(u32 value) : value_(value) {}
  constexpr Ipv4Address(u8 a, u8 b, u8 c, u8 d)
      : value_((static_cast<u32>(a) << 24) | (static_cast<u32>(b) << 16) |
               (static_cast<u32>(c) << 8) | d) {}

  // Parses dotted-quad "192.168.1.1".
  static Expected<Ipv4Address> Parse(std::string_view text);

  constexpr u32 value() const { return value_; }
  std::string ToString() const;

  constexpr bool InSubnet(Ipv4Address base, u32 prefix_len) const {
    if (prefix_len == 0) {
      return true;
    }
    const u32 mask = prefix_len >= 32 ? ~u32{0} : ~((u32{1} << (32 - prefix_len)) - 1);
    return (value_ & mask) == (base.value_ & mask);
  }

  friend constexpr bool operator==(const Ipv4Address&, const Ipv4Address&) = default;
  friend constexpr std::strong_ordering operator<=>(const Ipv4Address&,
                                                    const Ipv4Address&) = default;

 private:
  u32 value_ = 0;
};

}  // namespace emu

#endif  // SRC_NET_MAC_ADDRESS_H_
