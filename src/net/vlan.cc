#include "src/net/vlan.h"

#include "src/common/bit_util.h"

namespace emu {

bool VlanView::Tagged() const {
  return packet_.size() >= kEthernetHeaderSize + kVlanTagSize &&
         BitUtil::Get16(packet_.bytes(), 12) == static_cast<u16>(EtherType::kVlan);
}

u16 VlanView::vlan_id() const { return BitUtil::Get16(packet_.bytes(), 14) & 0x0fff; }

void VlanView::set_vlan_id(u16 vid) {
  const u16 tci = BitUtil::Get16(packet_.bytes(), 14);
  BitUtil::Set16(packet_.bytes(), 14, static_cast<u16>((tci & 0xf000) | (vid & 0x0fff)));
}

u8 VlanView::priority() const {
  return static_cast<u8>(BitUtil::Get16(packet_.bytes(), 14) >> 13);
}

void VlanView::set_priority(u8 pcp) {
  const u16 tci = BitUtil::Get16(packet_.bytes(), 14);
  BitUtil::Set16(packet_.bytes(), 14,
                 static_cast<u16>((tci & 0x1fff) | (static_cast<u16>(pcp & 0x7) << 13)));
}

u16 VlanView::inner_ether_type() const { return BitUtil::Get16(packet_.bytes(), 16); }

void InsertVlanTag(Packet& frame, u16 vlan_id, u8 priority) {
  // Shift everything from offset 12 (the EtherType) right by 4 bytes and
  // write TPID + TCI in the gap.
  const usize old_size = frame.size();
  frame.Resize(old_size + kVlanTagSize);
  auto bytes = frame.bytes();
  for (usize i = frame.size(); i-- > 12 + kVlanTagSize;) {
    bytes[i] = bytes[i - kVlanTagSize];
  }
  BitUtil::Set16(bytes, 12, static_cast<u16>(EtherType::kVlan));
  BitUtil::Set16(bytes, 14,
                 static_cast<u16>((static_cast<u16>(priority & 0x7) << 13) |
                                  (vlan_id & 0x0fff)));
}

bool StripVlanTag(Packet& frame) {
  VlanView vlan(frame);
  if (!vlan.Tagged()) {
    return false;
  }
  auto bytes = frame.bytes();
  for (usize i = 12; i + kVlanTagSize < frame.size(); ++i) {
    bytes[i] = bytes[i + kVlanTagSize];
  }
  frame.Resize(frame.size() - kVlanTagSize);
  return true;
}

u16 EffectiveEtherType(Packet& frame) {
  VlanView vlan(frame);
  if (vlan.Tagged()) {
    return vlan.inner_ether_type();
  }
  EthernetView eth(frame);
  return eth.Valid() ? eth.ether_type_raw() : 0;
}

usize L3Offset(Packet& frame) {
  VlanView vlan(frame);
  return kEthernetHeaderSize + (vlan.Tagged() ? kVlanTagSize : 0);
}

}  // namespace emu
