#include "src/net/checksum.h"

namespace emu {

u64 ChecksumPartial(std::span<const u8> data, u64 sum) {
  usize i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += (static_cast<u64>(data[i]) << 8) | data[i + 1];
  }
  if (i < data.size()) {
    sum += static_cast<u64>(data[i]) << 8;
  }
  return sum;
}

u16 ChecksumFinish(u64 sum) {
  while (sum >> 16) {
    sum = (sum & 0xffff) + (sum >> 16);
  }
  return static_cast<u16>(~sum & 0xffff);
}

u16 InternetChecksum(std::span<const u8> data) {
  return ChecksumFinish(ChecksumPartial(data, 0));
}

u16 TransportChecksum(Ipv4Address src, Ipv4Address dst, u8 protocol,
                      std::span<const u8> segment) {
  u64 sum = 0;
  sum += (src.value() >> 16) & 0xffff;
  sum += src.value() & 0xffff;
  sum += (dst.value() >> 16) & 0xffff;
  sum += dst.value() & 0xffff;
  sum += protocol;
  sum += segment.size();
  sum = ChecksumPartial(segment, sum);
  return ChecksumFinish(sum);
}

}  // namespace emu
