#include "src/net/packet.h"

#include <cstdio>

#include "src/common/hexdump.h"

namespace emu {

std::string Packet::ToString() const {
  char head[96];
  std::snprintf(head, sizeof(head), "Packet{%zu bytes, src_port=%u, dst_mask=0x%x}\n",
                data_.size(), src_port_, dst_port_mask_);
  return std::string(head) + Hexdump(data_);
}

}  // namespace emu
