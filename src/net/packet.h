// Packet: a raw frame plus dataplane metadata.
//
// This is the C++ rendering of the paper's NetFPGA_Data record (Fig. 6): the
// frame bytes (tdata) together with the sideband metadata the NetFPGA
// pipeline carries in tuser — source port, destination port one-hot mask, and
// length. Timestamps are attached by ports/probes for latency accounting (the
// DAG-card substitute).
#ifndef SRC_NET_PACKET_H_
#define SRC_NET_PACKET_H_

#include <span>
#include <string>
#include <vector>

#include "src/common/types.h"

namespace emu {

// The NetFPGA SUME dataplane has four 10G ports; the one-hot destination
// mask has one bit per port (Fig. 10).
inline constexpr usize kNetFpgaPortCount = 4;
inline constexpr u8 kAllPortsMask = 0x0f;

inline constexpr usize kEthernetMinFrame = 60;    // without FCS
inline constexpr usize kEthernetMaxFrame = 1514;  // without FCS

class Packet {
 public:
  Packet() = default;
  explicit Packet(std::vector<u8> data) : data_(std::move(data)) {}
  explicit Packet(usize size) : data_(size, 0) {}

  usize size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  std::span<u8> bytes() { return data_; }
  std::span<const u8> bytes() const { return data_; }

  u8& operator[](usize i) { return data_[i]; }
  const u8& operator[](usize i) const { return data_[i]; }

  void Resize(usize size) { data_.resize(size, 0); }
  void Append(std::span<const u8> extra) { data_.insert(data_.end(), extra.begin(), extra.end()); }
  void AppendByte(u8 byte) { data_.push_back(byte); }

  // View of [offset, offset+len) — callers must bounds-check via size().
  std::span<const u8> View(usize offset, usize len) const {
    return std::span<const u8>(data_).subspan(offset, len);
  }
  std::span<u8> MutableView(usize offset, usize len) {
    return std::span<u8>(data_).subspan(offset, len);
  }

  // --- Dataplane metadata (tuser sideband) ---
  u8 src_port() const { return src_port_; }
  void set_src_port(u8 port) { src_port_ = port; }

  u8 dst_port_mask() const { return dst_port_mask_; }
  void set_dst_port_mask(u8 mask) { dst_port_mask_ = mask; }

  // --- Timestamps (latency probe metadata, ps) ---
  Picoseconds ingress_time() const { return ingress_time_; }
  void set_ingress_time(Picoseconds t) { ingress_time_ = t; }
  Picoseconds egress_time() const { return egress_time_; }
  void set_egress_time(Picoseconds t) { egress_time_ = t; }

  // Cycle stamps around the main logical core, for the per-module latency
  // rows of Table 3/5.
  Cycle core_ingress_cycle() const { return core_ingress_cycle_; }
  void set_core_ingress_cycle(Cycle c) { core_ingress_cycle_ = c; }
  Cycle core_egress_cycle() const { return core_egress_cycle_; }
  void set_core_egress_cycle(Cycle c) { core_egress_cycle_ = c; }

  // --- Packet flight recorder (emu-scope) ---
  // Nonzero once a traced ingress point assigned this frame a flight id;
  // every stage the frame crosses emits spans keyed on it. Replies derived
  // from a request copy the id so the waterfall spans the round trip.
  u64 trace_id() const { return trace_id_; }
  void set_trace_id(u64 id) { trace_id_ = id; }

  std::string ToString() const;

 private:
  std::vector<u8> data_;
  u8 src_port_ = 0;
  u8 dst_port_mask_ = 0;
  Picoseconds ingress_time_ = 0;
  Picoseconds egress_time_ = 0;
  Cycle core_ingress_cycle_ = 0;
  Cycle core_egress_cycle_ = 0;
  u64 trace_id_ = 0;
};

}  // namespace emu

#endif  // SRC_NET_PACKET_H_
