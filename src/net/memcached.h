// Memcached wire protocols — binary and ASCII, over UDP (§4.3, §5.4).
//
// The paper's Memcached service started with GET/SET/DELETE over the binary
// protocol with 6-byte keys and 8-byte values, then grew ASCII support and
// larger sizes. Both protocols are implemented here behind one
// request/response representation so the service logic is protocol-agnostic.
#ifndef SRC_NET_MEMCACHED_H_
#define SRC_NET_MEMCACHED_H_

#include <span>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"

namespace emu {

inline constexpr u16 kMemcachedPort = 11211;
inline constexpr usize kMcBinaryHeaderSize = 24;

enum class McProtocol { kBinary, kAscii };

enum class McOpcode : u8 {
  kGet = 0x00,
  kSet = 0x01,
  kDelete = 0x04,
};

enum class McStatus : u16 {
  kNoError = 0x0000,
  kKeyNotFound = 0x0001,
  kKeyExists = 0x0002,
  kValueTooLarge = 0x0003,
  kInvalidArguments = 0x0004,
  kNotStored = 0x0005,
  kUnknownCommand = 0x0081,
  kOutOfMemory = 0x0082,
};

struct McRequest {
  McProtocol protocol = McProtocol::kBinary;
  McOpcode op = McOpcode::kGet;
  std::string key;
  std::string value;  // SET only
  u32 flags = 0;
  u32 expiry = 0;
  u32 opaque = 0;  // binary only
};

struct McResponse {
  McProtocol protocol = McProtocol::kBinary;
  McOpcode op = McOpcode::kGet;
  McStatus status = McStatus::kNoError;
  std::string key;    // echoed in ASCII VALUE lines
  std::string value;  // GET hits
  u32 flags = 0;
  u32 opaque = 0;
};

// --- Binary protocol ---------------------------------------------------------

std::vector<u8> BuildMcBinaryRequest(const McRequest& request);
Expected<McRequest> ParseMcBinaryRequest(std::span<const u8> data);

std::vector<u8> BuildMcBinaryResponse(const McResponse& response);
Expected<McResponse> ParseMcBinaryResponse(std::span<const u8> data);

// --- ASCII protocol ----------------------------------------------------------

std::vector<u8> BuildMcAsciiRequest(const McRequest& request);
Expected<McRequest> ParseMcAsciiRequest(std::span<const u8> data);

std::vector<u8> BuildMcAsciiResponse(const McResponse& response);
Expected<McResponse> ParseMcAsciiResponse(std::span<const u8> data);

// --- Protocol-dispatching helpers ---------------------------------------------

std::vector<u8> BuildMcRequest(const McRequest& request);
Expected<McRequest> ParseMcRequest(std::span<const u8> data, McProtocol protocol);
std::vector<u8> BuildMcResponse(const McResponse& response);
Expected<McResponse> ParseMcResponse(std::span<const u8> data, McProtocol protocol);

}  // namespace emu

#endif  // SRC_NET_MEMCACHED_H_
