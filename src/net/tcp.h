// TCP header view and handshake builders (TCP Ping §4.2, NAT §4.4).
#ifndef SRC_NET_TCP_H_
#define SRC_NET_TCP_H_

#include "src/net/ipv4.h"
#include "src/net/packet.h"

namespace emu {

inline constexpr usize kTcpMinHeaderSize = 20;

// Flag bits as in the header's 13th byte.
struct TcpFlags {
  static constexpr u8 kFin = 0x01;
  static constexpr u8 kSyn = 0x02;
  static constexpr u8 kRst = 0x04;
  static constexpr u8 kPsh = 0x08;
  static constexpr u8 kAck = 0x10;
  static constexpr u8 kUrg = 0x20;
};

class TcpView {
 public:
  TcpView(Packet& packet, usize offset) : packet_(packet), offset_(offset) {}

  bool Valid() const {
    return packet_.size() >= offset_ + kTcpMinHeaderSize && data_offset() >= 5 &&
           packet_.size() >= offset_ + HeaderBytes();
  }

  u16 source_port() const;
  void set_source_port(u16 value);

  u16 destination_port() const;
  void set_destination_port(u16 value);

  u32 sequence() const;
  void set_sequence(u32 value);

  u32 ack_number() const;
  void set_ack_number(u32 value);

  u8 data_offset() const;  // in 32-bit words
  void set_data_offset(u8 words);
  usize HeaderBytes() const { return data_offset() * 4u; }

  u8 flags() const;
  void set_flags(u8 value);
  bool HasFlag(u8 flag) const { return (flags() & flag) != 0; }

  u16 window() const;
  void set_window(u16 value);

  u16 checksum() const;
  void set_checksum(u16 value);

  u16 urgent_pointer() const;
  void set_urgent_pointer(u16 value);

  // Checksum over the pseudo header + the TCP segment, whose length is the
  // IP payload length.
  void UpdateChecksum(const Ipv4View& ip, usize segment_length);
  bool ChecksumValid(const Ipv4View& ip, usize segment_length) const;

 private:
  usize BoundedLength(usize segment_length) const;

  Packet& packet_;
  usize offset_;
};

struct TcpSegmentSpec {
  MacAddress eth_dst;
  MacAddress eth_src;
  Ipv4Address ip_src;
  Ipv4Address ip_dst;
  u16 src_port = 0;
  u16 dst_port = 0;
  u32 seq = 0;
  u32 ack = 0;
  u8 flags = 0;
  u16 window = 65535;
};

Packet MakeTcpSegment(const TcpSegmentSpec& spec, std::span<const u8> payload = {});

}  // namespace emu

#endif  // SRC_NET_TCP_H_
