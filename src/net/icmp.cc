#include "src/net/icmp.h"

#include "src/common/bit_util.h"
#include "src/net/checksum.h"

namespace emu {

u8 IcmpView::type_raw() const { return BitUtil::Get8(packet_.bytes(), offset_); }
void IcmpView::set_type(IcmpType type) {
  BitUtil::Set8(packet_.bytes(), offset_, static_cast<u8>(type));
}

u8 IcmpView::code() const { return BitUtil::Get8(packet_.bytes(), offset_ + 1); }
void IcmpView::set_code(u8 value) { BitUtil::Set8(packet_.bytes(), offset_ + 1, value); }

u16 IcmpView::checksum() const { return BitUtil::Get16(packet_.bytes(), offset_ + 2); }
void IcmpView::set_checksum(u16 value) { BitUtil::Set16(packet_.bytes(), offset_ + 2, value); }

u16 IcmpView::identifier() const { return BitUtil::Get16(packet_.bytes(), offset_ + 4); }
void IcmpView::set_identifier(u16 value) { BitUtil::Set16(packet_.bytes(), offset_ + 4, value); }

u16 IcmpView::sequence() const { return BitUtil::Get16(packet_.bytes(), offset_ + 6); }
void IcmpView::set_sequence(u16 value) { BitUtil::Set16(packet_.bytes(), offset_ + 6, value); }

// icmp_length is derived from the wire IP header; clamp to the bytes
// actually present so a corrupted length never walks past the frame.
usize IcmpView::BoundedLength(usize icmp_length) const {
  const usize available = packet_.size() > offset_ ? packet_.size() - offset_ : 0;
  return icmp_length < available ? icmp_length : available;
}

void IcmpView::UpdateChecksum(usize icmp_length) {
  set_checksum(0);
  set_checksum(InternetChecksum(packet_.View(offset_, BoundedLength(icmp_length))));
}

bool IcmpView::ChecksumValid(usize icmp_length) const {
  return InternetChecksum(packet_.View(offset_, BoundedLength(icmp_length))) == 0;
}

Packet MakeIcmpEchoRequest(const IcmpEchoSpec& spec, std::span<const u8> payload) {
  std::vector<u8> icmp(kIcmpHeaderSize, 0);
  icmp.insert(icmp.end(), payload.begin(), payload.end());

  Ipv4PacketSpec ip_spec;
  ip_spec.eth_dst = spec.eth_dst;
  ip_spec.eth_src = spec.eth_src;
  ip_spec.ip_src = spec.ip_src;
  ip_spec.ip_dst = spec.ip_dst;
  ip_spec.protocol = IpProtocol::kIcmp;
  Packet frame = MakeIpv4Packet(ip_spec, icmp);

  Ipv4View ip(frame);
  IcmpView view(frame, ip.payload_offset());
  view.set_type(IcmpType::kEchoRequest);
  view.set_code(0);
  view.set_identifier(spec.identifier);
  view.set_sequence(spec.sequence);
  view.UpdateChecksum(kIcmpHeaderSize + payload.size());
  return frame;
}

}  // namespace emu
