// ARP over Ethernet (the paper's ARPWrapper, Fig. 3; used by the NAT).
#ifndef SRC_NET_ARP_H_
#define SRC_NET_ARP_H_

#include "src/net/ethernet.h"
#include "src/net/mac_address.h"
#include "src/net/packet.h"

namespace emu {

enum class ArpOper : u16 {
  kRequest = 1,
  kReply = 2,
};

inline constexpr usize kArpPacketSize = 28;  // Ethernet/IPv4 ARP body

class ArpView {
 public:
  explicit ArpView(Packet& packet, usize offset = kEthernetHeaderSize)
      : packet_(packet), offset_(offset) {}

  bool Valid() const;

  u16 htype() const;
  u16 ptype() const;
  u8 hlen() const;
  u8 plen() const;
  u16 oper_raw() const;
  void set_oper(ArpOper oper);
  bool OperIs(ArpOper oper) const { return oper_raw() == static_cast<u16>(oper); }

  MacAddress sender_mac() const;
  void set_sender_mac(MacAddress mac);
  Ipv4Address sender_ip() const;
  void set_sender_ip(Ipv4Address ip);
  MacAddress target_mac() const;
  void set_target_mac(MacAddress mac);
  Ipv4Address target_ip() const;
  void set_target_ip(Ipv4Address ip);

  // Writes the fixed htype/ptype/hlen/plen preamble for Ethernet/IPv4.
  void WriteFixedFields();

 private:
  Packet& packet_;
  usize offset_;
};

Packet MakeArpRequest(MacAddress sender_mac, Ipv4Address sender_ip, Ipv4Address target_ip);
Packet MakeArpReply(MacAddress sender_mac, Ipv4Address sender_ip, MacAddress target_mac,
                    Ipv4Address target_ip);

}  // namespace emu

#endif  // SRC_NET_ARP_H_
