// IEEE 802.1Q VLAN tagging.
//
// The paper's library ships "parsers for commonly-used packet formats" and
// §3.6 notes developers extend it for more protocols — this is that
// extension path exercised: a tag view, insert/strip helpers, and an
// EtherType accessor that sees through the tag so existing services work on
// tagged traffic unchanged.
#ifndef SRC_NET_VLAN_H_
#define SRC_NET_VLAN_H_

#include "src/net/ethernet.h"

namespace emu {

inline constexpr usize kVlanTagSize = 4;  // TPID(2) + TCI(2)

class VlanView {
 public:
  explicit VlanView(Packet& packet) : packet_(packet) {}

  // True when the frame carries an 802.1Q tag.
  bool Tagged() const;

  u16 vlan_id() const;          // 12-bit VID
  void set_vlan_id(u16 vid);
  u8 priority() const;          // 3-bit PCP
  void set_priority(u8 pcp);

  // EtherType of the encapsulated payload (after the tag).
  u16 inner_ether_type() const;

 private:
  Packet& packet_;
};

// Inserts an 802.1Q tag (no-op rewrite if you need QinQ, call twice).
void InsertVlanTag(Packet& frame, u16 vlan_id, u8 priority = 0);

// Removes the outermost tag; returns false when the frame is untagged.
bool StripVlanTag(Packet& frame);

// EtherType as services should read it: the inner type for tagged frames,
// the plain type otherwise. Offset of the L3 header follows the same rule.
u16 EffectiveEtherType(Packet& frame);
usize L3Offset(Packet& frame);

}  // namespace emu

#endif  // SRC_NET_VLAN_H_
