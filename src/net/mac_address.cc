#include "src/net/mac_address.h"

#include <cassert>
#include <cstdio>

namespace emu {
namespace {

// Parses up to 3 decimal digits; returns -1 on failure. Advances `pos`.
int ParseDecimalOctet(std::string_view text, usize& pos) {
  int value = 0;
  usize digits = 0;
  while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9' && digits < 3) {
    value = value * 10 + (text[pos] - '0');
    ++pos;
    ++digits;
  }
  if (digits == 0 || value > 255) {
    return -1;
  }
  return value;
}

int HexNibble(char c) {
  if (c >= '0' && c <= '9') {
    return c - '0';
  }
  if (c >= 'a' && c <= 'f') {
    return c - 'a' + 10;
  }
  if (c >= 'A' && c <= 'F') {
    return c - 'A' + 10;
  }
  return -1;
}

}  // namespace

MacAddress MacAddress::FromBytes(std::span<const u8> bytes) {
  assert(bytes.size() >= kSize);
  std::array<u8, kSize> octets;
  for (usize i = 0; i < kSize; ++i) {
    octets[i] = bytes[i];
  }
  return MacAddress(octets);
}

Expected<MacAddress> MacAddress::Parse(std::string_view text) {
  std::array<u8, kSize> octets{};
  usize pos = 0;
  for (usize i = 0; i < kSize; ++i) {
    if (i != 0) {
      if (pos >= text.size() || text[pos] != ':') {
        return InvalidArgument("expected ':' in MAC address");
      }
      ++pos;
    }
    if (pos + 1 >= text.size()) {
      return InvalidArgument("MAC address too short");
    }
    const int hi = HexNibble(text[pos]);
    const int lo = HexNibble(text[pos + 1]);
    if (hi < 0 || lo < 0) {
      return InvalidArgument("invalid hex digit in MAC address");
    }
    octets[i] = static_cast<u8>(hi * 16 + lo);
    pos += 2;
  }
  if (pos != text.size()) {
    return InvalidArgument("trailing characters in MAC address");
  }
  return MacAddress(octets);
}

void MacAddress::CopyTo(std::span<u8> out) const {
  assert(out.size() >= kSize);
  for (usize i = 0; i < kSize; ++i) {
    out[i] = octets_[i];
  }
}

std::string MacAddress::ToString() const {
  char buf[18];
  std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x", octets_[0], octets_[1],
                octets_[2], octets_[3], octets_[4], octets_[5]);
  return buf;
}

Expected<Ipv4Address> Ipv4Address::Parse(std::string_view text) {
  usize pos = 0;
  u32 value = 0;
  for (usize i = 0; i < 4; ++i) {
    if (i != 0) {
      if (pos >= text.size() || text[pos] != '.') {
        return InvalidArgument("expected '.' in IPv4 address");
      }
      ++pos;
    }
    const int octet = ParseDecimalOctet(text, pos);
    if (octet < 0) {
      return InvalidArgument("invalid IPv4 octet");
    }
    value = (value << 8) | static_cast<u32>(octet);
  }
  if (pos != text.size()) {
    return InvalidArgument("trailing characters in IPv4 address");
  }
  return Ipv4Address(value);
}

std::string Ipv4Address::ToString() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (value_ >> 24) & 0xff, (value_ >> 16) & 0xff,
                (value_ >> 8) & 0xff, value_ & 0xff);
  return buf;
}

}  // namespace emu
