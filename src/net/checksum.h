// Software Internet checksum (RFC 1071) and the pseudo-header sums used by
// UDP/TCP. The ChecksumUnit IP block (src/ip/checksum_unit.h) is the hardware
// counterpart; tests cross-check the two.
#ifndef SRC_NET_CHECKSUM_H_
#define SRC_NET_CHECKSUM_H_

#include <span>

#include "src/common/types.h"
#include "src/net/mac_address.h"

namespace emu {

// One's-complement sum of `data` (padded with a zero byte if odd), folded and
// complemented.
u16 InternetChecksum(std::span<const u8> data);

// Running-sum helpers for multi-span checksums.
u64 ChecksumPartial(std::span<const u8> data, u64 sum);
u16 ChecksumFinish(u64 sum);

// UDP/TCP checksum over the IPv4 pseudo header plus the L4 segment
// (`segment` includes the L4 header with its checksum field zeroed).
u16 TransportChecksum(Ipv4Address src, Ipv4Address dst, u8 protocol,
                      std::span<const u8> segment);

}  // namespace emu

#endif  // SRC_NET_CHECKSUM_H_
