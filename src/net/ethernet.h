// Ethernet II framing.
//
// EthernetView is a non-owning header view over a frame (the style of the
// paper's EthernetWrapper, Fig. 3): getters/setters over named fields backed
// by BitUtil accesses into the raw bytes.
#ifndef SRC_NET_ETHERNET_H_
#define SRC_NET_ETHERNET_H_

#include "src/common/status.h"
#include "src/net/mac_address.h"
#include "src/net/packet.h"

namespace emu {

enum class EtherType : u16 {
  kIpv4 = 0x0800,
  kArp = 0x0806,
  kVlan = 0x8100,
  kIpv6 = 0x86dd,
};

inline constexpr usize kEthernetHeaderSize = 14;

class EthernetView {
 public:
  // The frame must be at least kEthernetHeaderSize long (checked by Valid()).
  explicit EthernetView(Packet& packet) : packet_(packet) {}

  bool Valid() const { return packet_.size() >= kEthernetHeaderSize; }

  MacAddress destination() const;
  void set_destination(MacAddress mac);

  MacAddress source() const;
  void set_source(MacAddress mac);

  u16 ether_type_raw() const;
  void set_ether_type(EtherType type);

  bool EtherTypeIs(EtherType type) const { return ether_type_raw() == static_cast<u16>(type); }

  // Payload region (everything after the header).
  std::span<const u8> Payload() const;
  std::span<u8> MutablePayload();

 private:
  Packet& packet_;
};

// Builds an Ethernet frame around `payload`, padding to the 60-byte minimum.
Packet MakeEthernetFrame(MacAddress dst, MacAddress src, EtherType type,
                         std::span<const u8> payload);

}  // namespace emu

#endif  // SRC_NET_ETHERNET_H_
