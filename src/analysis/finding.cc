#include "src/analysis/finding.h"

#include <cctype>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace emu {

namespace {

// Exact match, or 'prefix*' wildcard (same convention as FaultPlan patterns).
bool SubjectMatches(const std::string& pattern, const std::string& subject) {
  if (pattern.empty()) {
    return true;
  }
  if (!pattern.empty() && pattern.back() == '*') {
    return subject.compare(0, pattern.size() - 1, pattern, 0, pattern.size() - 1) == 0;
  }
  return subject == pattern;
}

void JsonEscape(std::ostream& os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

}  // namespace

std::string Finding::ToString() const {
  std::ostringstream os;
  os << "%" << SeverityName(severity) << "-" << check;
  if (!subject.empty()) {
    os << " [" << subject << "]";
  }
  if (!design.empty()) {
    os << " (" << design << ")";
  }
  os << ": " << message;
  return os.str();
}

Finding FindingFromReport(const HazardReport& report, const std::string& design) {
  Finding f;
  f.check = HazardKindName(report.kind);
  f.severity = report.severity;
  f.design = design;
  f.subject = !report.signal.empty() ? report.signal : report.process;
  f.message = report.message;
  return f;
}

std::vector<Suppression> ParseSuppressions(const std::string& text) {
  std::vector<Suppression> out;
  std::string token;
  auto flush = [&] {
    // Trim.
    usize begin = 0, end = token.size();
    while (begin < end && std::isspace(static_cast<unsigned char>(token[begin]))) ++begin;
    while (end > begin && std::isspace(static_cast<unsigned char>(token[end - 1]))) --end;
    std::string t = token.substr(begin, end - begin);
    token.clear();
    if (t.empty() || t[0] == '#') {
      return;
    }
    Suppression s;
    const usize colon = t.find(':');
    if (colon == std::string::npos) {
      s.check = t;
    } else {
      s.check = t.substr(0, colon);
      s.subject_pattern = t.substr(colon + 1);
    }
    out.push_back(std::move(s));
  };
  bool in_comment = false;
  for (char c : text) {
    if (c == '\n') {
      in_comment = false;
      flush();
    } else if (in_comment) {
      continue;
    } else if (c == '#') {
      in_comment = true;  // comment runs to end of line
    } else if (c == ',' || c == ';') {
      flush();
    } else {
      token.push_back(c);
    }
  }
  flush();
  return out;
}

bool SuppressionMatches(const Suppression& s, const Finding& f) {
  return s.check == f.check && SubjectMatches(s.subject_pattern, f.subject);
}

std::vector<Finding> ApplySuppressions(std::vector<Finding> findings,
                                       const std::vector<Suppression>& suppressions,
                                       usize* suppressed) {
  if (suppressed != nullptr) {
    *suppressed = 0;
  }
  if (suppressions.empty()) {
    return findings;
  }
  std::vector<Finding> kept;
  kept.reserve(findings.size());
  for (auto& f : findings) {
    bool drop = false;
    for (const auto& s : suppressions) {
      if (SuppressionMatches(s, f)) {
        drop = true;
        break;
      }
    }
    if (drop) {
      if (suppressed != nullptr) {
        ++*suppressed;
      }
    } else {
      kept.push_back(std::move(f));
    }
  }
  return kept;
}

void FormatFindingsText(std::ostream& os, const std::vector<Finding>& findings) {
  for (const auto& f : findings) {
    os << f.ToString() << "\n";
  }
}

void FormatFindingsJson(std::ostream& os, const std::vector<Finding>& findings) {
  os << "[";
  for (usize i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    os << (i == 0 ? "" : ",") << "\n  {\"check\": \"";
    JsonEscape(os, f.check);
    os << "\", \"severity\": \"" << SeverityName(f.severity) << "\", \"design\": \"";
    JsonEscape(os, f.design);
    os << "\", \"subject\": \"";
    JsonEscape(os, f.subject);
    os << "\", \"message\": \"";
    JsonEscape(os, f.message);
    os << "\"}";
  }
  os << (findings.empty() ? "]" : "\n]") << "\n";
}

usize CountErrors(const std::vector<Finding>& findings) {
  usize errors = 0;
  for (const auto& f : findings) {
    if (f.severity == Severity::kError) {
      ++errors;
    }
  }
  return errors;
}

int LintExitCode(const std::vector<Finding>& findings) {
  return CountErrors(findings) > 0 ? kLintExitFindings : kLintExitClean;
}

}  // namespace emu
