// Uniform lint findings: one record type, one text formatter, one JSON
// formatter, one suppression syntax, one exit-code contract — shared by the
// static elaboration pass (emu_lint), the dynamic hazard scenarios
// (emu_check), and the metrics exposition linter (PrometheusLint), so every
// tool in the repo emits machine-consumable diagnostics in the same shape.
#ifndef SRC_ANALYSIS_FINDING_H_
#define SRC_ANALYSIS_FINDING_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "src/analysis/hazard.h"

namespace emu {

// One diagnostic. `check` is a stable upper-case id — a CheckRegistry() name
// for hazard-taxonomy findings ("COMBLOOP"), or a tool-specific id for
// others (PrometheusLint uses "METRICSFMT"/"METRICSDUP"/...).
struct Finding {
  std::string check;
  Severity severity = Severity::kError;
  std::string design;   // design/context the finding belongs to; may be empty
  std::string subject;  // offending signal/process/series; may be empty
  std::string message;  // human-readable diagnostic

  std::string ToString() const;
};

// Builds a Finding from a hazard-taxonomy report.
Finding FindingFromReport(const HazardReport& report, const std::string& design);

// --- Suppressions ---
//
// A suppression is `CHECK` (silence the whole check) or `CHECK:pattern`
// (silence it for subjects matching `pattern`: exact match or a 'prefix*'
// wildcard). A list is comma-, semicolon- or newline-separated; '#' starts a
// comment; blanks are ignored.
struct Suppression {
  std::string check;
  std::string subject_pattern;  // empty = every subject
};

std::vector<Suppression> ParseSuppressions(const std::string& text);

// True when `s` suppresses `f`.
bool SuppressionMatches(const Suppression& s, const Finding& f);

// Removes suppressed findings; if `suppressed` is non-null it receives the
// number removed.
std::vector<Finding> ApplySuppressions(std::vector<Finding> findings,
                                       const std::vector<Suppression>& suppressions,
                                       usize* suppressed = nullptr);

// --- Formatters ---

// One finding per line: `%severity-CHECK [subject] (design): message`.
void FormatFindingsText(std::ostream& os, const std::vector<Finding>& findings);

// A JSON array of {check, severity, design, subject, message} objects
// (strings escaped), terminated with a newline.
void FormatFindingsJson(std::ostream& os, const std::vector<Finding>& findings);

usize CountErrors(const std::vector<Finding>& findings);

// --- Exit-code contract (shared by emu_lint and emu_check) ---
//
//   0  clean: no unsuppressed Severity::kError finding
//   1  at least one unsuppressed error finding
//   2  usage/configuration error (bad flag, unreadable file, or the binary
//      cannot perform the analysis at all — e.g. built without EMU_ANALYSIS)
inline constexpr int kLintExitClean = 0;
inline constexpr int kLintExitFindings = 1;
inline constexpr int kLintExitUsage = 2;

// kLintExitFindings when `findings` contains an error, else kLintExitClean.
// Warnings and infos never fail the run (CI gates on errors; warnings are
// for humans and dashboards).
int LintExitCode(const std::vector<Finding>& findings);

}  // namespace emu

#endif  // SRC_ANALYSIS_FINDING_H_
