// HazardMonitor: the dynamic half of emu-check.
//
// A monitor attaches to one Simulator and observes kernel events through the
// hooks the HDL layer emits when built with EMU_ANALYSIS (the default): Reg
// and Wire accesses, SyncFifo push/pop traffic, process resumes, and
// post-mortem Step() detection. From that stream it enforces the design
// rules in hazard.h and accumulates a process/signal dependency graph, which
// doubles as the input to the static half — combinational-ordering cycle
// detection (AnalyzeCombinationalGraph) and the DOT dump.
//
// Cost model: with EMU_ANALYSIS compiled in but no monitor attached, every
// hook is a single pointer test; with the CMake option OFF the hooks do not
// exist at all. A monitor must not outlive its Simulator.
#ifndef SRC_ANALYSIS_HAZARD_MONITOR_H_
#define SRC_ANALYSIS_HAZARD_MONITOR_H_

#include <array>
#include <iosfwd>
#include <set>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "src/analysis/hazard.h"
#include "src/common/types.h"

namespace emu {

class Simulator;

class HazardMonitor {
 public:
  // Process index used for kernel calls made outside any HwProcess (i.e. by
  // the testbench between Step() calls).
  static constexpr isize kTestbench = -1;

  // Attaches to `sim` (replacing any previously attached monitor) and
  // detaches on destruction.
  explicit HazardMonitor(Simulator& sim);
  ~HazardMonitor();

  HazardMonitor(const HazardMonitor&) = delete;
  HazardMonitor& operator=(const HazardMonitor&) = delete;

  // --- Configuration ---
  void EnableCheck(HazardKind kind, bool enabled);
  bool CheckEnabled(HazardKind kind) const;
  // Kernel operations (signal/FIFO accesses) one process may perform in a
  // single resume before it is flagged as a runaway.
  void set_runaway_budget(u64 budget) { runaway_budget_ = budget; }
  u64 runaway_budget() const { return runaway_budget_; }
  // When set, every report is also printed to stderr as it is found.
  void set_echo(bool echo) { echo_ = echo; }

  // --- Results ---
  const std::vector<HazardReport>& reports() const { return reports_; }
  usize CountOf(HazardKind kind) const;
  bool HasFindings() const { return !reports_.empty(); }
  void Clear();
  // One line per report plus a totals line; "clean" text when empty.
  std::string Summary() const;

  // --- Static half ---
  // Runs combinational-ordering cycle detection over the observed
  // process/wire dependency graph; appends one kCombLoop report per cycle
  // found and returns how many were added. Idempotent across repeat calls.
  usize AnalyzeCombinationalGraph();
  // Graphviz dump of the observed design: process nodes (boxes), signal
  // nodes (ellipses/diamonds), write edges process->signal and read edges
  // signal->process.
  void DumpDot(std::ostream& os) const;

  // --- Kernel hooks (called by src/hdl when EMU_ANALYSIS is compiled) ---
  enum class ElementKind : u8 { kReg, kWire, kFifo };

  void OnProcessResume(usize index, const std::string& name);
  void OnRegWrite(const void* id, const std::string& name);
  void OnRegRead(const void* id, const std::string& name, bool uninit);
  void OnWireWrite(const void* id, const std::string& name);
  void OnWireRead(const void* id, const std::string& name, bool uninit);
  void OnFifoCanPush(const void* id, const std::string& name);
  void OnFifoPush(const void* id, const std::string& name, bool accepted);
  void OnFifoPop(const void* id, const std::string& name);
  void OnPostMortemStep(usize dead_elements);

 private:
  struct ElementState {
    std::string name;
    ElementKind kind = ElementKind::kReg;
    // Last committed write, for the multi-driver check.
    isize last_writer = kTestbench;
    Cycle last_write_cycle = 0;
    bool written = false;
    // Last CanPush query, for the lost-backpressure check.
    Cycle last_canpush_cycle = 0;
    bool canpush_seen = false;
    // Dependency graph: every process that ever wrote/read this element.
    std::set<isize> writers;
    std::set<isize> readers;
  };

  ElementState& Element(ElementKind kind, const void* id, const std::string& name);
  // Fallback label for anonymous elements ("Reg@0x..."-style).
  static std::string Label(ElementKind kind, const void* id, const std::string& name);
  const std::string& ProcessLabel(isize index) const;

  // Emits at most once per (kind, id, a, b) tuple; returns whether emitted.
  bool Report(HazardKind kind, const void* id, isize a, isize b, Cycle cycle,
              std::string signal, std::string process, std::string message);
  void BumpEvent();

  Simulator& sim_;
  std::array<bool, kHazardKindCount> enabled_;
  u64 runaway_budget_ = 1u << 20;
  bool echo_ = false;

  std::unordered_map<const void*, ElementState> elements_;
  std::vector<std::string> process_names_;
  std::vector<bool> runaway_reported_;
  isize resumed_process_ = kTestbench;
  u64 events_this_resume_ = 0;
  bool post_mortem_reported_ = false;
  std::set<std::string> comb_cycles_seen_;

  std::set<std::tuple<u8, const void*, isize, isize>> emitted_;
  std::vector<HazardReport> reports_;
};

}  // namespace emu

#endif  // SRC_ANALYSIS_HAZARD_MONITOR_H_
