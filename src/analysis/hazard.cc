#include "src/analysis/hazard.h"

#include <cassert>
#include <sstream>

namespace emu {

const char* HazardKindName(HazardKind kind) {
  switch (kind) {
    case HazardKind::kMultiDriver: return "MULTIDRIVEN";
    case HazardKind::kCombRace: return "COMBRACE";
    case HazardKind::kUninitRead: return "UNINITREAD";
    case HazardKind::kLostBackpressure: return "LOSTBACKPRESSURE";
    case HazardKind::kRunawayProcess: return "RUNAWAY";
    case HazardKind::kPostMortemStep: return "POSTMORTEMSTEP";
    case HazardKind::kCombLoop: return "COMBLOOP";
  }
  return "UNKNOWN";
}

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "unknown";
}

std::string HazardReport::ToString() const {
  std::ostringstream os;
  os << "%" << SeverityName(severity) << "-" << HazardKindName(kind) << " @cycle " << cycle;
  if (!signal.empty()) {
    os << " [" << signal << "]";
  }
  if (!process.empty()) {
    os << " (" << process << ")";
  }
  os << ": " << message;
  return os.str();
}

const std::vector<CheckInfo>& CheckRegistry() {
  static const std::vector<CheckInfo> kChecks = {
      {HazardKind::kMultiDriver, "MULTIDRIVEN",
       "two distinct processes wrote the same Reg in one cycle (last write wins)",
       Severity::kError},
      {HazardKind::kCombRace, "COMBRACE",
       "a Wire was read by a process registered before its writer (stale data observed)",
       Severity::kError},
      {HazardKind::kUninitRead, "UNINITREAD",
       "a no-default Reg/Wire was read before its first write (X propagation)",
       Severity::kWarning},
      {HazardKind::kLostBackpressure, "LOSTBACKPRESSURE",
       "SyncFifo::Push dropped a value and the pusher never checked CanPush that cycle",
       Severity::kError},
      {HazardKind::kRunawayProcess, "RUNAWAY",
       "a process exceeded its per-resume operation budget without reaching Pause()",
       Severity::kError},
      {HazardKind::kPostMortemStep, "POSTMORTEMSTEP",
       "Simulator::Step() ran after a registered Clocked element was destroyed",
       Severity::kError},
      {HazardKind::kCombLoop, "COMBLOOP",
       "combinational cycle: a wire dependency loop no registration order can satisfy",
       Severity::kError},
  };
  return kChecks;
}

const CheckInfo& CheckInfoFor(HazardKind kind) {
  const auto& registry = CheckRegistry();
  const usize index = static_cast<usize>(kind);
  assert(index < registry.size());
  return registry[index];
}

}  // namespace emu
