#include "src/analysis/hazard.h"

#include <cassert>
#include <sstream>

namespace emu {

const char* HazardKindName(HazardKind kind) {
  switch (kind) {
    case HazardKind::kMultiDriver: return "MULTIDRIVEN";
    case HazardKind::kCombRace: return "COMBRACE";
    case HazardKind::kUninitRead: return "UNINITREAD";
    case HazardKind::kLostBackpressure: return "LOSTBACKPRESSURE";
    case HazardKind::kRunawayProcess: return "RUNAWAY";
    case HazardKind::kPostMortemStep: return "POSTMORTEMSTEP";
    case HazardKind::kCombLoop: return "COMBLOOP";
    case HazardKind::kDeadSignal: return "DEADSIGNAL";
    case HazardKind::kDeadProcess: return "DEADPROCESS";
    case HazardKind::kFifoDeadlock: return "FIFODEADLOCK";
    case HazardKind::kShardCut: return "SHARDCUT";
    case HazardKind::kFaultTarget: return "FAULTTARGET";
  }
  return "UNKNOWN";
}

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "unknown";
}

std::string HazardReport::ToString() const {
  std::ostringstream os;
  os << "%" << SeverityName(severity) << "-" << HazardKindName(kind) << " @cycle " << cycle;
  if (!signal.empty()) {
    os << " [" << signal << "]";
  }
  if (!process.empty()) {
    os << " (" << process << ")";
  }
  os << ": " << message;
  return os.str();
}

const std::vector<CheckInfo>& CheckRegistry() {
  static const std::vector<CheckInfo> kChecks = {
      {HazardKind::kMultiDriver, "MULTIDRIVEN",
       "two distinct processes wrote the same Reg in one cycle (last write wins)",
       Severity::kError, /*static_pass=*/true, /*dynamic_pass=*/true},
      {HazardKind::kCombRace, "COMBRACE",
       "a Wire was read by a process registered before its writer (stale data observed)",
       Severity::kError, /*static_pass=*/true, /*dynamic_pass=*/true},
      {HazardKind::kUninitRead, "UNINITREAD",
       "a no-default Reg/Wire was read before its first write (X propagation)",
       Severity::kWarning, /*static_pass=*/false, /*dynamic_pass=*/true},
      {HazardKind::kLostBackpressure, "LOSTBACKPRESSURE",
       "SyncFifo::Push dropped a value and the pusher never checked CanPush that cycle",
       Severity::kError, /*static_pass=*/false, /*dynamic_pass=*/true},
      {HazardKind::kRunawayProcess, "RUNAWAY",
       "a process exceeded its per-resume operation budget without reaching Pause()",
       Severity::kError, /*static_pass=*/false, /*dynamic_pass=*/true},
      {HazardKind::kPostMortemStep, "POSTMORTEMSTEP",
       "Simulator::Step() ran after a registered Clocked element was destroyed",
       Severity::kError, /*static_pass=*/false, /*dynamic_pass=*/true},
      {HazardKind::kCombLoop, "COMBLOOP",
       "combinational cycle: a wire dependency loop no registration order can satisfy",
       Severity::kError, /*static_pass=*/true, /*dynamic_pass=*/true},
      {HazardKind::kDeadSignal, "DEADSIGNAL",
       "a named signal/FIFO with writers but no reader (or readers but no writer), "
       "not marked external",
       Severity::kWarning, /*static_pass=*/true, /*dynamic_pass=*/false},
      {HazardKind::kDeadProcess, "DEADPROCESS",
       "a process whose declared inputs have no producer anywhere in the design",
       Severity::kWarning, /*static_pass=*/true, /*dynamic_pass=*/false},
      {HazardKind::kFifoDeadlock, "FIFODEADLOCK",
       "a cycle of FIFO producer/consumer edges with no drain outside the cycle "
       "(fills once, blocks forever)",
       Severity::kError, /*static_pass=*/true, /*dynamic_pass=*/false},
      {HazardKind::kShardCut, "SHARDCUT",
       "a cross-shard link direction with zero minimum transit time (degenerate "
       "conservative lookahead)",
       Severity::kError, /*static_pass=*/true, /*dynamic_pass=*/false},
      {HazardKind::kFaultTarget, "FAULTTARGET",
       "a FaultPlan pattern that matches no fault point registered by the design",
       Severity::kError, /*static_pass=*/true, /*dynamic_pass=*/false},
  };
  return kChecks;
}

const CheckInfo& CheckInfoFor(HazardKind kind) {
  const auto& registry = CheckRegistry();
  const usize index = static_cast<usize>(kind);
  assert(index < registry.size());
  return registry[index];
}

}  // namespace emu
