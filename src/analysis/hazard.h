// Hazard taxonomy for the emu-check analysis layer.
//
// Each HazardKind is a design rule the cycle-accurate kernel can enforce —
// the RTL semantics that src/hdl previously only documented (Reg last-write-
// wins, Wire registration-order visibility, the Clocked lifetime rule, FIFO
// backpressure). The taxonomy mirrors Verilator lint / DRC practice: every
// check has a stable id, a default severity, and a one-line description,
// exposed through CheckRegistry() so tools can enumerate them.
#ifndef SRC_ANALYSIS_HAZARD_H_
#define SRC_ANALYSIS_HAZARD_H_

#include <string>
#include <vector>

#include "src/common/types.h"

namespace emu {

enum class HazardKind : u8 {
  // Two distinct processes Write() the same Reg in one cycle; commit order
  // (last write wins) is an artifact of call order, not design intent.
  kMultiDriver = 0,
  // A Wire was read by a process registered before its writer: the reader
  // observed the previous cycle's value, not this cycle's.
  kCombRace,
  // A Reg/Wire constructed with emu::no_init was read before its first
  // Write(); on a real FPGA this is an X propagating into logic.
  kUninitRead,
  // SyncFifo::Push returned false (the value was dropped) and the pushing
  // context never consulted CanPush() on that FIFO this cycle.
  kLostBackpressure,
  // A process performed more kernel operations in a single resume than the
  // configured budget without reaching a Pause() point (livelock detector).
  kRunawayProcess,
  // Simulator::Step() ran after a registered Clocked element was destroyed —
  // the lifetime rule in simulator.h turned from silent UB into a report.
  kPostMortemStep,
  // The process/wire dependency graph contains a combinational cycle: a set
  // of processes whose same-cycle wire reads can never all be satisfied by
  // any registration order.
  kCombLoop,

  // --- Static-only checks (src/analysis/elab, over declared IO) ---

  // A named signal/FIFO has declared writers but no declared reader, or
  // vice versa, and is not marked external: dead logic or a missing
  // declaration.
  kDeadSignal,
  // A process's declared inputs have no producer anywhere in the design (and
  // none is external): the process can never receive work.
  kDeadProcess,
  // A cycle of FIFO producer/consumer edges with no drain outside the cycle:
  // once every FIFO in the ring fills, all of its processes block forever
  // (static deadlock).
  kFifoDeadlock,
  // A cross-shard link direction registered with the ParallelRunner has a
  // zero minimum transit time: the conservative lookahead horizon is
  // degenerate and the parallel run cannot make progress soundly.
  kShardCut,
  // A FaultPlan entry's pattern matches no fault point the elaborated design
  // registered: the intended fault campaign silently does nothing.
  kFaultTarget,
};

inline constexpr usize kHazardKindCount = 12;

enum class Severity : u8 {
  kInfo = 0,
  kWarning,
  kError,
};

const char* HazardKindName(HazardKind kind);
const char* SeverityName(Severity severity);

struct HazardReport {
  HazardKind kind = HazardKind::kMultiDriver;
  Severity severity = Severity::kError;
  Cycle cycle = 0;      // detection cycle (0 for post-run graph findings)
  std::string signal;   // offending element; empty when not applicable
  std::string process;  // offending process; "testbench" outside any process
  std::string message;  // full human-readable diagnostic

  std::string ToString() const;
};

// Registry metadata for one built-in check (Verilator-lint-style id plus the
// rule it enforces). The registry is static: checks are compiled in, and
// HazardMonitor::EnableCheck toggles them per monitor instance.
struct CheckInfo {
  HazardKind kind;
  const char* name;  // stable id, e.g. "MULTIDRIVEN"
  const char* description;
  Severity default_severity;
  // Which passes can enforce the rule: `static_pass` at elaboration over
  // declared IO (src/analysis/elab), `dynamic_pass` at simulation time via
  // kernel hooks (HazardMonitor). Several rules exist in both.
  bool static_pass = false;
  bool dynamic_pass = true;
};

const std::vector<CheckInfo>& CheckRegistry();
const CheckInfo& CheckInfoFor(HazardKind kind);

}  // namespace emu

#endif  // SRC_ANALYSIS_HAZARD_H_
