#include "src/analysis/hazard_monitor.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <ostream>
#include <sstream>

#include "src/hdl/simulator.h"

namespace emu {

HazardMonitor::HazardMonitor(Simulator& sim) : sim_(sim) {
  enabled_.fill(true);
  sim_.AttachMonitor(this);
}

HazardMonitor::~HazardMonitor() {
  if (sim_.monitor() == this) {
    sim_.AttachMonitor(nullptr);
  }
}

void HazardMonitor::EnableCheck(HazardKind kind, bool enabled) {
  enabled_[static_cast<usize>(kind)] = enabled;
}

bool HazardMonitor::CheckEnabled(HazardKind kind) const {
  return enabled_[static_cast<usize>(kind)];
}

usize HazardMonitor::CountOf(HazardKind kind) const {
  usize count = 0;
  for (const HazardReport& report : reports_) {
    if (report.kind == kind) {
      ++count;
    }
  }
  return count;
}

void HazardMonitor::Clear() {
  reports_.clear();
  emitted_.clear();
  comb_cycles_seen_.clear();
  post_mortem_reported_ = false;
  std::fill(runaway_reported_.begin(), runaway_reported_.end(), false);
}

std::string HazardMonitor::Summary() const {
  std::ostringstream os;
  usize errors = 0;
  usize warnings = 0;
  for (const HazardReport& report : reports_) {
    os << report.ToString() << "\n";
    if (report.severity == Severity::kError) {
      ++errors;
    } else if (report.severity == Severity::kWarning) {
      ++warnings;
    }
  }
  if (reports_.empty()) {
    os << "emu-check: clean (no hazards detected)\n";
  } else {
    os << "emu-check: " << reports_.size() << " finding(s): " << errors << " error(s), "
       << warnings << " warning(s)\n";
  }
  return os.str();
}

HazardMonitor::ElementState& HazardMonitor::Element(ElementKind kind, const void* id,
                                                    const std::string& name) {
  ElementState& state = elements_[id];
  if (state.name.empty()) {
    state.name = Label(kind, id, name);
    state.kind = kind;
  }
  return state;
}

std::string HazardMonitor::Label(ElementKind kind, const void* id, const std::string& name) {
  if (!name.empty()) {
    return name;
  }
  const char* prefix = kind == ElementKind::kReg    ? "reg"
                       : kind == ElementKind::kWire ? "wire"
                                                    : "fifo";
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%s@%p", prefix, id);
  return buffer;
}

const std::string& HazardMonitor::ProcessLabel(isize index) const {
  static const std::string kTestbenchLabel = "testbench";
  static const std::string kUnknownLabel = "process?";
  if (index < 0) {
    return kTestbenchLabel;
  }
  const usize i = static_cast<usize>(index);
  if (i < process_names_.size() && !process_names_[i].empty()) {
    return process_names_[i];
  }
  return kUnknownLabel;
}

bool HazardMonitor::Report(HazardKind kind, const void* id, isize a, isize b, Cycle cycle,
                           std::string signal, std::string process, std::string message) {
  if (!CheckEnabled(kind)) {
    return false;
  }
  if (!emitted_.insert({static_cast<u8>(kind), id, a, b}).second) {
    return false;
  }
  HazardReport report;
  report.kind = kind;
  report.severity = CheckInfoFor(kind).default_severity;
  report.cycle = cycle;
  report.signal = std::move(signal);
  report.process = std::move(process);
  report.message = std::move(message);
  if (echo_) {
    std::fprintf(stderr, "%s\n", report.ToString().c_str());
  }
  reports_.push_back(std::move(report));
  return true;
}

void HazardMonitor::BumpEvent() {
  const isize p = sim_.current_process_index();
  if (p < 0) {
    return;
  }
  ++events_this_resume_;
  if (events_this_resume_ <= runaway_budget_) {
    return;
  }
  const usize i = static_cast<usize>(p);
  if (i < runaway_reported_.size() && runaway_reported_[i]) {
    return;
  }
  if (i >= runaway_reported_.size()) {
    runaway_reported_.resize(i + 1, false);
  }
  std::ostringstream msg;
  msg << "performed more than " << runaway_budget_
      << " kernel operations in a single resume without Pause(); likely livelock";
  if (Report(HazardKind::kRunawayProcess, nullptr, p, 0, sim_.now(), "", ProcessLabel(p),
             msg.str())) {
    runaway_reported_[i] = true;
  }
}

void HazardMonitor::OnProcessResume(usize index, const std::string& name) {
  if (index >= process_names_.size()) {
    process_names_.resize(index + 1);
    runaway_reported_.resize(index + 1, false);
  }
  if (process_names_[index].empty() && !name.empty()) {
    process_names_[index] = name;
  }
  events_this_resume_ = 0;
}

void HazardMonitor::OnRegWrite(const void* id, const std::string& name) {
  ElementState& e = Element(ElementKind::kReg, id, name);
  const isize p = sim_.current_process_index();
  const Cycle now = sim_.now();
  if (e.written && e.last_write_cycle == now && e.last_writer != p && e.last_writer >= 0 &&
      p >= 0) {
    std::ostringstream msg;
    msg << "also written by '" << ProcessLabel(e.last_writer)
        << "' this cycle; commit order is call-order dependent (last write wins)";
    Report(HazardKind::kMultiDriver, id, std::min(p, e.last_writer), std::max(p, e.last_writer),
           now, e.name, ProcessLabel(p), msg.str());
  }
  e.written = true;
  e.last_writer = p;
  e.last_write_cycle = now;
  if (p >= 0) {
    e.writers.insert(p);
  }
  BumpEvent();
}

void HazardMonitor::OnRegRead(const void* id, const std::string& name, bool uninit) {
  ElementState& e = Element(ElementKind::kReg, id, name);
  const isize p = sim_.current_process_index();
  if (p >= 0) {
    e.readers.insert(p);
  }
  if (uninit) {
    Report(HazardKind::kUninitRead, id, p, 0, sim_.now(), e.name, ProcessLabel(p),
           "read of no-default Reg before its first write (X propagation)");
  }
  BumpEvent();
}

void HazardMonitor::OnWireWrite(const void* id, const std::string& name) {
  ElementState& e = Element(ElementKind::kWire, id, name);
  const isize p = sim_.current_process_index();
  e.written = true;
  e.last_writer = p;
  e.last_write_cycle = sim_.now();
  if (p >= 0) {
    e.writers.insert(p);
  }
  BumpEvent();
}

void HazardMonitor::OnWireRead(const void* id, const std::string& name, bool uninit) {
  ElementState& e = Element(ElementKind::kWire, id, name);
  const isize p = sim_.current_process_index();
  if (p >= 0) {
    e.readers.insert(p);
    for (const isize writer : e.writers) {
      if (writer > p) {
        std::ostringstream msg;
        msg << "reader '" << ProcessLabel(p) << "' is registered before writer '"
            << ProcessLabel(writer) << "': it observes last cycle's value, not this cycle's";
        Report(HazardKind::kCombRace, id, p, writer, sim_.now(), e.name, ProcessLabel(p),
               msg.str());
      }
    }
  }
  if (uninit) {
    Report(HazardKind::kUninitRead, id, p, 0, sim_.now(), e.name, ProcessLabel(p),
           "read of no-default Wire before its first write (X propagation)");
  }
  BumpEvent();
}

void HazardMonitor::OnFifoCanPush(const void* id, const std::string& name) {
  ElementState& e = Element(ElementKind::kFifo, id, name);
  e.canpush_seen = true;
  e.last_canpush_cycle = sim_.now();
  BumpEvent();
}

void HazardMonitor::OnFifoPush(const void* id, const std::string& name, bool accepted) {
  ElementState& e = Element(ElementKind::kFifo, id, name);
  const isize p = sim_.current_process_index();
  const Cycle now = sim_.now();
  if (accepted) {
    e.written = true;
    e.last_writer = p;
    e.last_write_cycle = now;
    if (p >= 0) {
      e.writers.insert(p);
    }
  } else if (!e.canpush_seen || e.last_canpush_cycle != now) {
    Report(HazardKind::kLostBackpressure, id, p, 0, now, e.name, ProcessLabel(p),
           "Push() on a full FIFO dropped a value and CanPush() was never "
           "consulted this cycle (unobserved backpressure)");
  }
  BumpEvent();
}

void HazardMonitor::OnFifoPop(const void* id, const std::string& name) {
  ElementState& e = Element(ElementKind::kFifo, id, name);
  const isize p = sim_.current_process_index();
  if (p >= 0) {
    e.readers.insert(p);
  }
  BumpEvent();
}

void HazardMonitor::OnPostMortemStep(usize dead_elements) {
  if (post_mortem_reported_) {
    return;
  }
  std::ostringstream msg;
  msg << "Step() ran after " << dead_elements
      << " registered Clocked element(s) were destroyed; see the lifetime rule in "
         "src/hdl/simulator.h";
  if (Report(HazardKind::kPostMortemStep, nullptr, static_cast<isize>(dead_elements), 0,
             sim_.now(), "", "testbench", msg.str())) {
    post_mortem_reported_ = true;
  }
}

usize HazardMonitor::AnalyzeCombinationalGraph() {
  // Process -> process edges induced by wires: writer w feeds reader r when
  // some wire has w in writers and r in readers. Regs and FIFOs are clocked
  // and therefore break combinational paths; only wires create same-cycle
  // dependencies. A non-trivial strongly connected component means no
  // registration order can deliver fresh values to every reader.
  std::map<isize, std::set<isize>> adjacency;
  std::map<std::pair<isize, isize>, std::string> edge_wire;
  for (const auto& [id, e] : elements_) {
    (void)id;
    if (e.kind != ElementKind::kWire) {
      continue;
    }
    for (const isize w : e.writers) {
      for (const isize r : e.readers) {
        if (w == r) {
          continue;  // same-process scratch use is a blocking assignment, fine
        }
        adjacency[w].insert(r);
        edge_wire.try_emplace({w, r}, e.name);
      }
    }
  }

  // Tarjan SCC, iterative.
  std::map<isize, usize> index_of;
  std::map<isize, usize> lowlink;
  std::map<isize, bool> on_stack;
  std::vector<isize> stack;
  usize next_index = 0;
  std::vector<std::vector<isize>> sccs;

  struct Frame {
    isize node;
    std::set<isize>::const_iterator next;
  };
  for (const auto& [root, unused] : adjacency) {
    (void)unused;
    if (index_of.count(root) != 0) {
      continue;
    }
    std::vector<Frame> frames;
    index_of[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;
    frames.push_back({root, adjacency[root].begin()});
    while (!frames.empty()) {
      Frame& frame = frames.back();
      const auto& edges = adjacency[frame.node];
      if (frame.next != edges.end()) {
        const isize child = *frame.next;
        ++frame.next;
        if (adjacency.count(child) == 0) {
          // Sink with no outgoing edges: trivially its own SCC.
          if (index_of.count(child) == 0) {
            index_of[child] = lowlink[child] = next_index++;
          }
          continue;
        }
        if (index_of.count(child) == 0) {
          index_of[child] = lowlink[child] = next_index++;
          stack.push_back(child);
          on_stack[child] = true;
          frames.push_back({child, adjacency[child].begin()});
        } else if (on_stack[child]) {
          lowlink[frame.node] = std::min(lowlink[frame.node], index_of[child]);
        }
        continue;
      }
      if (lowlink[frame.node] == index_of[frame.node]) {
        std::vector<isize> scc;
        for (;;) {
          const isize n = stack.back();
          stack.pop_back();
          on_stack[n] = false;
          scc.push_back(n);
          if (n == frame.node) {
            break;
          }
        }
        if (scc.size() >= 2) {
          sccs.push_back(std::move(scc));
        }
      }
      const isize done = frame.node;
      frames.pop_back();
      if (!frames.empty()) {
        lowlink[frames.back().node] = std::min(lowlink[frames.back().node], lowlink[done]);
      }
    }
  }

  usize added = 0;
  for (auto& scc : sccs) {
    std::sort(scc.begin(), scc.end());
    std::ostringstream key;
    std::ostringstream members;
    std::set<std::string> wires;
    for (usize i = 0; i < scc.size(); ++i) {
      key << scc[i] << ",";
      members << (i == 0 ? "" : " <-> ") << ProcessLabel(scc[i]);
      for (const isize other : scc) {
        auto it = edge_wire.find({scc[i], other});
        if (it != edge_wire.end()) {
          wires.insert(it->second);
        }
      }
    }
    if (!comb_cycles_seen_.insert(key.str()).second) {
      continue;
    }
    std::ostringstream msg;
    msg << "combinational cycle among processes {" << members.str() << "} via wire(s) {";
    bool first = true;
    for (const std::string& w : wires) {
      msg << (first ? "" : ", ") << w;
      first = false;
    }
    msg << "}: no registration order satisfies every same-cycle read";
    std::string signal = wires.empty() ? std::string() : *wires.begin();
    if (Report(HazardKind::kCombLoop, nullptr, scc.front(), scc.back(), sim_.now(),
               std::move(signal), ProcessLabel(scc.front()), msg.str())) {
      ++added;
    }
  }
  return added;
}

void HazardMonitor::DumpDot(std::ostream& os) const {
  os << "digraph emu_design {\n  rankdir=LR;\n";
  for (usize i = 0; i < process_names_.size(); ++i) {
    os << "  p" << i << " [shape=box,label=\"" << ProcessLabel(static_cast<isize>(i))
       << "\"];\n";
  }
  // Deterministic element order despite the unordered map.
  std::vector<const ElementState*> ordered;
  ordered.reserve(elements_.size());
  for (const auto& [id, e] : elements_) {
    (void)id;
    ordered.push_back(&e);
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const ElementState* a, const ElementState* b) { return a->name < b->name; });
  bool testbench_used = false;
  for (usize i = 0; i < ordered.size(); ++i) {
    const ElementState& e = *ordered[i];
    const char* shape = e.kind == ElementKind::kReg    ? "ellipse"
                        : e.kind == ElementKind::kWire ? "diamond"
                                                       : "cds";
    os << "  s" << i << " [shape=" << shape << ",label=\"" << e.name << "\"];\n";
    for (const isize w : e.writers) {
      os << "  p" << w << " -> s" << i << ";\n";
    }
    if (e.written && e.last_writer < 0) {
      os << "  tb -> s" << i << " [style=dashed];\n";
      testbench_used = true;
    }
    for (const isize r : e.readers) {
      os << "  s" << i << " -> p" << r << ";\n";
    }
  }
  if (testbench_used) {
    os << "  tb [shape=plaintext,label=\"testbench\"];\n";
  }
  os << "}\n";
}

}  // namespace emu
