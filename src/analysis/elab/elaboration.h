// Pre-flight elaboration: lint as a simulation gate.
//
// Attach an Elaboration to a Simulator (Simulator::AttachElaboration) and
// the full static check suite runs exactly once, at the first Step()/Run()
// after attachment — i.e. against the completely constructed design, before
// any cycle executes. Tests then assert on findings() (or rely on
// SetAbortOnError for hard gating) without writing any lint plumbing:
//
//   elab::Elaboration lint("nat");
//   sim.AttachElaboration(&lint);
//   ... build design ...
//   sim.Run(1000);                       // pre-flight fires on entry
//   EXPECT_TRUE(lint.findings().empty());
#ifndef SRC_ANALYSIS_ELAB_ELABORATION_H_
#define SRC_ANALYSIS_ELAB_ELABORATION_H_

#include <string>
#include <vector>

#include "src/analysis/elab/elab_graph.h"
#include "src/analysis/finding.h"

namespace emu {

class Simulator;

namespace elab {

class Elaboration {
 public:
  explicit Elaboration(std::string design = "") : design_(std::move(design)) {}

  // Suppressions applied to the findings (see finding.h for the syntax).
  void SetSuppressions(std::vector<Suppression> suppressions) {
    suppressions_ = std::move(suppressions);
  }
  // Echo findings to stderr as they are found (default on: a pre-flight that
  // fails silently inside Run() helps nobody).
  void SetEcho(bool echo) { echo_ = echo; }
  // Abort the process when an unsuppressed error finding survives — the
  // hard-gate mode for harnesses that must not run a broken design.
  void SetAbortOnError(bool abort_on_error) { abort_on_error_ = abort_on_error; }

  // Runs the static suite against `sim`'s elaborated design. Called by the
  // Simulator once per attachment; callable directly when no stepping is
  // wanted at all.
  void PreFlight(Simulator& sim);

  bool ran() const { return ran_; }
  const std::vector<Finding>& findings() const { return findings_; }
  usize suppressed() const { return suppressed_; }
  const ElabGraph& graph() const { return graph_; }

 private:
  std::string design_;
  std::vector<Suppression> suppressions_;
  bool echo_ = true;
  bool abort_on_error_ = false;
  bool ran_ = false;
  usize suppressed_ = 0;
  ElabGraph graph_;
  std::vector<Finding> findings_;
};

}  // namespace elab
}  // namespace emu

#endif  // SRC_ANALYSIS_ELAB_ELABORATION_H_
