#include "src/analysis/elab/elab_graph.h"

#include <algorithm>
#include <ostream>
#include <queue>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "src/fault/fault_registry.h"
#include "src/hdl/simulator.h"
#include "src/sim/parallel_runner.h"

namespace emu::elab {

namespace {

// Appends `index` once (declaration lists stay duplicate-free even if design
// code declares the same element twice for one process).
void AddUnique(std::vector<usize>& list, usize index) {
  if (std::find(list.begin(), list.end(), index) == list.end()) {
    list.push_back(index);
  }
}

std::string JoinNames(const std::vector<usize>& indices,
                      const std::vector<ElabProcess>& processes) {
  std::string out;
  for (usize i : indices) {
    if (!out.empty()) {
      out += ", ";
    }
    out += processes[i].name;
  }
  return out;
}

// Iterative Tarjan SCC (the same shape the runtime monitor uses — recursion-
// free so deep pipelines cannot overflow the stack). Returns SCCs with
// members sorted ascending, ordered by smallest member.
std::vector<std::vector<usize>> StronglyConnected(
    const std::vector<std::vector<usize>>& adjacency) {
  const usize n = adjacency.size();
  std::vector<u32> index(n, 0), lowlink(n, 0);
  std::vector<bool> on_stack(n, false), visited(n, false);
  std::vector<usize> stack;
  std::vector<std::vector<usize>> sccs;
  u32 next_index = 1;

  struct Frame {
    usize node;
    usize edge = 0;
  };
  for (usize root = 0; root < n; ++root) {
    if (visited[root]) {
      continue;
    }
    std::vector<Frame> frames{{root}};
    while (!frames.empty()) {
      Frame& frame = frames.back();
      const usize v = frame.node;
      if (frame.edge == 0) {
        visited[v] = true;
        index[v] = lowlink[v] = next_index++;
        stack.push_back(v);
        on_stack[v] = true;
      }
      bool descended = false;
      while (frame.edge < adjacency[v].size()) {
        const usize w = adjacency[v][frame.edge++];
        if (!visited[w]) {
          frames.push_back(Frame{w});
          descended = true;
          break;
        }
        if (on_stack[w]) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
      }
      if (descended) {
        continue;
      }
      if (lowlink[v] == index[v]) {
        std::vector<usize> scc;
        for (;;) {
          const usize w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          scc.push_back(w);
          if (w == v) {
            break;
          }
        }
        std::sort(scc.begin(), scc.end());
        sccs.push_back(std::move(scc));
      }
      frames.pop_back();
      if (!frames.empty()) {
        Frame& parent = frames.back();
        lowlink[parent.node] = std::min(lowlink[parent.node], lowlink[v]);
      }
    }
  }
  std::sort(sccs.begin(), sccs.end(),
            [](const auto& a, const auto& b) { return a.front() < b.front(); });
  return sccs;
}

}  // namespace

ElabGraph ElabGraph::FromSimulator(const Simulator& sim, std::string design) {
  ElabGraph graph;
  graph.design_ = std::move(design);

  const Catalog& catalog = sim.catalog();
  std::unordered_map<const void*, usize> by_id;
  std::unordered_map<std::string, usize> by_name;
  for (const ElementDecl& decl : catalog.elements()) {
    const usize index = graph.nodes_.size();
    ElabNode node;
    node.id = decl.id;
    node.kind = decl.kind;
    node.name = decl.name;
    node.no_init = decl.no_init;
    node.depth = decl.depth;
    node.external = decl.external;
    graph.nodes_.push_back(std::move(node));
    by_id[decl.id] = index;
    if (!decl.name.empty()) {
      by_name.try_emplace(decl.name, index);
    }
  }

  // A reference the catalog never saw still needs a node (the completeness
  // checks then flag the missing half); its kind is inferred from the role.
  auto resolve_id = [&](const void* id, NodeKind fallback) -> usize {
    auto it = by_id.find(id);
    if (it != by_id.end()) {
      return it->second;
    }
    const usize index = graph.nodes_.size();
    ElabNode node;
    node.id = id;
    node.kind = fallback;
    node.implicit = true;
    graph.nodes_.push_back(std::move(node));
    by_id[id] = index;
    return index;
  };
  auto resolve_name = [&](const std::string& name, NodeKind fallback) -> usize {
    auto it = by_name.find(name);
    if (it != by_name.end()) {
      return it->second;
    }
    const usize index = graph.nodes_.size();
    ElabNode node;
    node.kind = fallback;
    node.name = name;
    node.implicit = true;
    graph.nodes_.push_back(std::move(node));
    by_name[name] = index;
    return index;
  };

  const std::vector<ProcessIo>& io = catalog.io();
  graph.processes_.resize(sim.process_count());
  for (usize p = 0; p < sim.process_count(); ++p) {
    ElabProcess& process = graph.processes_[p];
    process.name = sim.process_name(p);
    if (p >= io.size() || !io[p].declared) {
      continue;
    }
    process.declared = true;
    auto resolve_role = [&](const IoRefs& refs, NodeKind fallback, std::vector<usize>& into,
                            std::vector<usize> ElabNode::* role) {
      for (const void* id : refs.ids) {
        const usize node = resolve_id(id, fallback);
        AddUnique(into, node);
        AddUnique(graph.nodes_[node].*role, p);
      }
      for (const std::string& name : refs.names) {
        const usize node = resolve_name(name, fallback);
        AddUnique(into, node);
        AddUnique(graph.nodes_[node].*role, p);
      }
    };
    resolve_role(io[p].reads, NodeKind::kWire, process.reads, &ElabNode::readers);
    resolve_role(io[p].writes, NodeKind::kWire, process.writes, &ElabNode::writers);
    resolve_role(io[p].pops, NodeKind::kFifo, process.pops, &ElabNode::poppers);
    resolve_role(io[p].pushes, NodeKind::kFifo, process.pushes, &ElabNode::pushers);
  }
  return graph;
}

bool ElabGraph::fully_declared() const {
  for (const ElabProcess& process : processes_) {
    if (!process.declared) {
      return false;
    }
  }
  return true;
}

std::vector<std::vector<usize>> ElabGraph::CombEdges() const {
  std::vector<std::vector<usize>> adjacency(processes_.size());
  for (const ElabNode& node : nodes_) {
    if (node.kind != NodeKind::kWire) {
      continue;
    }
    for (usize w : node.writers) {
      for (usize r : node.readers) {
        if (w == r) {
          continue;  // reading your own wire is a blocking assignment
        }
        adjacency[w].push_back(r);
      }
    }
  }
  return adjacency;
}

void ElabGraph::CheckCombLoops(std::vector<Finding>& out) const {
  const auto adjacency = CombEdges();
  for (const auto& scc : StronglyConnected(adjacency)) {
    if (scc.size() < 2) {
      continue;
    }
    // Name the wires that close the cycle: written and read inside the SCC.
    std::unordered_set<usize> members(scc.begin(), scc.end());
    std::string wires;
    for (const ElabNode& node : nodes_) {
      if (node.kind != NodeKind::kWire) {
        continue;
      }
      bool written = false, read = false;
      for (usize w : node.writers) written |= members.count(w) > 0;
      for (usize r : node.readers) read |= members.count(r) > 0;
      if (written && read) {
        if (!wires.empty()) {
          wires += ", ";
        }
        wires += node.name.empty() ? "<anon>" : node.name;
      }
    }
    Finding f;
    f.check = HazardKindName(HazardKind::kCombLoop);
    f.severity = CheckInfoFor(HazardKind::kCombLoop).default_severity;
    f.design = design_;
    f.subject = JoinNames(scc, processes_);
    f.message = "combinational cycle through wires [" + wires +
                "]: no registration order lets every reader observe its same-cycle writer";
    out.push_back(std::move(f));
  }
}

void ElabGraph::CheckMultiDriven(std::vector<Finding>& out) const {
  for (const ElabNode& node : nodes_) {
    if (node.kind != NodeKind::kReg || node.writers.size() < 2) {
      continue;
    }
    Finding f;
    f.check = HazardKindName(HazardKind::kMultiDriver);
    f.severity = CheckInfoFor(HazardKind::kMultiDriver).default_severity;
    f.design = design_;
    f.subject = node.name.empty() ? "<anon reg>" : node.name;
    f.message = "register has " + std::to_string(node.writers.size()) +
                " declared writers (" + JoinNames(node.writers, processes_) +
                "): commit value depends on resume order, not design intent";
    out.push_back(std::move(f));
  }
}

void ElabGraph::CheckCombRaces(std::vector<Finding>& out) const {
  for (const ElabNode& node : nodes_) {
    if (node.kind != NodeKind::kWire) {
      continue;
    }
    for (usize r : node.readers) {
      for (usize w : node.writers) {
        if (r >= w) {
          continue;  // reader after (or same as) writer: sees this cycle's value
        }
        Finding f;
        f.check = HazardKindName(HazardKind::kCombRace);
        f.severity = CheckInfoFor(HazardKind::kCombRace).default_severity;
        f.design = design_;
        f.subject = node.name.empty() ? "<anon wire>" : node.name;
        f.message = "'" + processes_[r].name + "' (slot " + std::to_string(r) +
                    ") reads this wire before its writer '" + processes_[w].name + "' (slot " +
                    std::to_string(w) + ") runs: it observes the previous cycle's value";
        out.push_back(std::move(f));
      }
    }
  }
}

void ElabGraph::CheckDeadSignals(std::vector<Finding>& out) const {
  if (!fully_declared()) {
    return;
  }
  for (const ElabNode& node : nodes_) {
    if (node.external || node.name.empty()) {
      continue;
    }
    std::string problem;
    if (node.kind == NodeKind::kWire) {
      if (!node.writers.empty() && node.readers.empty()) {
        problem = "wire is written (" + JoinNames(node.writers, processes_) +
                  ") but never read: dead logic";
      } else if (!node.readers.empty() && node.writers.empty()) {
        problem = "wire is read (" + JoinNames(node.readers, processes_) +
                  ") but never written: readers only ever see the reset value";
      } else if (!node.referenced()) {
        problem = "wire is referenced by no declared process";
      }
    } else if (node.kind == NodeKind::kFifo) {
      if (!node.pushers.empty() && node.poppers.empty()) {
        problem = "fifo is pushed (" + JoinNames(node.pushers, processes_) +
                  ") but never popped: fills once and backpressures forever";
      } else if (!node.poppers.empty() && node.pushers.empty()) {
        problem = "fifo is popped (" + JoinNames(node.poppers, processes_) +
                  ") but never pushed: consumers starve";
      } else if (!node.referenced()) {
        problem = "fifo is referenced by no declared process";
      }
    }
    if (problem.empty()) {
      continue;
    }
    Finding f;
    f.check = HazardKindName(HazardKind::kDeadSignal);
    f.severity = CheckInfoFor(HazardKind::kDeadSignal).default_severity;
    f.design = design_;
    f.subject = node.name;
    f.message = std::move(problem);
    out.push_back(std::move(f));
  }
}

void ElabGraph::CheckDeadProcesses(std::vector<Finding>& out) const {
  if (!fully_declared()) {
    return;
  }
  for (usize p = 0; p < processes_.size(); ++p) {
    const ElabProcess& process = processes_[p];
    if (process.pops.empty() && process.reads.empty()) {
      continue;  // zero declared inputs: a source process
    }
    bool reachable = false;
    for (const auto* inputs : {&process.pops, &process.reads}) {
      for (usize n : *inputs) {
        const ElabNode& node = nodes_[n];
        if (node.external || !node.writers.empty() || !node.pushers.empty()) {
          reachable = true;
          break;
        }
      }
      if (reachable) {
        break;
      }
    }
    if (reachable) {
      continue;
    }
    Finding f;
    f.check = HazardKindName(HazardKind::kDeadProcess);
    f.severity = CheckInfoFor(HazardKind::kDeadProcess).default_severity;
    f.design = design_;
    f.subject = process.name;
    f.message = "none of the process's declared inputs has a producer anywhere in the "
                "design: it can never receive work";
    out.push_back(std::move(f));
  }
}

void ElabGraph::CheckFifoDeadlocks(std::vector<Finding>& out) const {
  if (!fully_declared()) {
    return;
  }
  // Blocking graph over FIFO nodes: popping f_in while pushing f_out means
  // draining f_in is (conservatively) contingent on space in f_out.
  std::vector<std::vector<usize>> adjacency(nodes_.size());
  for (const ElabProcess& process : processes_) {
    for (usize f_in : process.pops) {
      for (usize f_out : process.pushes) {
        if (f_in != f_out && nodes_[f_in].kind == NodeKind::kFifo &&
            nodes_[f_out].kind == NodeKind::kFifo) {
          adjacency[f_in].push_back(f_out);
        }
      }
    }
  }
  for (const auto& scc : StronglyConnected(adjacency)) {
    if (scc.size() < 2) {
      continue;
    }
    std::unordered_set<usize> ring(scc.begin(), scc.end());
    // A drain breaks the ring: a popper of a ring FIFO that pushes nothing
    // back into the ring, or a ring FIFO drained externally.
    bool drained = false;
    for (usize f : scc) {
      if (nodes_[f].external) {
        drained = true;
        break;
      }
      for (usize p : nodes_[f].poppers) {
        bool pushes_into_ring = false;
        for (usize out_fifo : processes_[p].pushes) {
          pushes_into_ring |= ring.count(out_fifo) > 0;
        }
        if (!pushes_into_ring) {
          drained = true;
          break;
        }
      }
      if (drained) {
        break;
      }
    }
    if (drained) {
      continue;
    }
    std::string names;
    for (usize f : scc) {
      if (!names.empty()) {
        names += " -> ";
      }
      names += nodes_[f].name.empty() ? "<anon fifo>" : nodes_[f].name;
    }
    Finding f;
    f.check = HazardKindName(HazardKind::kFifoDeadlock);
    f.severity = CheckInfoFor(HazardKind::kFifoDeadlock).default_severity;
    f.design = design_;
    f.subject = names;
    f.message = "closed backpressure ring with no drain: once every fifo in the ring "
                "fills, all of its processes block forever";
    out.push_back(std::move(f));
  }
}

std::vector<Finding> ElabGraph::Check() const {
  std::vector<Finding> out;
  CheckCombLoops(out);
  CheckMultiDriven(out);
  CheckCombRaces(out);
  CheckDeadSignals(out);
  CheckDeadProcesses(out);
  CheckFifoDeadlocks(out);
  return out;
}

ScheduleResult ElabGraph::StaticSchedule() const {
  const usize n = processes_.size();
  std::vector<std::vector<usize>> adjacency = CombEdges();
  // An undeclared process may touch anything: pin it to its registration
  // slot by ordering it after every earlier process and before every later
  // one. Declared processes reorder only where declared dataflow forces it.
  for (usize u = 0; u < n; ++u) {
    if (processes_[u].declared) {
      continue;
    }
    for (usize p = 0; p < n; ++p) {
      if (p < u) {
        adjacency[p].push_back(u);
      } else if (p > u) {
        adjacency[u].push_back(p);
      }
    }
  }
  std::vector<usize> indegree(n, 0);
  for (const auto& edges : adjacency) {
    for (usize to : edges) {
      ++indegree[to];
    }
  }
  // Kahn with a min-heap on registration index: the minimal-lexicographic
  // topological order. When registration order is already valid (no
  // COMBRACE, no COMBLOOP) the result IS registration order, which is what
  // makes AdoptSchedule bit-exact by construction on clean designs.
  std::priority_queue<usize, std::vector<usize>, std::greater<>> ready;
  for (usize p = 0; p < n; ++p) {
    if (indegree[p] == 0) {
      ready.push(p);
    }
  }
  ScheduleResult result;
  result.order.reserve(n);
  while (!ready.empty()) {
    const usize p = ready.top();
    ready.pop();
    result.order.push_back(p);
    for (usize to : adjacency[p]) {
      if (--indegree[to] == 0) {
        ready.push(to);
      }
    }
  }
  if (result.order.size() != n) {
    std::string stuck;
    for (usize p = 0; p < n; ++p) {
      if (indegree[p] > 0) {
        if (!stuck.empty()) {
          stuck += ", ";
        }
        stuck += processes_[p].name;
      }
    }
    result.error = "combinational cycle prevents a static schedule (processes: " + stuck + ")";
    result.order.clear();
    return result;
  }
  result.ok = true;
  return result;
}

void ElabGraph::DumpDot(std::ostream& os) const {
  os << "digraph emu_elab {\n  rankdir=LR;\n";
  for (usize p = 0; p < processes_.size(); ++p) {
    os << "  p" << p << " [shape=box,label=\"" << processes_[p].name
       << (processes_[p].declared ? "" : " (undeclared)") << "\"];\n";
  }
  for (usize n = 0; n < nodes_.size(); ++n) {
    const ElabNode& node = nodes_[n];
    if (!node.referenced()) {
      continue;
    }
    os << "  e" << n << " [shape=ellipse,label=\""
       << (node.name.empty() ? "<anon>" : node.name) << "\\n" << NodeKindName(node.kind)
       << "\"];\n";
    for (usize w : node.writers) os << "  p" << w << " -> e" << n << ";\n";
    for (usize r : node.readers) os << "  e" << n << " -> p" << r << ";\n";
    for (usize w : node.pushers) os << "  p" << w << " -> e" << n << " [style=dashed];\n";
    for (usize r : node.poppers) os << "  e" << n << " -> p" << r << " [style=dashed];\n";
  }
  os << "}\n";
}

void CheckShardCuts(const ParallelRunner& runner, const std::string& design,
                    std::vector<Finding>& out) {
  CheckShardCuts(runner.cuts(), design, out);
}

void CheckShardCuts(const std::vector<ShardCut>& cuts, const std::string& design,
                    std::vector<Finding>& out) {
  for (const ShardCut& cut : cuts) {
    if (cut.lookahead > 0) {
      continue;
    }
    Finding f;
    f.check = HazardKindName(HazardKind::kShardCut);
    f.severity = CheckInfoFor(HazardKind::kShardCut).default_severity;
    f.design = design;
    f.subject = "shard " + std::to_string(cut.from) + " -> " + std::to_string(cut.to);
    f.message = "cross-shard link direction (id " + std::to_string(cut.link_id) +
                ") has zero minimum transit time: the conservative lookahead horizon is "
                "degenerate and the parallel epoch schedule cannot advance soundly";
    out.push_back(std::move(f));
  }
}

void CheckFaultPlanTargets(const FaultPlan& plan, const FaultRegistry& registry,
                           const std::string& design, std::vector<Finding>& out) {
  for (const FaultPlanEntry& entry : plan.entries) {
    bool matched = false;
    for (const auto& point : registry.points()) {
      if (FaultPatternMatches(entry.pattern, point->name())) {
        matched = true;
        break;
      }
    }
    if (matched) {
      continue;
    }
    Finding f;
    f.check = HazardKindName(HazardKind::kFaultTarget);
    f.severity = CheckInfoFor(HazardKind::kFaultTarget).default_severity;
    f.design = design;
    f.subject = entry.pattern;
    f.message = "fault plan pattern matches no fault point registered by the design (" +
                std::to_string(registry.points().size()) +
                " points registered): the campaign would silently inject nothing";
    out.push_back(std::move(f));
  }
}

void CheckTopoFaults(const FaultPlan& plan, const std::vector<std::string>& hosts,
                     const std::string& design, std::vector<Finding>& out) {
  const auto known = [&hosts](const std::string& name) {
    for (const std::string& host : hosts) {
      if (host == name) {
        return true;
      }
    }
    return false;
  };
  const auto emit = [&out, &design](Severity severity, const std::string& subject,
                                    std::string message) {
    Finding f;
    f.check = HazardKindName(HazardKind::kFaultTarget);
    f.severity = severity;
    f.design = design;
    f.subject = subject;
    f.message = std::move(message);
    out.push_back(std::move(f));
  };

  for (const TopoFault& tf : plan.topo_events) {
    std::vector<const std::string*> names;
    if (tf.kind == TopoFault::Kind::kPartition) {
      for (const std::string& name : tf.group_a) names.push_back(&name);
      for (const std::string& name : tf.group_b) names.push_back(&name);
    } else {
      names.push_back(&tf.host);
    }
    for (const std::string* name : names) {
      if (!known(*name)) {
        emit(CheckInfoFor(HazardKind::kFaultTarget).default_severity, *name,
             "plan line " + std::to_string(tf.line) + ": topology event '" + tf.ToString() +
                 "' names a host the topology does not have (" + std::to_string(hosts.size()) +
                 " hosts): ChaosDirector::Apply would reject the plan");
      }
    }
  }

  // Lifecycle order per host, walked in event-time order. Ties at the same
  // tick keep plan order (stable sort), matching ChaosDirector's log order.
  std::vector<const TopoFault*> lifecycle;
  for (const TopoFault& tf : plan.topo_events) {
    if (tf.kind != TopoFault::Kind::kPartition) {
      lifecycle.push_back(&tf);
    }
  }
  std::stable_sort(lifecycle.begin(), lifecycle.end(),
                   [](const TopoFault* a, const TopoFault* b) { return a->at < b->at; });
  for (usize i = 0; i < lifecycle.size(); ++i) {
    const TopoFault& tf = *lifecycle[i];
    // Most recent earlier lifecycle event for the same host, if any.
    const TopoFault* prev = nullptr;
    for (usize j = i; j-- > 0;) {
      if (lifecycle[j]->host == tf.host) {
        prev = lifecycle[j];
        break;
      }
    }
    if (tf.kind == TopoFault::Kind::kRestart &&
        (prev == nullptr || prev->kind != TopoFault::Kind::kCrash)) {
      emit(Severity::kWarning, tf.host,
           "plan line " + std::to_string(tf.line) + ": restart of '" + tf.host +
               "' has no earlier crash — this is a power-cycle of an up host; if a crash "
               "was intended the detection invariants will not see one");
    }
    if (tf.kind == TopoFault::Kind::kCrash && prev != nullptr &&
        prev->kind == TopoFault::Kind::kCrash) {
      emit(Severity::kWarning, tf.host,
           "plan line " + std::to_string(tf.line) + ": '" + tf.host +
               "' crashes again at t=" + std::to_string(tf.at) +
               " with no restart after the crash at t=" + std::to_string(prev->at) +
               ": the second crash is a no-op");
    }
  }

  // Crash inside a partition window that names the same host: the window
  // spends part of its span isolating a dead node.
  for (const TopoFault& tf : plan.topo_events) {
    if (tf.kind != TopoFault::Kind::kPartition) {
      continue;
    }
    for (const TopoFault* crash : lifecycle) {
      if (crash->kind != TopoFault::Kind::kCrash || crash->at < tf.from ||
          crash->at >= tf.until) {
        continue;
      }
      const auto in_group = [crash](const std::vector<std::string>& group) {
        for (const std::string& name : group) {
          if (name == crash->host) {
            return true;
          }
        }
        return false;
      };
      if (in_group(tf.group_a) || in_group(tf.group_b)) {
        emit(Severity::kWarning, crash->host,
             "plan line " + std::to_string(tf.line) + ": partition window [" +
                 std::to_string(tf.from) + ", " + std::to_string(tf.until) + ") names '" +
                 crash->host + "', which crashes inside it (line " +
                 std::to_string(crash->line) +
                 "): the overlap conflates partition and crash effects");
      }
    }
  }
}

}  // namespace emu::elab
