// Whole-design IR materialized from a constructed (but not yet stepped)
// design — the static half of emu-check.
//
// Verilator proves RTL lint can run at elaboration; the same is true here
// because the HDL layer records everything needed at construction time: the
// Simulator's elab::Catalog holds every Reg/Wire/Bram/Cam/HashCam/SyncFifo
// (self-registered by their constructors) plus each HwProcess's declared
// read/write sets (elab::IoDecl). FromSimulator() resolves those
// declarations into a bipartite graph — element nodes with
// writer/reader/pusher/popper process lists, process nodes with resolved
// element indices — over which the static checks and StaticSchedule() run.
//
// Checks that only need the declared edges they inspect (COMBLOOP,
// MULTIDRIVEN, COMBRACE) always run; checks that assert the *absence* of an
// edge anywhere in the design (DEADSIGNAL, DEADPROCESS, FIFODEADLOCK) are
// meaningless on a partially-declared design and only run when every
// process declared its IO (`fully_declared()`).
//
// StaticSchedule() is the emu-speed landing pad: a topological order of
// processes consistent with declared wire dataflow, minimal-lexicographic on
// registration index, so a design whose registration order is already valid
// gets back exactly that order — which is what makes Simulator::
// AdoptSchedule() provably bit-exact for race-free designs.
#ifndef SRC_ANALYSIS_ELAB_ELAB_GRAPH_H_
#define SRC_ANALYSIS_ELAB_ELAB_GRAPH_H_

#include <string>
#include <vector>

#include "src/analysis/finding.h"
#include "src/hdl/elab_catalog.h"

namespace emu {

class FaultRegistry;
class ParallelRunner;
class Simulator;
struct FaultPlan;
struct ShardCut;

namespace elab {

struct ElabNode {
  const void* id = nullptr;
  NodeKind kind = NodeKind::kReg;
  std::string name;
  bool no_init = false;
  usize depth = 0;
  bool external = false;
  bool implicit = false;  // referenced by a declaration but never registered
  // Process indices per role, in declaration order.
  std::vector<usize> writers;
  std::vector<usize> readers;
  std::vector<usize> pushers;
  std::vector<usize> poppers;

  bool referenced() const {
    return !writers.empty() || !readers.empty() || !pushers.empty() || !poppers.empty();
  }
};

struct ElabProcess {
  std::string name;
  bool declared = false;
  // Resolved node indices per role.
  std::vector<usize> reads;
  std::vector<usize> writes;
  std::vector<usize> pops;
  std::vector<usize> pushes;
};

struct ScheduleResult {
  bool ok = false;
  std::vector<usize> order;  // permutation of process indices when ok
  std::string error;         // cycle description when !ok
};

class ElabGraph {
 public:
  // Materializes the IR from `sim`'s catalog and process table. `design`
  // labels findings ("switch", "nat", ...). Declarations that reference an
  // element the catalog never saw produce an implicit node (the completeness
  // checks then flag the missing half).
  static ElabGraph FromSimulator(const Simulator& sim, std::string design = "");

  const std::vector<ElabNode>& nodes() const { return nodes_; }
  const std::vector<ElabProcess>& processes() const { return processes_; }
  const std::string& design() const { return design_; }

  // True when every process declared its IO: the gate for the
  // whole-design-completeness checks.
  bool fully_declared() const;

  // Runs every static check this graph supports and returns the findings
  // (stable order: check by check, then declaration order).
  std::vector<Finding> Check() const;

  // Individual checks (each appends to `out`).
  void CheckCombLoops(std::vector<Finding>& out) const;      // COMBLOOP
  void CheckMultiDriven(std::vector<Finding>& out) const;    // MULTIDRIVEN
  void CheckCombRaces(std::vector<Finding>& out) const;      // COMBRACE
  void CheckDeadSignals(std::vector<Finding>& out) const;    // DEADSIGNAL (gated)
  void CheckDeadProcesses(std::vector<Finding>& out) const;  // DEADPROCESS (gated)
  void CheckFifoDeadlocks(std::vector<Finding>& out) const;  // FIFODEADLOCK (gated)

  // Topological process order consistent with declared wire dataflow.
  // Undeclared processes are pinned to their registration slots (they may
  // touch anything, so nothing may move across them); declared processes
  // reorder only where dataflow requires it. Fails iff the declared comb
  // graph is cyclic (i.e. CheckCombLoops would report).
  ScheduleResult StaticSchedule() const;

  // Graphviz dump of the elaborated design (processes as boxes, elements as
  // ellipses, edges by role).
  void DumpDot(std::ostream& os) const;

 private:
  // Comb dependency edges: writer process -> reader process through a wire,
  // self-edges skipped (reading your own wire is a blocking assignment, not
  // a cycle). Used by both CheckCombLoops and StaticSchedule.
  std::vector<std::vector<usize>> CombEdges() const;

  std::string design_;
  std::vector<ElabNode> nodes_;
  std::vector<ElabProcess> processes_;
};

// SHARDCUT: validates every cross-shard link direction registered with
// `runner` has a positive conservative lookahead. (The runner records each
// ConnectDirection as a ShardCut; a zero floor makes the epoch horizon
// degenerate, and the release-build assert that used to be the only guard
// compiles out under NDEBUG.)
void CheckShardCuts(const ParallelRunner& runner, const std::string& design,
                    std::vector<Finding>& out);
// Same check over an explicit cut list (unit tests build degenerate cuts
// directly: the runner's debug assert would abort before recording one).
void CheckShardCuts(const std::vector<ShardCut>& cuts, const std::string& design,
                    std::vector<Finding>& out);

// FAULTTARGET: every pattern in `plan` must match at least one point
// registered in `registry`; an unmatched pattern is a fault campaign that
// silently does nothing.
void CheckFaultPlanTargets(const FaultPlan& plan, const FaultRegistry& registry,
                           const std::string& design, std::vector<Finding>& out);

// FAULTTARGET over topology-scoped events (emu-gossip): every host named by
// a crash / restart / partition event must exist in `hosts` — an unknown
// host is an error, since ChaosDirector::Apply would reject the whole plan
// at run time (and a typo'd chaos campaign that never runs tests nothing).
// Lifecycle ordering is also checked, as warnings: a restart with no earlier
// crash of that host (power-cycle semantics — legal, usually a typo), a
// second crash with no restart in between (the second is a no-op), and a
// crash landing inside a partition window that names the same host (the
// partition then partly tests a dead node).
void CheckTopoFaults(const FaultPlan& plan, const std::vector<std::string>& hosts,
                     const std::string& design, std::vector<Finding>& out);

}  // namespace elab
}  // namespace emu

#endif  // SRC_ANALYSIS_ELAB_ELAB_GRAPH_H_
