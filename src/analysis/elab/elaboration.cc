#include "src/analysis/elab/elaboration.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "src/hdl/simulator.h"

namespace emu::elab {

void Elaboration::PreFlight(Simulator& sim) {
  ran_ = true;
  graph_ = ElabGraph::FromSimulator(sim, design_);
  findings_ = ApplySuppressions(graph_.Check(), suppressions_, &suppressed_);
  if (echo_ && !findings_.empty()) {
    std::ostringstream os;
    FormatFindingsText(os, findings_);
    std::fprintf(stderr, "%s", os.str().c_str());
  }
  if (abort_on_error_ && CountErrors(findings_) > 0) {
    std::fprintf(stderr,
                 "emu: fatal: pre-flight elaboration of design '%s' found %zu error(s)\n",
                 design_.c_str(), CountErrors(findings_));
    std::abort();
  }
}

}  // namespace emu::elab
