#include "src/baseline/reference_switch.h"

#include <cassert>

#include "src/net/ethernet.h"
#include "src/netfpga/dataplane.h"

namespace emu {

ReferenceSwitch::ReferenceSwitch(ReferenceSwitchConfig config) : config_(config) {}

ReferenceSwitch::~ReferenceSwitch() = default;

namespace {

// Hand-written RTL packs the CAM match lines tighter than the IP-block
// wrapper Kiwi instantiates (fitted so the whole core lands at the reference
// switch's 2836 LUTs).
constexpr double kRtlCamLutsPerBit = 0.1835;

ResourceUsage RtlCamResources(usize entries, usize key_bits, usize value_bits) {
  ResourceUsage r = CamIpResources(entries, key_bits, value_bits);
  r.luts = static_cast<u64>(static_cast<double>(entries * key_bits) * kRtlCamLutsPerBit);
  return r;
}

}  // namespace

void ReferenceSwitch::Instantiate(Simulator& sim, Dataplane dp) {
  assert(dp.rx != nullptr && dp.tx != nullptr);
  dp_ = dp;
  cam_ = std::make_unique<Cam>(sim, "ref_mac_cam", config_.table_entries, 48, 8);
  stage_fifo_ = std::make_unique<SyncFifo<Packet>>(sim, "ref_stage", 8, config_.bus_bytes * 8);
  // Two pipeline stages, hand-written control.
  control_resources_ = RtlControlResources(3, config_.bus_bytes * 8) +
                       RtlControlResources(2, config_.bus_bytes * 8) +
                       stage_fifo_->resources();
  sim.AddProcess(LookupAndLearnStage(), "ref_switch_lookup");
  sim.AddProcess(OutputStage(), "ref_switch_output");
}

ResourceUsage ReferenceSwitch::Resources() const {
  ResourceUsage usage = control_resources_;
  usage += RtlCamResources(config_.table_entries, 48, 8);
  return usage;
}

// A hand-written design folds lookup, decide, and learn into one tight
// machine that works while the frame beats stream through.
HwProcess ReferenceSwitch::LookupAndLearnStage() {
  for (;;) {
    co_await WaitUntil(
        [this] { return !dp_.rx->Empty() && stage_fifo_->PollCanPush(); });
    NetFpgaData dataplane;
    dataplane.tdata = dp_.rx->Pop();
    const usize words = WordsForBytes(dataplane.tdata.size(), config_.bus_bytes);
    co_await PauseFor(words);  // frame beats streaming through; CAM overlaps

    EthernetView eth(dataplane.tdata);
    if (eth.Valid()) {
      const CamLookupResult result = cam_->Lookup(eth.destination().ToU48());
      if (result.hit && !eth.destination().IsMulticast()) {
        NetFpga::SetOutputPort(dataplane, result.value);
        ++hits_;
      } else {
        NetFpga::Broadcast(dataplane);
      }
      const MacAddress src = eth.source();
      if (!src.IsMulticast() && !src.IsZero()) {
        const CamLookupResult existing = cam_->Lookup(src.ToU48());
        if (!existing.hit) {
          cam_->Write(free_slot_, src.ToU48(), dataplane.tdata.src_port());
          free_slot_ = (free_slot_ + 1) % config_.table_entries;
          ++learned_;
        } else if (existing.value != dataplane.tdata.src_port()) {
          cam_->Write(existing.index, src.ToU48(), dataplane.tdata.src_port());
        }
      }
    } else {
      NetFpga::Broadcast(dataplane);
    }
    stage_fifo_->Push(std::move(dataplane.tdata));
    co_await Pause();
  }
}

HwProcess ReferenceSwitch::OutputStage() {
  for (;;) {
    co_await WaitUntil(
        [this] { return !stage_fifo_->Empty() && dp_.tx->PollCanPush(); });
    Packet frame = stage_fifo_->Pop();
    co_await Pause();  // output register
    const usize words = WordsForBytes(frame.size(), config_.bus_bytes);
    dp_.tx->Push(std::move(frame));
    co_await PauseFor(words > 1 ? words - 1 : 1);
  }
}

}  // namespace emu
