#include "src/baseline/p4_switch.h"

#include <cassert>

#include "src/net/ethernet.h"
#include "src/netfpga/dataplane.h"

namespace emu {

P4Switch::P4Switch(P4SwitchConfig config) : config_(config) {}

P4Switch::~P4Switch() = default;

void P4Switch::Instantiate(Simulator& sim, Dataplane dp) {
  assert(dp.rx != nullptr && dp.tx != nullptr);
  dp_ = dp;
  sim_ = &sim;
  table_ = std::make_unique<Cam>(sim, "p4_mac_table", config_.table_entries, 48, 8);
  // Generated pipeline: per-port parsers over the full Ethernet+IPv4 header
  // space, generic action units per stage, and a deparser — this is where
  // the order-of-magnitude resource gap of Table 3 comes from.
  const double header_bits = (14 + 20) * 8;
  ResourceUsage parsers;
  parsers.luts = static_cast<u64>(header_bits * kMaParserLutsPerHeaderBit) *
                 static_cast<u64>(config_.parsers);
  parsers.regs = 900 * config_.parsers;
  ResourceUsage stages;
  stages.luts = static_cast<u64>(kMaActionLutsPerStage) * config_.match_stages;
  stages.regs = 700 * config_.match_stages;
  stages.bram_units = 4 * config_.match_stages;  // per-stage table/metadata RAM
  ResourceUsage deparser;
  deparser.luts = static_cast<u64>(kMaDeparserLuts);
  deparser.regs = 1100;
  control_resources_ = parsers + stages + deparser;
  sim.AddProcess(PipelineProcess(), "p4_pipeline");
}

ResourceUsage P4Switch::Resources() const { return control_resources_ + table_->resources(); }

void P4Switch::MatchAction(Packet& frame) {
  NetFpgaData dataplane;
  dataplane.tdata = std::move(frame);
  EthernetView eth(dataplane.tdata);
  if (eth.Valid()) {
    const CamLookupResult result = table_->Lookup(eth.destination().ToU48());
    if (result.hit && !eth.destination().IsMulticast()) {
      NetFpga::SetOutputPort(dataplane, result.value);
      ++hits_;
    } else {
      NetFpga::Broadcast(dataplane);
    }
    // Source learning: in P4 this takes a digest to the control plane which
    // writes the table back; the model applies the write directly but the
    // extra latency is inside pipeline_latency.
    const MacAddress src = eth.source();
    if (!src.IsMulticast() && !src.IsZero()) {
      const CamLookupResult existing = table_->Lookup(src.ToU48());
      if (!existing.hit) {
        table_->Write(free_slot_, src.ToU48(), dataplane.tdata.src_port());
        free_slot_ = (free_slot_ + 1) % config_.table_entries;
        ++learned_;
      }
    }
  } else {
    NetFpga::Broadcast(dataplane);
  }
  frame = std::move(dataplane.tdata);
}

HwProcess P4Switch::PipelineProcess() {
  for (;;) {
    // Fully idle (no frame waiting, nothing in the pipe): park until the
    // next arrival. While frames are in flight the per-edge loop below
    // handles the time-based accept/retire windows exactly.
    if (dp_.rx->Empty() && in_flight_.empty()) {
      co_await WaitUntil([this] { return !dp_.rx->Empty(); });
    }
    // Accept a new frame every initiation interval (the pipeline is deep but
    // fully pipelined).
    if (!dp_.rx->Empty() && static_cast<double>(sim_->now()) >= next_accept_) {
      Packet frame = dp_.rx->Pop();
      MatchAction(frame);
      const usize words = WordsForBytes(frame.size(), config_.bus_bytes);
      const double occupancy =
          std::max(config_.initiation_interval, static_cast<double>(words));
      // Accumulate fractional occupancy so the average accept rate is the
      // true II (resetting to `now` would quantize 4.7 cycles up to 5).
      const double now_d = static_cast<double>(sim_->now());
      if (next_accept_ + occupancy < now_d) {
        next_accept_ = now_d + occupancy;  // pipeline was idle
      } else {
        next_accept_ += occupancy;
      }
      in_flight_.push_back(InFlight{std::move(frame), sim_->now() + config_.pipeline_latency});
    }
    // Retire frames whose pipeline traversal completed.
    while (!in_flight_.empty() && in_flight_.front().ready_at <= sim_->now() &&
           dp_.tx->CanPush()) {
      dp_.tx->Push(std::move(in_flight_.front().frame));
      in_flight_.pop_front();
    }
    co_await Pause();
  }
}

}  // namespace emu
