// P4FPGA-style match-action switch — the DSL baseline of Table 3.
//
// Models the cost structure of a parse-match-action pipeline generated from
// P4: a parser per port (P4FPGA instantiates one per port, §5.3), a chain of
// match-action stages, and a deparser — a deep pipeline (85 cycles at
// 250 MHz in the paper) with a short initiation interval, and roughly an
// order of magnitude more logic than the hand-written or Emu switches.
// Functionally it is the same learning switch (dst-MAC match table, source
// learning via the control-plane digest path the paradigm requires).
#ifndef SRC_BASELINE_P4_SWITCH_H_
#define SRC_BASELINE_P4_SWITCH_H_

#include <deque>
#include <memory>

#include "src/core/service.h"
#include "src/ip/cam.h"
#include "src/netfpga/axis.h"

namespace emu {

struct P4SwitchConfig {
  usize table_entries = 256;
  usize bus_bytes = kDefaultBusBytes;
  usize parsers = kNetFpgaPortCount;  // one per port
  usize match_stages = 4;
  Cycle pipeline_latency = 85;  // parser + stages + deparser registers
  // Fractional to model the generated pipeline's average accept rate
  // (250 MHz / 4.7 ~ 53 Mpps, the paper's P4FPGA figure).
  double initiation_interval = 4.7;
};

class P4Switch : public Service {
 public:
  explicit P4Switch(P4SwitchConfig config = {});
  ~P4Switch() override;

  std::string_view name() const override { return "p4fpga_switch"; }
  void Instantiate(Simulator& sim, Dataplane dp) override;
  ResourceUsage Resources() const override;
  Cycle ModuleLatency() const override { return config_.pipeline_latency; }
  Cycle InitiationInterval() const override {
    return static_cast<Cycle>(config_.initiation_interval + 0.999);
  }

  u64 hits() const { return hits_; }
  u64 learned() const { return learned_; }

 private:
  struct InFlight {
    Packet frame;
    Cycle ready_at;
  };

  HwProcess PipelineProcess();
  void MatchAction(Packet& frame);

  P4SwitchConfig config_;
  Dataplane dp_;
  Simulator* sim_ = nullptr;
  std::unique_ptr<Cam> table_;
  std::deque<InFlight> in_flight_;
  double next_accept_ = 0.0;
  ResourceUsage control_resources_;
  u64 hits_ = 0;
  u64 learned_ = 0;
  usize free_slot_ = 0;
};

}  // namespace emu

#endif  // SRC_BASELINE_P4_SWITCH_H_
