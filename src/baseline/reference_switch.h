// NetFPGA SUME reference learning switch — the hand-written Verilog baseline
// of Table 3.
//
// Functionally identical to services/LearningSwitch, but modelling what a
// human RTL designer produces: a single tightly packed state machine (no
// Kiwi scheduling overhead, RTL-control resource costs, six cycles of module
// latency for minimal frames).
#ifndef SRC_BASELINE_REFERENCE_SWITCH_H_
#define SRC_BASELINE_REFERENCE_SWITCH_H_

#include <memory>

#include "src/core/service.h"
#include "src/ip/cam.h"
#include "src/netfpga/axis.h"

namespace emu {

struct ReferenceSwitchConfig {
  usize table_entries = 256;
  usize bus_bytes = kDefaultBusBytes;
};

class ReferenceSwitch : public Service {
 public:
  explicit ReferenceSwitch(ReferenceSwitchConfig config = {});
  ~ReferenceSwitch() override;

  std::string_view name() const override { return "netfpga_reference_switch"; }
  void Instantiate(Simulator& sim, Dataplane dp) override;
  ResourceUsage Resources() const override;
  Cycle ModuleLatency() const override { return 6; }
  Cycle InitiationInterval() const override { return 2; }

  u64 hits() const { return hits_; }
  u64 learned() const { return learned_; }

 private:
  HwProcess LookupAndLearnStage();
  HwProcess OutputStage();

  ReferenceSwitchConfig config_;
  Dataplane dp_;
  std::unique_ptr<Cam> cam_;
  std::unique_ptr<SyncFifo<Packet>> stage_fifo_;
  ResourceUsage control_resources_;
  u64 hits_ = 0;
  u64 learned_ = 0;
  usize free_slot_ = 0;
};

}  // namespace emu

#endif  // SRC_BASELINE_REFERENCE_SWITCH_H_
