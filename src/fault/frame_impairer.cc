#include "src/fault/frame_impairer.h"

namespace emu {

FrameImpairer::FrameImpairer(FaultRegistry& registry, const std::string& prefix)
    : drop_(registry.Register(prefix + ".drop", FaultClass::kLinkDrop)),
      corrupt_(registry.Register(prefix + ".corrupt", FaultClass::kLinkCorrupt)),
      dup_(registry.Register(prefix + ".dup", FaultClass::kLinkDuplicate)),
      reorder_(registry.Register(prefix + ".reorder", FaultClass::kLinkReorder)),
      delay_(registry.Register(prefix + ".delay", FaultClass::kLinkDelay)) {}

FrameImpairer::Decision FrameImpairer::Decide(u64 tick, usize frame_bytes) {
  Decision decision;
  ++frames_;
  // Drop preempts everything else: a vanished frame cannot also be corrupted.
  // Each point samples only if reached, so disarmed plans draw nothing.
  if (drop_->armed() && drop_->Sample(tick)) {
    decision.drop = true;
    ++dropped_;
    return decision;
  }
  if (corrupt_->armed() && frame_bytes > 0) {
    const u64 bit = corrupt_->NextDetail(static_cast<u64>(frame_bytes) * 8);
    if (corrupt_->Sample(tick, bit)) {
      decision.corrupt_bit = bit;
      ++corrupted_;
    }
  }
  if (dup_->armed() && dup_->Sample(tick)) {
    decision.duplicate = true;
    ++duplicated_;
  }
  if (reorder_->armed() && reorder_->Sample(tick)) {
    decision.reorder = true;
    ++reordered_;
  }
  if (delay_->armed()) {
    const u64 bound = delay_->magnitude() > 0 ? delay_->magnitude() : kDefaultDelayPs;
    const u64 extra = delay_->NextDetail(bound + 1);
    if (delay_->Sample(tick, extra)) {
      decision.extra_delay_ps = extra;
      ++delayed_;
    }
  }
  return decision;
}

void FrameImpairer::FlipBit(Packet& frame, u64 bit) {
  if (frame.empty()) {
    return;
  }
  const usize byte = static_cast<usize>(bit / 8) % frame.size();
  frame[byte] ^= static_cast<u8>(1u << (bit % 8));
}

void FrameImpairer::Truncate(Packet& frame, usize bytes) {
  if (bytes < frame.size()) {
    frame.Resize(bytes);
  }
}

}  // namespace emu
