// FaultRegistry: the runtime half of emu-fault.
//
// Components register named fault points (a Link registers `<name>.drop`,
// `<name>.corrupt`, ...; a ChecksumUnit registers `<name>.fold`; services
// register their own — see Service::RegisterFaultPoints). A registry is
// seeded once; every point derives its own RNG stream from (registry seed,
// point name), so whether a point fires at its N-th opportunity depends only
// on the seed, the plan, and that point's own opportunity sequence — never on
// other points, registration order, or unrelated traffic. That is what makes
// a chaos run replay bit-exactly from `--seed`.
//
// Arming: Arm(pattern, schedule) applies to every matching point, present
// and future (patterns are kept and re-checked at registration). Every
// firing is appended to the injection log with tick, site, and class, so a
// failing run identifies the exact faults that preceded it.
//
// Callback targets: state that cannot poll the registry itself (a bit of
// Bram, a FIFO's stall input) is registered as a callback; Tick(tick)
// samples those points once and applies the callback on fire. The chaos
// harness calls Tick once per simulated cycle.
#ifndef SRC_FAULT_FAULT_REGISTRY_H_
#define SRC_FAULT_FAULT_REGISTRY_H_

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/types.h"
#include "src/fault/fault_plan.h"

namespace emu {

class FaultRegistry;
class MetricsRegistry;

class FaultPoint {
 public:
  FaultPoint(FaultRegistry& registry, std::string name, FaultClass cls, u64 rng_seed)
      : registry_(registry), name_(std::move(name)), cls_(cls), rng_(rng_seed) {}

  FaultPoint(const FaultPoint&) = delete;
  FaultPoint& operator=(const FaultPoint&) = delete;

  const std::string& name() const { return name_; }
  FaultClass cls() const { return cls_; }
  const FaultSchedule& schedule() const { return schedule_; }
  bool armed() const { return schedule_.armed(); }

  u64 opportunities() const { return opportunities_; }
  u64 fired() const { return fired_; }

  // One injection opportunity at `tick`. Returns whether the fault fires;
  // a firing is logged in the owning registry with `detail` drawn by the
  // caller via NextDetail() (0 when the class has no detail).
  bool Sample(u64 tick, u64 detail = 0);

  // Class-specific detail draw (bit index, byte offset, ...) from this
  // point's own stream — uniform in [0, bound). bound must be > 0.
  u64 NextDetail(u64 bound) { return rng_.NextBelow(bound); }

  // Magnitude operand from the armed schedule (stall cycles, max jitter ps).
  u64 magnitude() const { return schedule_.magnitude; }

 private:
  friend class FaultRegistry;

  FaultRegistry& registry_;
  std::string name_;
  FaultClass cls_;
  Rng rng_;
  FaultSchedule schedule_;
  u64 opportunities_ = 0;
  u64 fired_ = 0;
  bool oneshot_done_ = false;
};

class FaultRegistry {
 public:
  explicit FaultRegistry(u64 seed) : seed_(seed) {}

  FaultRegistry(const FaultRegistry&) = delete;
  FaultRegistry& operator=(const FaultRegistry&) = delete;

  u64 seed() const { return seed_; }

  // Registers (or returns the existing) point `name`. Points live as long as
  // the registry; components keep the returned pointer.
  FaultPoint* Register(const std::string& name, FaultClass cls);
  FaultPoint* Find(const std::string& name);

  // Registers state-corruption targets sampled by Tick(): an SEU target is a
  // flipper over `bit_count` bits of some component's state; a stall target
  // receives the armed schedule's magnitude (cycles).
  FaultPoint* RegisterSeuTarget(const std::string& name, u64 bit_count,
                                std::function<void(u64 bit)> flip);
  FaultPoint* RegisterStallTarget(const std::string& name,
                                  std::function<void(u64 cycles)> stall);

  // Samples every armed callback target once at `tick`; applies the
  // callbacks of those that fire. Returns how many fired.
  usize Tick(u64 tick);

  // --- Quiescence support (Simulator fast path) ---
  //
  // Earliest tick >= `tick` at which Tick() must actually execute for the
  // injection log and RNG streams to stay bit-identical to per-tick
  // sampling, or kNeverDemands when no armed callback target needs it.
  // SEU targets (a detail draw per tick) and Bernoulli schedules demand
  // every tick; a oneshot stall target only demands its firing tick and a
  // burst stall target only its window. Disarmed targets never demand
  // (their Tick() is a no-op by construction).
  static constexpr u64 kNeverDemands = ~u64{0};
  u64 NextTickDemand(u64 tick) const;

  // Accounts `count` ticks skipped by a quiescent fast-forward: armed
  // callback targets that did not demand sampling over the window still saw
  // one injection opportunity per tick, so their opportunity counters match
  // per-tick sampling exactly.
  void NoteSkippedTicks(u64 count);

  // Arms every matching point, present and future. Returns how many existing
  // points matched (future registrations also pick the schedule up).
  usize Arm(const std::string& pattern, const FaultSchedule& schedule);
  usize ArmPlan(const FaultPlan& plan);
  void DisarmAll();

  // Tick->picosecond scale for the trace timeline (emu-scope): firings are
  // logged in ticks, but a trace instant needs absolute time. Set by
  // Simulator::AttachFaultRegistry from its clock period; 0 (the default)
  // leaves firings untraced.
  void set_trace_tick_period_ps(Picoseconds period) { trace_tick_period_ps_ = period; }
  Picoseconds trace_tick_period_ps() const { return trace_tick_period_ps_; }

  // Registers fired_total (counter) and points/armed_points (gauges) under
  // `prefix` (e.g. "faults").
  void RegisterMetrics(MetricsRegistry& metrics, const std::string& prefix) const;

  // --- Injection log ---
  // Appends a topology-scoped event (host crash/restart, partition window)
  // to the injection log. These are deterministic — no RNG draw and no fault
  // point — so a ChaosDirector logs the whole campaign up front, in time
  // order, before any shard thread runs; LogDigest then covers node-level
  // chaos without any cross-thread logging at fire time.
  void LogTopoEvent(u64 tick, const std::string& site, FaultClass cls, u64 detail = 0);

  // The raw log in append order. On a run where several shards sample their
  // own points (per-direction link impairment on routed links) the append
  // interleaving is thread-dependent; use CanonicalLog()/LogDigest() for
  // order-independent views. Read after Run() returns.
  const std::vector<FaultEvent>& log() const { return log_; }
  u64 fired_total() const { return log_.size(); }
  // The log sorted by (tick, site, per-site fire ordinal) — a canonical
  // order independent of which thread appended first.
  std::vector<FaultEvent> CanonicalLog() const;
  // FNV-1a over the canonical log: two runs injected identically iff equal,
  // for any thread count.
  u64 LogDigest() const;
  std::string Summary() const;

  const std::vector<std::unique_ptr<FaultPoint>>& points() const { return points_; }

 private:
  friend class FaultPoint;

  struct CallbackTarget {
    FaultPoint* point = nullptr;
    u64 detail_bound = 0;                  // SEU: bits; stall: 0 (uses magnitude)
    std::function<void(u64)> apply;
  };

  void LogFire(const FaultPoint& point, u64 tick, u64 detail);

  u64 seed_;
  std::vector<std::unique_ptr<FaultPoint>> points_;
  std::vector<CallbackTarget> callback_targets_;
  std::vector<FaultPlanEntry> armed_patterns_;  // replayed onto new points
  // Guards log_ appends: points on different shards (per-direction link
  // impairment across a shard cut) fire concurrently. Registration, arming,
  // and every read stay single-threaded around Run() as before.
  mutable std::mutex log_mu_;
  std::vector<FaultEvent> log_;
  u64 topo_seq_ = 0;  // ordinal stream for LogTopoEvent sites
  Picoseconds trace_tick_period_ps_ = 0;
};

}  // namespace emu

#endif  // SRC_FAULT_FAULT_REGISTRY_H_
