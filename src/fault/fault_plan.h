// Fault taxonomy, schedules, and plans for the emu-fault layer.
//
// A FaultClass names what an injection does (drop a frame on a link, flip a
// bit of hardware state, stall a FIFO, ...). A FaultSchedule says *when* a
// registered fault point fires: one-shot at a tick, Bernoulli(p) per
// opportunity, or a burst window with a probability inside it. A FaultPlan is
// a parsed set of (point pattern, schedule) pairs — the text form CI and the
// chaos harness pass around:
//
//   ingress.drop     bernoulli 0.01
//   ingress.corrupt  burst 10000 30000 0.25
//   mc_csum.fold     oneshot 5000
//   nat.*            bernoulli 0.001 8
//
// One entry per line (or ';'-separated), '#' comments, an optional trailing
// magnitude operand (jitter bound in ps, stall length in cycles — whatever
// the fault class reads it as). Patterns match a point name exactly or by
// 'prefix*' wildcard. See fault_registry.h for the runtime half.
//
// Besides point schedules a plan may carry topology-scoped events (emu-gossip):
//
//   crash host=h2 at=500us
//   restart host=h2 at=2ms
//   partition {h0,h1}|{h2,h3} from=1ms to=3ms
//   partition {h0}|{h4} from=5ms to=6ms oneway
//
// These name whole simulated hosts, not fault points: a crash kills the host
// (state reset, in-flight frames to it are disposed), a restart boots it
// back up, and a partition blocks the named host pairs for a window —
// `oneway` blocks only the A→B direction. Times are picoseconds on the
// network-simulator timeline; the `ns`/`us`/`ms`/`s` suffixes scale. The
// events are purely deterministic (no RNG draw), applied by a ChaosDirector
// (src/sim/chaos.h) and logged to the same injection log as point firings.
#ifndef SRC_FAULT_FAULT_PLAN_H_
#define SRC_FAULT_FAULT_PLAN_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"

namespace emu {

enum class FaultClass : u8 {
  kLinkDrop = 0,   // frame vanishes on the wire
  kLinkCorrupt,    // one bit of the frame flips in flight
  kLinkDuplicate,  // the frame is delivered twice
  kLinkReorder,    // the frame is held back so a later one overtakes it
  kLinkDelay,      // extra propagation jitter (magnitude = max extra ps)
  kSeuBitFlip,     // single-event upset in Reg/Bram/Cam state
  kFifoStall,      // a SyncFifo refuses both ends (magnitude = cycles)
  kTableExhaustion,  // a service table behaves as full
  kChecksumFold,     // the §5.5 carry-fold bug in a ChecksumUnit
  kHostCrash,        // a simulated host dies (topology-scoped)
  kHostRestart,      // a crashed host boots back up and rejoins
  kPartition,        // a set of host pairs becomes unreachable for a window
};

inline constexpr usize kFaultClassCount = 12;

const char* FaultClassName(FaultClass cls);

struct FaultSchedule {
  enum class Mode : u8 { kDisabled = 0, kOneShot, kBernoulli, kBurst };

  Mode mode = Mode::kDisabled;
  u64 at = 0;               // one-shot: fires on the first opportunity >= at
  double probability = 0.0;  // Bernoulli / burst: P(fire) per opportunity
  u64 from = 0;             // burst window [from, until)
  u64 until = 0;
  // Class-specific strength: max extra delay in ps (kLinkDelay), stall length
  // in cycles (kFifoStall); ignored by classes without a magnitude.
  u64 magnitude = 0;

  static FaultSchedule OneShot(u64 at) {
    FaultSchedule s;
    s.mode = Mode::kOneShot;
    s.at = at;
    return s;
  }
  static FaultSchedule Bernoulli(double p, u64 magnitude = 0) {
    FaultSchedule s;
    s.mode = Mode::kBernoulli;
    s.probability = p;
    s.magnitude = magnitude;
    return s;
  }
  static FaultSchedule Burst(u64 from, u64 until, double p, u64 magnitude = 0) {
    FaultSchedule s;
    s.mode = Mode::kBurst;
    s.from = from;
    s.until = until;
    s.probability = p;
    s.magnitude = magnitude;
    return s;
  }

  bool armed() const { return mode != Mode::kDisabled; }
  std::string ToString() const;
};

// One logged injection: enough to attribute any downstream failure to the
// exact fault that caused it, and (with the plan + seed) to replay it.
struct FaultEvent {
  u64 tick = 0;       // cycle (hardware points) or ps (link points)
  std::string site;   // fault-point name
  FaultClass cls = FaultClass::kLinkDrop;
  u64 detail = 0;  // class-specific: bit index, extra ps, stall cycles, ...
  // Per-site fire ordinal (1-based). Each site is sampled by exactly one
  // shard in deterministic order, so (tick, site, seq) is a canonical sort
  // key for the whole log even when several shards append concurrently —
  // what keeps LogDigest thread-count independent on impaired routed links.
  u64 seq = 0;

  std::string ToString() const;
};

struct FaultPlanEntry {
  std::string pattern;  // exact name or 'prefix*'
  FaultSchedule schedule;
};

// One topology-scoped event: a host crash/restart at a tick, or a partition
// window over two host groups. Hosts are named, not pattern-matched — the
// lint pass (CheckTopoFaults, src/analysis/elab) validates names against the
// topology so a typo'd host fails before the campaign silently does nothing.
struct TopoFault {
  enum class Kind : u8 { kCrash = 0, kRestart, kPartition };

  Kind kind = Kind::kCrash;
  std::string host;                 // crash/restart subject
  std::vector<std::string> group_a;  // partition sides
  std::vector<std::string> group_b;
  u64 at = 0;                // crash/restart: event time (ps)
  u64 from = 0;              // partition window [from, until) in ps
  u64 until = 0;
  bool oneway = false;       // partition: block only A→B
  usize line = 0;            // plan line, for diagnostics

  FaultClass cls() const {
    switch (kind) {
      case Kind::kCrash: return FaultClass::kHostCrash;
      case Kind::kRestart: return FaultClass::kHostRestart;
      case Kind::kPartition: return FaultClass::kPartition;
    }
    return FaultClass::kHostCrash;
  }

  std::string ToString() const;
};

struct FaultPlan {
  std::vector<FaultPlanEntry> entries;
  std::vector<TopoFault> topo_events;

  bool empty() const { return entries.empty() && topo_events.empty(); }
};

// True when `name` matches `pattern` (exact, or prefix when the pattern ends
// in '*').
bool FaultPatternMatches(const std::string& pattern, const std::string& name);

// Parses the plan text format described above. Entries are separated by
// newlines or ';'; blank entries and '#' comments are skipped.
Expected<FaultPlan> ParseFaultPlan(const std::string& text);

}  // namespace emu

#endif  // SRC_FAULT_FAULT_PLAN_H_
