// FrameImpairer: per-frame link impairment decisions.
//
// Owns the five link-class fault points for one direction of traffic —
// `<prefix>.drop`, `<prefix>.corrupt`, `<prefix>.dup`, `<prefix>.reorder`,
// `<prefix>.delay` — and turns them into a per-frame Decision the carrier
// (a Link, or the chaos harness's ingress tap) executes. The impairer only
// decides; the mechanics (rescheduling, re-sending) stay with the carrier,
// which knows its own timing model.
//
// Corruption is bit-granular: the decision names one bit of the frame to
// flip, drawn from the point's own stream so it replays with the seed.
// Delay jitter is uniform in [0, magnitude] ps (magnitude from the armed
// schedule; a default is used when the plan gives none).
#ifndef SRC_FAULT_FRAME_IMPAIRER_H_
#define SRC_FAULT_FRAME_IMPAIRER_H_

#include <string>

#include "src/fault/fault_registry.h"
#include "src/net/packet.h"

namespace emu {

class FrameImpairer {
 public:
  static constexpr u64 kNoCorrupt = ~0ull;
  // Jitter bound when `<prefix>.delay` is armed without a magnitude: 100 ns.
  static constexpr u64 kDefaultDelayPs = 100'000;

  struct Decision {
    bool drop = false;
    bool duplicate = false;
    bool reorder = false;          // hold back so a later frame overtakes
    u64 corrupt_bit = kNoCorrupt;  // bit index to flip, or kNoCorrupt
    u64 extra_delay_ps = 0;

    bool Impaired() const {
      return drop || duplicate || reorder || corrupt_bit != kNoCorrupt ||
             extra_delay_ps != 0;
    }
  };

  FrameImpairer(FaultRegistry& registry, const std::string& prefix);

  // One frame's worth of sampling at `tick` (ps for links, cycles for the
  // harness tap). `frame_bytes` bounds the corruptible bit range. Updates the
  // per-class counters below.
  Decision Decide(u64 tick, usize frame_bytes);

  // Corruption/truncation mechanics, shared with the robustness fuzzers so
  // "corrupted by the fault layer" means the same thing in tests and soaks.
  static void FlipBit(Packet& frame, u64 bit);
  static void Truncate(Packet& frame, usize bytes);

  u64 frames() const { return frames_; }
  u64 dropped() const { return dropped_; }
  u64 corrupted() const { return corrupted_; }
  u64 duplicated() const { return duplicated_; }
  u64 reordered() const { return reordered_; }
  u64 delayed() const { return delayed_; }

 private:
  FaultPoint* drop_;
  FaultPoint* corrupt_;
  FaultPoint* dup_;
  FaultPoint* reorder_;
  FaultPoint* delay_;
  u64 frames_ = 0;
  u64 dropped_ = 0;
  u64 corrupted_ = 0;
  u64 duplicated_ = 0;
  u64 reordered_ = 0;
  u64 delayed_ = 0;
};

}  // namespace emu

#endif  // SRC_FAULT_FRAME_IMPAIRER_H_
