#include "src/fault/fault_plan.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace emu {
namespace {

constexpr const char* kFaultClassNames[kFaultClassCount] = {
    "LINK_DROP",   "LINK_CORRUPT", "LINK_DUPLICATE",   "LINK_REORDER", "LINK_DELAY",
    "SEU_BITFLIP", "FIFO_STALL",   "TABLE_EXHAUSTION", "CHECKSUM_FOLD",
};

std::vector<std::string> Tokenize(const std::string& entry) {
  std::vector<std::string> tokens;
  std::istringstream in(entry);
  std::string token;
  while (in >> token) {
    if (token[0] == '#') {
      break;  // comment: rest of the entry is ignored
    }
    tokens.push_back(token);
  }
  return tokens;
}

bool ParseU64(const std::string& text, u64& out) {
  char* end = nullptr;
  out = std::strtoull(text.c_str(), &end, 10);
  return end != nullptr && *end == '\0' && !text.empty();
}

bool ParseP(const std::string& text, double& out) {
  char* end = nullptr;
  out = std::strtod(text.c_str(), &end);
  return end != nullptr && *end == '\0' && !text.empty() && out >= 0.0 && out <= 1.0;
}

}  // namespace

const char* FaultClassName(FaultClass cls) {
  return kFaultClassNames[static_cast<usize>(cls)];
}

std::string FaultSchedule::ToString() const {
  char buffer[96];
  switch (mode) {
    case Mode::kDisabled:
      return "disabled";
    case Mode::kOneShot:
      std::snprintf(buffer, sizeof(buffer), "oneshot %llu",
                    static_cast<unsigned long long>(at));
      break;
    case Mode::kBernoulli:
      std::snprintf(buffer, sizeof(buffer), "bernoulli %g", probability);
      break;
    case Mode::kBurst:
      std::snprintf(buffer, sizeof(buffer), "burst %llu %llu %g",
                    static_cast<unsigned long long>(from),
                    static_cast<unsigned long long>(until), probability);
      break;
  }
  std::string text = buffer;
  if (magnitude != 0) {
    std::snprintf(buffer, sizeof(buffer), " %llu",
                  static_cast<unsigned long long>(magnitude));
    text += buffer;
  }
  return text;
}

std::string FaultEvent::ToString() const {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "@%llu ", static_cast<unsigned long long>(tick));
  std::string text = buffer;
  text += FaultClassName(cls);
  text += " [" + site + "]";
  std::snprintf(buffer, sizeof(buffer), " detail=%llu",
                static_cast<unsigned long long>(detail));
  text += buffer;
  return text;
}

bool FaultPatternMatches(const std::string& pattern, const std::string& name) {
  if (!pattern.empty() && pattern.back() == '*') {
    return name.compare(0, pattern.size() - 1, pattern, 0, pattern.size() - 1) == 0;
  }
  return pattern == name;
}

Expected<FaultPlan> ParseFaultPlan(const std::string& text) {
  FaultPlan plan;
  std::string line;
  std::istringstream lines(text);
  usize line_number = 0;
  auto fail = [&](const std::string& what, const std::string& entry) {
    return InvalidArgument("fault plan line " + std::to_string(line_number) + ": " + what +
                           ": " + entry);
  };
  // Split on real newlines first so diagnostics carry the line number, then
  // on ';' within a line (so a plan still fits a single CLI argument; every
  // ';'-separated entry reports the same line).
  while (std::getline(lines, line)) {
    ++line_number;
    std::istringstream entries(line);
    std::string entry;
    while (std::getline(entries, entry, ';')) {
      const std::vector<std::string> tokens = Tokenize(entry);
      if (tokens.empty()) {
        continue;
      }
      if (tokens.size() < 2) {
        return fail("entry needs '<point> <mode> ...'", entry);
      }
      FaultPlanEntry parsed;
      parsed.pattern = tokens[0];
      for (const FaultPlanEntry& existing : plan.entries) {
        if (existing.pattern == parsed.pattern) {
          return fail("duplicate point entry '" + parsed.pattern +
                          "' (one schedule per point; the plans would silently race)",
                      entry);
        }
      }
      const std::string& mode = tokens[1];
      usize next = 2;  // first operand after the mode
      if (mode == "oneshot") {
        if (tokens.size() < 3 || !ParseU64(tokens[2], parsed.schedule.at)) {
          return fail("oneshot needs a tick", entry);
        }
        parsed.schedule.mode = FaultSchedule::Mode::kOneShot;
        next = 3;
      } else if (mode == "bernoulli") {
        if (tokens.size() < 3 || !ParseP(tokens[2], parsed.schedule.probability)) {
          return fail("bernoulli needs a probability in [0,1]", entry);
        }
        parsed.schedule.mode = FaultSchedule::Mode::kBernoulli;
        next = 3;
      } else if (mode == "burst") {
        if (tokens.size() < 5 || !ParseU64(tokens[2], parsed.schedule.from) ||
            !ParseU64(tokens[3], parsed.schedule.until) ||
            !ParseP(tokens[4], parsed.schedule.probability) ||
            parsed.schedule.from >= parsed.schedule.until) {
          return fail("burst needs '<from> <until> <p>' with from < until", entry);
        }
        parsed.schedule.mode = FaultSchedule::Mode::kBurst;
        next = 5;
      } else {
        return fail("unknown schedule mode '" + mode + "'", entry);
      }
      if (tokens.size() > next) {
        if (tokens.size() > next + 1 || !ParseU64(tokens[next], parsed.schedule.magnitude)) {
          return fail("trailing operand must be a single magnitude", entry);
        }
      }
      plan.entries.push_back(std::move(parsed));
    }
  }
  return plan;
}

}  // namespace emu
