#include "src/fault/fault_plan.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

namespace emu {
namespace {

constexpr const char* kFaultClassNames[kFaultClassCount] = {
    "LINK_DROP",   "LINK_CORRUPT", "LINK_DUPLICATE",   "LINK_REORDER",  "LINK_DELAY",
    "SEU_BITFLIP", "FIFO_STALL",   "TABLE_EXHAUSTION", "CHECKSUM_FOLD", "HOST_CRASH",
    "HOST_RESTART", "PARTITION",
};

std::vector<std::string> Tokenize(const std::string& entry) {
  std::vector<std::string> tokens;
  std::istringstream in(entry);
  std::string token;
  while (in >> token) {
    if (token[0] == '#') {
      break;  // comment: rest of the entry is ignored
    }
    tokens.push_back(token);
  }
  return tokens;
}

bool ParseU64(const std::string& text, u64& out) {
  char* end = nullptr;
  out = std::strtoull(text.c_str(), &end, 10);
  return end != nullptr && *end == '\0' && !text.empty();
}

bool ParseP(const std::string& text, double& out) {
  char* end = nullptr;
  out = std::strtod(text.c_str(), &end);
  return end != nullptr && *end == '\0' && !text.empty() && out >= 0.0 && out <= 1.0;
}

// Picosecond time with an optional ns/us/ms/s suffix ("500us", "2ms", plain
// integers are already ps). Topology events live on the network-simulator
// timeline, where raw picosecond literals are unreadably long.
bool ParseTimePs(const std::string& text, u64& out) {
  char* end = nullptr;
  const u64 value = std::strtoull(text.c_str(), &end, 10);
  if (end == nullptr || end == text.c_str()) {
    return false;
  }
  const std::string suffix(end);
  u64 scale = 1;
  if (suffix == "ns") {
    scale = static_cast<u64>(kPicosPerNano);
  } else if (suffix == "us") {
    scale = static_cast<u64>(kPicosPerMicro);
  } else if (suffix == "ms") {
    scale = static_cast<u64>(kPicosPerMilli);
  } else if (suffix == "s") {
    scale = static_cast<u64>(kPicosPerSecond);
  } else if (!suffix.empty()) {
    return false;
  }
  out = value * scale;
  return true;
}

// "key=value" accessor over an operand token; false when `token` does not
// start with `key` followed by '='.
bool KeyValue(const std::string& token, const char* key, std::string& value) {
  const usize key_len = std::strlen(key);
  if (token.size() <= key_len + 1 || token.compare(0, key_len, key) != 0 ||
      token[key_len] != '=') {
    return false;
  }
  value = token.substr(key_len + 1);
  return true;
}

// "{h0,h1}" (braces optional) into its comma-separated member names.
bool ParseGroup(const std::string& text, std::vector<std::string>& out) {
  std::string inner = text;
  if (!inner.empty() && inner.front() == '{') {
    if (inner.back() != '}') {
      return false;
    }
    inner = inner.substr(1, inner.size() - 2);
  }
  std::istringstream members(inner);
  std::string member;
  while (std::getline(members, member, ',')) {
    if (member.empty()) {
      return false;
    }
    out.push_back(member);
  }
  return !out.empty();
}

}  // namespace

const char* FaultClassName(FaultClass cls) {
  return kFaultClassNames[static_cast<usize>(cls)];
}

std::string FaultSchedule::ToString() const {
  char buffer[96];
  switch (mode) {
    case Mode::kDisabled:
      return "disabled";
    case Mode::kOneShot:
      std::snprintf(buffer, sizeof(buffer), "oneshot %llu",
                    static_cast<unsigned long long>(at));
      break;
    case Mode::kBernoulli:
      std::snprintf(buffer, sizeof(buffer), "bernoulli %g", probability);
      break;
    case Mode::kBurst:
      std::snprintf(buffer, sizeof(buffer), "burst %llu %llu %g",
                    static_cast<unsigned long long>(from),
                    static_cast<unsigned long long>(until), probability);
      break;
  }
  std::string text = buffer;
  if (magnitude != 0) {
    std::snprintf(buffer, sizeof(buffer), " %llu",
                  static_cast<unsigned long long>(magnitude));
    text += buffer;
  }
  return text;
}

std::string FaultEvent::ToString() const {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "@%llu ", static_cast<unsigned long long>(tick));
  std::string text = buffer;
  text += FaultClassName(cls);
  text += " [" + site + "]";
  std::snprintf(buffer, sizeof(buffer), " detail=%llu",
                static_cast<unsigned long long>(detail));
  text += buffer;
  return text;
}

std::string TopoFault::ToString() const {
  std::string text;
  const auto join = [](const std::vector<std::string>& group) {
    std::string joined = "{";
    for (usize i = 0; i < group.size(); ++i) {
      joined += (i == 0 ? "" : ",") + group[i];
    }
    return joined + "}";
  };
  switch (kind) {
    case Kind::kCrash:
      text = "crash host=" + host + " at=" + std::to_string(at);
      break;
    case Kind::kRestart:
      text = "restart host=" + host + " at=" + std::to_string(at);
      break;
    case Kind::kPartition:
      text = "partition " + join(group_a) + "|" + join(group_b) +
             " from=" + std::to_string(from) + " to=" + std::to_string(until);
      if (oneway) {
        text += " oneway";
      }
      break;
  }
  return text;
}

bool FaultPatternMatches(const std::string& pattern, const std::string& name) {
  if (!pattern.empty() && pattern.back() == '*') {
    return name.compare(0, pattern.size() - 1, pattern, 0, pattern.size() - 1) == 0;
  }
  return pattern == name;
}

Expected<FaultPlan> ParseFaultPlan(const std::string& text) {
  FaultPlan plan;
  std::string line;
  std::istringstream lines(text);
  usize line_number = 0;
  auto fail = [&](const std::string& what, const std::string& entry) {
    return InvalidArgument("fault plan line " + std::to_string(line_number) + ": " + what +
                           ": " + entry);
  };
  // Split on real newlines first so diagnostics carry the line number, then
  // on ';' within a line (so a plan still fits a single CLI argument; every
  // ';'-separated entry reports the same line).
  while (std::getline(lines, line)) {
    ++line_number;
    std::istringstream entries(line);
    std::string entry;
    while (std::getline(entries, entry, ';')) {
      const std::vector<std::string> tokens = Tokenize(entry);
      if (tokens.empty()) {
        continue;
      }
      if (tokens.size() < 2) {
        return fail("entry needs '<point> <mode> ...'", entry);
      }
      // Topology-scoped events: `crash`/`restart`/`partition` statements.
      if (tokens[0] == "crash" || tokens[0] == "restart") {
        TopoFault topo;
        topo.kind = tokens[0] == "crash" ? TopoFault::Kind::kCrash : TopoFault::Kind::kRestart;
        topo.line = line_number;
        bool have_at = false;
        for (usize i = 1; i < tokens.size(); ++i) {
          std::string value;
          if (KeyValue(tokens[i], "host", value)) {
            topo.host = value;
          } else if (KeyValue(tokens[i], "at", value)) {
            if (!ParseTimePs(value, topo.at)) {
              return fail("bad time operand '" + value + "' (ps, or ns/us/ms/s suffix)", entry);
            }
            have_at = true;
          } else {
            return fail("unknown operand '" + tokens[i] + "' (expected host=<h> at=<t>)", entry);
          }
        }
        if (topo.host.empty() || !have_at) {
          return fail(tokens[0] + " needs 'host=<h> at=<t>'", entry);
        }
        for (const TopoFault& existing : plan.topo_events) {
          if (existing.kind == topo.kind && existing.host == topo.host &&
              existing.at == topo.at) {
            return fail("duplicate " + tokens[0] + " of host '" + topo.host +
                            "' at the same tick",
                        entry);
          }
        }
        plan.topo_events.push_back(std::move(topo));
        continue;
      }
      if (tokens[0] == "partition") {
        TopoFault topo;
        topo.kind = TopoFault::Kind::kPartition;
        topo.line = line_number;
        bool have_from = false;
        bool have_to = false;
        bool have_groups = false;
        for (usize i = 1; i < tokens.size(); ++i) {
          std::string value;
          if (tokens[i] == "oneway") {
            topo.oneway = true;
          } else if (KeyValue(tokens[i], "from", value)) {
            if (!ParseTimePs(value, topo.from)) {
              return fail("bad time operand '" + value + "'", entry);
            }
            have_from = true;
          } else if (KeyValue(tokens[i], "to", value)) {
            if (!ParseTimePs(value, topo.until)) {
              return fail("bad time operand '" + value + "'", entry);
            }
            have_to = true;
          } else if (tokens[i].find('|') != std::string::npos) {
            const usize bar = tokens[i].find('|');
            if (have_groups || !ParseGroup(tokens[i].substr(0, bar), topo.group_a) ||
                !ParseGroup(tokens[i].substr(bar + 1), topo.group_b)) {
              return fail("bad partition groups '" + tokens[i] +
                              "' (expected {a,b}|{c,d}, both sides non-empty)",
                          entry);
            }
            have_groups = true;
          } else {
            return fail("unknown operand '" + tokens[i] +
                            "' (expected {A}|{B} from=<t> to=<t> [oneway])",
                        entry);
          }
        }
        if (!have_groups || !have_from || !have_to) {
          return fail("partition needs '{A}|{B} from=<t> to=<t>'", entry);
        }
        if (topo.from >= topo.until) {
          return fail("partition window needs from < to", entry);
        }
        for (const std::string& a : topo.group_a) {
          for (const std::string& b : topo.group_b) {
            if (a == b) {
              return fail("host '" + a + "' appears on both sides of the partition", entry);
            }
          }
        }
        plan.topo_events.push_back(std::move(topo));
        continue;
      }
      FaultPlanEntry parsed;
      parsed.pattern = tokens[0];
      for (const FaultPlanEntry& existing : plan.entries) {
        if (existing.pattern == parsed.pattern) {
          return fail("duplicate point entry '" + parsed.pattern +
                          "' (one schedule per point; the plans would silently race)",
                      entry);
        }
      }
      const std::string& mode = tokens[1];
      usize next = 2;  // first operand after the mode
      if (mode == "oneshot") {
        if (tokens.size() < 3 || !ParseU64(tokens[2], parsed.schedule.at)) {
          return fail("oneshot needs a tick", entry);
        }
        parsed.schedule.mode = FaultSchedule::Mode::kOneShot;
        next = 3;
      } else if (mode == "bernoulli") {
        if (tokens.size() < 3 || !ParseP(tokens[2], parsed.schedule.probability)) {
          return fail("bernoulli needs a probability in [0,1]", entry);
        }
        parsed.schedule.mode = FaultSchedule::Mode::kBernoulli;
        next = 3;
      } else if (mode == "burst") {
        if (tokens.size() < 5 || !ParseU64(tokens[2], parsed.schedule.from) ||
            !ParseU64(tokens[3], parsed.schedule.until) ||
            !ParseP(tokens[4], parsed.schedule.probability) ||
            parsed.schedule.from >= parsed.schedule.until) {
          return fail("burst needs '<from> <until> <p>' with from < until", entry);
        }
        parsed.schedule.mode = FaultSchedule::Mode::kBurst;
        next = 5;
      } else {
        return fail("unknown schedule mode '" + mode + "'", entry);
      }
      if (tokens.size() > next) {
        if (tokens.size() > next + 1 || !ParseU64(tokens[next], parsed.schedule.magnitude)) {
          return fail("trailing operand must be a single magnitude", entry);
        }
      }
      plan.entries.push_back(std::move(parsed));
    }
  }
  return plan;
}

}  // namespace emu
