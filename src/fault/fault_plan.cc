#include "src/fault/fault_plan.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace emu {
namespace {

constexpr const char* kFaultClassNames[kFaultClassCount] = {
    "LINK_DROP",   "LINK_CORRUPT", "LINK_DUPLICATE",   "LINK_REORDER", "LINK_DELAY",
    "SEU_BITFLIP", "FIFO_STALL",   "TABLE_EXHAUSTION", "CHECKSUM_FOLD",
};

std::vector<std::string> Tokenize(const std::string& entry) {
  std::vector<std::string> tokens;
  std::istringstream in(entry);
  std::string token;
  while (in >> token) {
    if (token[0] == '#') {
      break;  // comment: rest of the entry is ignored
    }
    tokens.push_back(token);
  }
  return tokens;
}

bool ParseU64(const std::string& text, u64& out) {
  char* end = nullptr;
  out = std::strtoull(text.c_str(), &end, 10);
  return end != nullptr && *end == '\0' && !text.empty();
}

bool ParseP(const std::string& text, double& out) {
  char* end = nullptr;
  out = std::strtod(text.c_str(), &end);
  return end != nullptr && *end == '\0' && !text.empty() && out >= 0.0 && out <= 1.0;
}

}  // namespace

const char* FaultClassName(FaultClass cls) {
  return kFaultClassNames[static_cast<usize>(cls)];
}

std::string FaultSchedule::ToString() const {
  char buffer[96];
  switch (mode) {
    case Mode::kDisabled:
      return "disabled";
    case Mode::kOneShot:
      std::snprintf(buffer, sizeof(buffer), "oneshot %llu",
                    static_cast<unsigned long long>(at));
      break;
    case Mode::kBernoulli:
      std::snprintf(buffer, sizeof(buffer), "bernoulli %g", probability);
      break;
    case Mode::kBurst:
      std::snprintf(buffer, sizeof(buffer), "burst %llu %llu %g",
                    static_cast<unsigned long long>(from),
                    static_cast<unsigned long long>(until), probability);
      break;
  }
  std::string text = buffer;
  if (magnitude != 0) {
    std::snprintf(buffer, sizeof(buffer), " %llu",
                  static_cast<unsigned long long>(magnitude));
    text += buffer;
  }
  return text;
}

std::string FaultEvent::ToString() const {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "@%llu ", static_cast<unsigned long long>(tick));
  std::string text = buffer;
  text += FaultClassName(cls);
  text += " [" + site + "]";
  std::snprintf(buffer, sizeof(buffer), " detail=%llu",
                static_cast<unsigned long long>(detail));
  text += buffer;
  return text;
}

bool FaultPatternMatches(const std::string& pattern, const std::string& name) {
  if (!pattern.empty() && pattern.back() == '*') {
    return name.compare(0, pattern.size() - 1, pattern, 0, pattern.size() - 1) == 0;
  }
  return pattern == name;
}

Expected<FaultPlan> ParseFaultPlan(const std::string& text) {
  FaultPlan plan;
  std::string entry;
  // Entries split on newline or ';' so a plan fits a single CLI argument.
  std::string normalized = text;
  for (char& c : normalized) {
    if (c == ';') {
      c = '\n';
    }
  }
  std::istringstream lines(normalized);
  while (std::getline(lines, entry)) {
    const std::vector<std::string> tokens = Tokenize(entry);
    if (tokens.empty()) {
      continue;
    }
    if (tokens.size() < 2) {
      return InvalidArgument("fault plan entry needs '<point> <mode> ...': " + entry);
    }
    FaultPlanEntry parsed;
    parsed.pattern = tokens[0];
    const std::string& mode = tokens[1];
    usize next = 2;  // first operand after the mode
    if (mode == "oneshot") {
      if (tokens.size() < 3 || !ParseU64(tokens[2], parsed.schedule.at)) {
        return InvalidArgument("oneshot needs a tick: " + entry);
      }
      parsed.schedule.mode = FaultSchedule::Mode::kOneShot;
      next = 3;
    } else if (mode == "bernoulli") {
      if (tokens.size() < 3 || !ParseP(tokens[2], parsed.schedule.probability)) {
        return InvalidArgument("bernoulli needs a probability in [0,1]: " + entry);
      }
      parsed.schedule.mode = FaultSchedule::Mode::kBernoulli;
      next = 3;
    } else if (mode == "burst") {
      if (tokens.size() < 5 || !ParseU64(tokens[2], parsed.schedule.from) ||
          !ParseU64(tokens[3], parsed.schedule.until) ||
          !ParseP(tokens[4], parsed.schedule.probability) ||
          parsed.schedule.from >= parsed.schedule.until) {
        return InvalidArgument("burst needs '<from> <until> <p>' with from < until: " +
                               entry);
      }
      parsed.schedule.mode = FaultSchedule::Mode::kBurst;
      next = 5;
    } else {
      return InvalidArgument("unknown schedule mode '" + mode + "': " + entry);
    }
    if (tokens.size() > next) {
      if (tokens.size() > next + 1 || !ParseU64(tokens[next], parsed.schedule.magnitude)) {
        return InvalidArgument("trailing operand must be a single magnitude: " + entry);
      }
    }
    plan.entries.push_back(std::move(parsed));
  }
  return plan;
}

}  // namespace emu
