#include "src/fault/fault_registry.h"

#include <algorithm>
#include <sstream>

#include "src/core/metrics.h"
#include "src/obs/trace_hooks.h"

namespace emu {
namespace {

// FNV-1a, used both to derive per-point RNG seeds and for log digests.
// Deliberately not std::hash: the stream a point draws from must be stable
// across builds and standard libraries for replays to be portable.
constexpr u64 kFnvOffset = 14695981039346656037ull;
constexpr u64 kFnvPrime = 1099511628211ull;

u64 Fnv1a(u64 h, const void* data, usize size) {
  const auto* bytes = static_cast<const u8*>(data);
  for (usize i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= kFnvPrime;
  }
  return h;
}

u64 HashName(const std::string& name) {
  return Fnv1a(kFnvOffset, name.data(), name.size());
}

}  // namespace

bool FaultPoint::Sample(u64 tick, u64 detail) {
  ++opportunities_;
  bool fire = false;
  switch (schedule_.mode) {
    case FaultSchedule::Mode::kDisabled:
      break;
    case FaultSchedule::Mode::kOneShot:
      if (!oneshot_done_ && tick >= schedule_.at) {
        oneshot_done_ = true;
        fire = true;
      }
      break;
    case FaultSchedule::Mode::kBernoulli:
      fire = rng_.NextBool(schedule_.probability);
      break;
    case FaultSchedule::Mode::kBurst:
      if (tick >= schedule_.from && tick < schedule_.until) {
        fire = rng_.NextBool(schedule_.probability);
      }
      break;
  }
  if (fire) {
    ++fired_;
    registry_.LogFire(*this, tick, detail);
  }
  return fire;
}

FaultPoint* FaultRegistry::Register(const std::string& name, FaultClass cls) {
  if (FaultPoint* existing = Find(name)) {
    return existing;
  }
  points_.push_back(
      std::make_unique<FaultPoint>(*this, name, cls, seed_ ^ HashName(name)));
  FaultPoint* point = points_.back().get();
  // A pattern armed before this point existed still applies to it; later
  // entries win so plans read top-to-bottom like overrides.
  for (const FaultPlanEntry& entry : armed_patterns_) {
    if (FaultPatternMatches(entry.pattern, name)) {
      point->schedule_ = entry.schedule;
      point->oneshot_done_ = false;
    }
  }
  return point;
}

FaultPoint* FaultRegistry::Find(const std::string& name) {
  for (const auto& point : points_) {
    if (point->name() == name) {
      return point.get();
    }
  }
  return nullptr;
}

FaultPoint* FaultRegistry::RegisterSeuTarget(const std::string& name, u64 bit_count,
                                             std::function<void(u64 bit)> flip) {
  FaultPoint* point = Register(name, FaultClass::kSeuBitFlip);
  callback_targets_.push_back({point, bit_count, std::move(flip)});
  return point;
}

FaultPoint* FaultRegistry::RegisterStallTarget(const std::string& name,
                                               std::function<void(u64 cycles)> stall) {
  FaultPoint* point = Register(name, FaultClass::kFifoStall);
  callback_targets_.push_back({point, 0, std::move(stall)});
  return point;
}

usize FaultRegistry::Tick(u64 tick) {
  usize fired = 0;
  for (CallbackTarget& target : callback_targets_) {
    FaultPoint& point = *target.point;
    if (!point.armed()) {
      continue;  // disarmed targets draw nothing: bit-identical to no registry
    }
    u64 detail = 0;
    if (target.detail_bound > 0) {
      detail = point.NextDetail(target.detail_bound);
    } else {
      detail = point.magnitude();
    }
    if (point.Sample(tick, detail)) {
      target.apply(detail);
      ++fired;
    }
  }
  return fired;
}

u64 FaultRegistry::NextTickDemand(u64 tick) const {
  u64 demand = kNeverDemands;
  for (const CallbackTarget& target : callback_targets_) {
    const FaultPoint& point = *target.point;
    if (!point.armed()) {
      continue;
    }
    if (target.detail_bound > 0) {
      return tick;  // SEU target: NextDetail is drawn on every tick
    }
    const FaultSchedule& schedule = point.schedule_;
    switch (schedule.mode) {
      case FaultSchedule::Mode::kDisabled:
        break;
      case FaultSchedule::Mode::kOneShot:
        if (!point.oneshot_done_) {
          demand = std::min(demand, std::max(schedule.at, tick));
        }
        break;
      case FaultSchedule::Mode::kBernoulli:
        return tick;  // a NextBool per tick: every tick must sample
      case FaultSchedule::Mode::kBurst:
        if (tick < schedule.until) {
          demand = std::min(demand, std::max(schedule.from, tick));
        }
        break;
    }
  }
  return demand;
}

void FaultRegistry::NoteSkippedTicks(u64 count) {
  for (CallbackTarget& target : callback_targets_) {
    FaultPoint& point = *target.point;
    if (point.armed()) {
      point.opportunities_ += count;
    }
  }
}

usize FaultRegistry::Arm(const std::string& pattern, const FaultSchedule& schedule) {
  usize matched = 0;
  for (const auto& point : points_) {
    if (FaultPatternMatches(pattern, point->name())) {
      point->schedule_ = schedule;
      point->oneshot_done_ = false;
      ++matched;
    }
  }
  armed_patterns_.push_back({pattern, schedule});
  return matched;
}

usize FaultRegistry::ArmPlan(const FaultPlan& plan) {
  usize matched = 0;
  for (const FaultPlanEntry& entry : plan.entries) {
    matched += Arm(entry.pattern, entry.schedule);
  }
  return matched;
}

void FaultRegistry::DisarmAll() {
  armed_patterns_.clear();
  for (const auto& point : points_) {
    point->schedule_ = FaultSchedule{};
    point->oneshot_done_ = false;
  }
}

void FaultRegistry::LogTopoEvent(u64 tick, const std::string& site, FaultClass cls,
                                 u64 detail) {
  // Topo events are logged up front, single-threaded, in time order; the
  // running ordinal preserves that order through the canonical sort.
  std::lock_guard<std::mutex> lock(log_mu_);
  log_.push_back({tick, site, cls, detail, ++topo_seq_});
}

void FaultRegistry::LogFire(const FaultPoint& point, u64 tick, u64 detail) {
  {
    // point.fired() was just incremented by Sample: the 1-based per-site
    // ordinal, deterministic because each point is sampled by one shard.
    std::lock_guard<std::mutex> lock(log_mu_);
    log_.push_back({tick, point.name(), point.cls(), detail, point.fired()});
  }
  // Firings are rare; the per-fire string build is off the hot path.
  if (obs::TraceBuffer* tb = obs::ActiveBuffer(); tb != nullptr && trace_tick_period_ps_ > 0) {
    obs::EmitInstant(tb, "fault." + point.name(),
                     static_cast<Picoseconds>(tick) * trace_tick_period_ps_);
  }
}

void FaultRegistry::RegisterMetrics(MetricsRegistry& metrics, const std::string& prefix) const {
  metrics.Register(prefix + ".fired_total", [this] { return static_cast<u64>(log_.size()); });
  metrics.RegisterGauge(prefix + ".points", [this] { return static_cast<u64>(points_.size()); });
  metrics.RegisterGauge(prefix + ".armed_points", [this] {
    u64 armed = 0;
    for (const auto& point : points_) {
      if (point->armed()) {
        ++armed;
      }
    }
    return armed;
  });
}

std::vector<FaultEvent> FaultRegistry::CanonicalLog() const {
  std::vector<FaultEvent> events;
  {
    std::lock_guard<std::mutex> lock(log_mu_);
    events = log_;
  }
  std::sort(events.begin(), events.end(), [](const FaultEvent& a, const FaultEvent& b) {
    if (a.tick != b.tick) return a.tick < b.tick;
    if (a.site != b.site) return a.site < b.site;
    return a.seq < b.seq;
  });
  return events;
}

u64 FaultRegistry::LogDigest() const {
  u64 h = kFnvOffset;
  for (const FaultEvent& event : CanonicalLog()) {
    h = Fnv1a(h, &event.tick, sizeof(event.tick));
    h = Fnv1a(h, event.site.data(), event.site.size());
    const u8 cls = static_cast<u8>(event.cls);
    h = Fnv1a(h, &cls, sizeof(cls));
    h = Fnv1a(h, &event.detail, sizeof(event.detail));
  }
  return h;
}

std::string FaultRegistry::Summary() const {
  std::ostringstream out;
  out << "fault registry: seed=" << seed_ << " points=" << points_.size()
      << " injections=" << log_.size() << "\n";
  for (const auto& point : points_) {
    if (point->opportunities() == 0 && !point->armed()) {
      continue;
    }
    out << "  " << point->name() << " [" << FaultClassName(point->cls())
        << "] schedule=" << point->schedule().ToString()
        << " opportunities=" << point->opportunities() << " fired=" << point->fired()
        << "\n";
  }
  return out.str();
}

}  // namespace emu
