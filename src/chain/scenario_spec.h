// ScenarioSpec: scenario authoring as data (emu-chain).
//
// A scenario spec is a parseable text format in the style of the fault-plan
// grammar (src/fault/fault_plan.h): one entry per line (or ';'-separated),
// '#' comments, verbatim line-numbered diagnostics. It declares the whole
// simulated world that examples used to wire up by hand — topology shape,
// hosts, per-host service stages, and the chain edges that pipe one stage's
// egress into the next stage's ingress:
//
//   topology hub hosts=6 link_delay=500ns impair=link
//   host client ip=192.168.1.10 mac=0x020000000c01
//   stage filter kind=filter    host=h1 target=fpga queue=16
//   stage nat    kind=nat       host=h2 target=cpu  queue=16
//   stage cache  kind=l1cache   host=h3 target=cpu  queue=32
//   stage pool   kind=memcached host=h4 target=cpu  queue=32 cores=2
//   chain client -> filter -> nat -> cache -> pool
//
// `topology` picks the shape (star | cluster | hub) and link parameters;
// `hosts=N` auto-generates hosts h0..h{N-1} with the cluster-conventional
// MACs/IPs; explicit `host` lines append named hosts. A `stage` places one
// service (built by the stage factory, src/chain/stage_factory.h) on a host
// with a CPU-or-FPGA execution target and a bounded ingress queue — the
// placement knobs. `chain` declares edges between stages; its first element
// may name a host, which becomes the traffic source. `impair=` registers
// per-direction link impairment points (`<prefix>.<host>.up.drop`, ...) so a
// fault plan can impair individual link directions even across shard
// boundaries.
//
// Parsing validates syntax and intra-spec references; the deeper static
// checks (placement onto a crashed-only host, cycles without a queue, ...)
// live in src/chain/chain_lint.h and run under emu_lint as CHAINSPEC.
#ifndef SRC_CHAIN_SCENARIO_SPEC_H_
#define SRC_CHAIN_SCENARIO_SPEC_H_

#include <string>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/net/mac_address.h"

namespace emu {

enum class SpecTopology : u8 {
  kHub = 0,   // N hosts around a HubNode learning switch (chains live here)
  kStar,      // up to 4 hosts around one ServiceNode
  kCluster,   // one ServiceNode per host, side by side
};

const char* SpecTopologyName(SpecTopology shape);

enum class StageTarget : u8 {
  kCpu = 0,  // software semantics (CpuTarget), fixed per-frame service time
  kFpga,     // cycle-accurate NetFPGA pipeline (FpgaTarget)
};

const char* StageTargetName(StageTarget target);

struct SpecHost {
  std::string name;
  MacAddress mac;
  Ipv4Address ip;
  usize line = 0;  // spec line, for diagnostics
};

struct SpecStage {
  std::string name;
  std::string kind;  // stage-factory service kind ("nat", "l1cache", ...)
  std::string host;  // placement: which host runs this stage
  StageTarget target = StageTarget::kCpu;
  usize queue = 16;          // bounded ingress queue depth per direction
  Picoseconds delay = 10 * kPicosPerMicro;  // cpu-target per-frame service time
  // Kind-specific knobs the factory interprets (cores=2, capacity=8192, ...).
  std::vector<std::pair<std::string, std::string>> attrs;
  usize line = 0;
};

struct SpecEdge {
  std::string from;  // stage names; validated at end of parse
  std::string to;
  usize line = 0;
};

struct ScenarioSpec {
  SpecTopology topology = SpecTopology::kHub;
  u64 link_bits_per_second = 10'000'000'000ULL;
  Picoseconds link_delay = 500'000;  // 500 ns, the StarTopologyConfig default
  // When non-empty, every link gets per-direction impairment fault points
  // named `<prefix>.<host>.up.*` / `<prefix>.<host>.down.*`.
  std::string impair_prefix;
  std::string source_host;  // chain traffic source; empty when no chain
  std::vector<SpecHost> hosts;
  std::vector<SpecStage> stages;
  std::vector<SpecEdge> edges;
  usize topology_line = 0;

  // Index by name, or hosts.size() / stages.size() when absent.
  usize FindHost(const std::string& name) const;
  usize FindStage(const std::string& name) const;

  // Downstream / upstream neighbour of `stage` in the edge list, or
  // stages.size() when the stage is a chain endpoint. Linear chains only —
  // BuildScenario rejects anything else.
  usize Downstream(usize stage) const;
  usize Upstream(usize stage) const;
};

// The conventional auto-generated cluster host (also what `hosts=N` expands
// to): "h<i>", MAC 0x02'00'00'00'a0'00 + i, IP 10.0.0.(1+i).
SpecHost AutoHost(usize index);

// Parses a spec; errors carry the exact line: "scenario spec line N: <what>:
// <entry>". All intra-spec references (stage hosts, edge stages, the chain
// source) are validated before returning.
Expected<ScenarioSpec> ParseScenarioSpec(const std::string& text);

}  // namespace emu

#endif  // SRC_CHAIN_SCENARIO_SPEC_H_
