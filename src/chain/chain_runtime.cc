#include "src/chain/chain_runtime.h"

#include <cassert>
#include <utility>

#include "src/core/metrics.h"
#include "src/net/ethernet.h"
#include "src/obs/trace_hooks.h"

namespace emu {
namespace {

constexpr u64 kFnvOffset = 14695981039346656037ull;
constexpr u64 kFnvPrime = 1099511628211ull;

u64 Fnv1aU64(u64 h, u64 value) {
  for (usize i = 0; i < 8; ++i) {
    h ^= (value >> (i * 8)) & 0xff;
    h *= kFnvPrime;
  }
  return h;
}

// FPGA stage run budget per delivery: generous against any in-repo service's
// module latency, small against the simulated network timeline. A frame the
// service consumes without egress (a filter drop) charges the full budget —
// a visible, bounded cost rather than a hang.
constexpr Cycle kFpgaEgressLimit = 200'000;
// Extra cycles run after the first egress so multi-frame bursts (flooded
// masks, miss-forward plus eviction) land in the same delivery.
constexpr Cycle kFpgaDrainCycles = 64;

}  // namespace

ChainStageNode::ChainStageNode(const ChainStageConfig& config)
    : name_(config.name),
      service_(config.service),
      host_(config.host),
      target_(config.target),
      depth_(config.queue_depth),
      cpu_delay_(config.cpu_delay),
      io_(config.service->ChainIo()) {
  assert(service_ != nullptr && host_ != nullptr);
  if (target_ == StageTarget::kCpu) {
    cpu_ = std::make_unique<CpuTarget>(*service_);
  } else {
    fpga_ = std::make_unique<FpgaTarget>(*service_);
  }
}

void ChainStageNode::OnHostFrame(Packet frame) {
  EthernetView ev(frame);
  if (!ev.Valid() || ev.destination() != host_->mac()) {
    ++ignored_;  // hub flood copy of someone else's conversation
    return;
  }
  if (ev.ether_type_raw() == kChainCreditEtherType) {
    const auto payload = ev.Payload();
    OnCredit(ev.source(), payload.empty() ? u8{0xff} : payload[0]);
    return;
  }
  const MacAddress src = ev.source();
  if (src == up_mac_) {
    Enqueue(forward_q_, std::move(frame), /*forward=*/true);
  } else if (!down_mac_.IsZero() && src == down_mac_) {
    Enqueue(reply_q_, std::move(frame), /*forward=*/false);
  } else {
    ++ignored_;
  }
}

void ChainStageNode::OnCredit(MacAddress from, u8 kind) {
  if (kind == kChainCreditForward && !down_mac_.IsZero() && from == down_mac_) {
    ++forward_credits_;
  } else if (kind == kChainCreditReply && from == up_mac_) {
    ++reply_credits_;
  } else {
    ++ignored_;
    return;
  }
  ++credits_received_;
  TryPump();
}

void ChainStageNode::Enqueue(std::deque<Queued>& queue, Packet frame, bool forward) {
  (void)forward;
  if (queue.size() >= depth_) {
    // Under an intact credit protocol this cannot happen; impairment (a lost
    // credit frame, a duplicated data frame) can force it. Count it — the
    // LOSTBACKPRESSURE finding makes the loss loud.
    ++lost_backpressure_;
    return;
  }
  queue.push_back({std::move(frame), host_->scheduler().now()});
  TryPump();
}

void ChainStageNode::TryPump() {
  FlushEgress();
  if (busy_ || !pending_egress_.empty()) {
    return;  // stalled egress holds the stage: backpressure propagates
  }
  // Replies first: draining the return path keeps credits circulating and
  // bounds every frame's round trip.
  if (!reply_q_.empty()) {
    StartService(reply_q_, /*forward=*/false);
  } else if (!forward_q_.empty()) {
    StartService(forward_q_, /*forward=*/true);
  }
}

void ChainStageNode::StartService(std::deque<Queued>& queue, bool forward) {
  Queued entry = std::move(queue.front());
  queue.pop_front();
  const Picoseconds now = host_->scheduler().now();
  if (obs::TraceBuffer* tb = obs::ActiveBuffer()) {
    obs::EmitComplete(tb, "chain." + name_ + ".queue", entry.enqueued, now - entry.enqueued);
  }
  // The slot is free the moment the frame leaves the queue.
  SendCredit(forward ? kChainCreditForward : kChainCreditReply,
             forward ? up_mac_ : down_mac_);
  // Ingress adaptation: address the frame to the identity the service
  // answers to, on the port it expects for this direction of travel.
  Packet frame = std::move(entry.frame);
  EthernetView ev(frame);
  const MacAddress service_mac =
      forward ? io_.forward_mac
              : (io_.reply_to_upstream ? up_mac_ : io_.reply_mac);
  if (!service_mac.IsZero()) {
    ev.set_destination(service_mac);
  }
  const u8 in_port = forward ? io_.forward_in_port : io_.reply_in_port;
  frame.set_src_port(in_port);
  if (forward) {
    ++serviced_forward_;
  } else {
    ++serviced_reply_;
  }
  busy_ = true;
  std::vector<Packet> outputs;
  Picoseconds service_time = 0;
  if (target_ == StageTarget::kCpu) {
    outputs = cpu_->Deliver(std::move(frame));
    service_time = cpu_delay_;
  } else {
    Simulator& fsim = fpga_->sim();
    const Cycle before = fsim.now();
    fpga_->Inject(in_port, std::move(frame));
    fpga_->RunUntilEgress(kFpgaEgressLimit);
    fpga_->Run(kFpgaDrainCycles);
    for (EgressFrame& egress : fpga_->TakeEgress()) {
      egress.frame.set_dst_port_mask(static_cast<u8>(1u << egress.port));
      outputs.push_back(std::move(egress.frame));
    }
    service_time = static_cast<Picoseconds>(fsim.now() - before) * fsim.cycle_period_ps();
  }
  if (obs::TraceBuffer* tb = obs::ActiveBuffer()) {
    obs::EmitComplete(tb, "chain." + name_ + ".service", now, service_time);
  }
  host_->scheduler().After(service_time, [this, outputs = std::move(outputs)]() mutable {
    CompleteService(std::move(outputs));
  });
}

void ChainStageNode::CompleteService(std::vector<Packet> outputs) {
  busy_ = false;
  for (Packet& out : outputs) {
    Route(std::move(out));
  }
  FlushEgress();
  TryPump();
}

void ChainStageNode::Route(Packet frame) {
  const bool downstream = (frame.dst_port_mask() & io_.downstream_mask) != 0;
  if (!downstream && (frame.dst_port_mask() & (1u << io_.forward_in_port)) == 0) {
    // A copy onto a port that is neither chain direction — a learning-switch
    // flood of an unknown MAC. The chain has exactly two neighbors; copies
    // for anyone else stop here.
    ++flood_dropped_;
    return;
  }
  if (downstream && down_mac_.IsZero()) {
    ++misrouted_;  // the tail has nowhere further to send
    return;
  }
  EthernetView ev(frame);
  ev.set_source(host_->mac());
  ev.set_destination(downstream ? down_mac_ : up_mac_);
  pending_egress_.push_back({std::move(frame), downstream});
}

void ChainStageNode::FlushEgress() {
  while (!pending_egress_.empty()) {
    Egress& egress = pending_egress_.front();
    usize& credits = egress.downstream ? forward_credits_ : reply_credits_;
    if (credits == 0) {
      ++egress_stalls_;
      return;
    }
    --credits;
    host_->Send(std::move(egress.frame));
    pending_egress_.pop_front();
  }
}

void ChainStageNode::SendCredit(u8 kind, MacAddress to) {
  const u8 payload[2] = {kind, 1};
  Packet frame = MakeEthernetFrame(to, host_->mac(),
                                   static_cast<EtherType>(kChainCreditEtherType),
                                   std::span<const u8>(payload, 2));
  host_->Send(std::move(frame));
  ++credits_sent_;
}

ChainStageNode& ChainRuntime::AddStage(const ChainStageConfig& config) {
  assert(!wired_ && "add stages before Wire()");
  stages_.push_back(std::make_unique<ChainStageNode>(config));
  return *stages_.back();
}

void ChainRuntime::SetSource(SimHost& source) {
  assert(!wired_);
  source_ = &source;
}

void ChainRuntime::Wire() {
  assert(!wired_ && source_ != nullptr && !stages_.empty());
  for (usize i = 0; i < stages_.size(); ++i) {
    ChainStageNode& stage = *stages_[i];
    stage.up_mac_ = i == 0 ? source_->mac() : stages_[i - 1]->host_->mac();
    stage.down_mac_ = i + 1 < stages_.size() ? stages_[i + 1]->host_->mac() : MacAddress{};
    stage.forward_credits_ = i + 1 < stages_.size() ? stages_[i + 1]->depth_ : 0;
    // The source consumes replies instantly and returns the credit on the
    // spot, so the head's reply capacity is its own depth.
    stage.reply_credits_ = i == 0 ? stage.depth_ : stages_[i - 1]->depth_;
    ChainStageNode* node = &stage;
    stage.host_->SetApp([node](SimHost&, Packet frame) { node->OnHostFrame(std::move(frame)); });
  }
  source_credits_ = stages_.front()->depth_;
  source_->SetApp([this](SimHost&, Packet frame) {
    EthernetView ev(frame);
    if (!ev.Valid() || ev.destination() != source_->mac()) {
      ++source_ignored_;
      return;
    }
    const MacAddress head = stages_.front()->host_->mac();
    if (ev.ether_type_raw() == kChainCreditEtherType) {
      const auto payload = ev.Payload();
      if (!payload.empty() && payload[0] == kChainCreditForward && ev.source() == head) {
        ++source_credits_;
      } else {
        ++source_ignored_;
      }
      return;
    }
    if (ev.source() != head) {
      ++source_ignored_;
      return;
    }
    ++source_replies_;
    const u8 payload[2] = {kChainCreditReply, 1};
    Packet credit = MakeEthernetFrame(head, source_->mac(),
                                      static_cast<EtherType>(kChainCreditEtherType),
                                      std::span<const u8>(payload, 2));
    source_->Send(std::move(credit));
    if (on_reply_) {
      on_reply_(std::move(frame));
    }
  });
  wired_ = true;
}

bool ChainRuntime::SourceSend(Packet frame) {
  assert(wired_ && "Wire() the chain before sending");
  if (source_credits_ == 0) {
    ++source_shed_;  // overload surfaces here, never mid-chain
    return false;
  }
  --source_credits_;
  EthernetView ev(frame);
  ev.set_source(source_->mac());
  ev.set_destination(stages_.front()->host_->mac());
  source_->Send(std::move(frame));
  return true;
}

ChainStageNode* ChainRuntime::FindStage(const std::string& name) {
  for (const auto& stage : stages_) {
    if (stage->name() == name) {
      return stage.get();
    }
  }
  return nullptr;
}

void ChainRuntime::CollectFindings(std::vector<Finding>& findings) const {
  for (const auto& stage : stages_) {
    if (stage->lost_backpressure() > 0) {
      findings.push_back(Finding{
          "LOSTBACKPRESSURE", Severity::kError, "chain", stage->name(),
          "stage dropped " + std::to_string(stage->lost_backpressure()) +
              " frame(s) at a full queue (depth " + std::to_string(stage->depth_) +
              "): credit protocol violated, likely by link impairment"});
    }
    if (stage->misrouted() > 0) {
      findings.push_back(Finding{
          "CHAINMISROUTE", Severity::kError, "chain", stage->name(),
          "stage emitted " + std::to_string(stage->misrouted()) +
              " frame(s) downstream of the chain tail"});
    }
  }
}

u64 ChainRuntime::Digest() const {
  u64 h = kFnvOffset;
  for (const auto& stage : stages_) {
    h = Fnv1aU64(h, stage->serviced_forward());
    h = Fnv1aU64(h, stage->serviced_reply());
    h = Fnv1aU64(h, stage->lost_backpressure());
    h = Fnv1aU64(h, stage->misrouted());
    h = Fnv1aU64(h, stage->flood_dropped());
    h = Fnv1aU64(h, stage->credits_sent());
    h = Fnv1aU64(h, stage->credits_received());
    h = Fnv1aU64(h, stage->host().sent());
    h = Fnv1aU64(h, stage->host().received());
  }
  h = Fnv1aU64(h, source_shed_);
  h = Fnv1aU64(h, source_replies_);
  return h;
}

void ChainRuntime::RegisterMetrics(MetricsRegistry& metrics, const std::string& prefix) const {
  for (const auto& stage : stages_) {
    const std::string base = prefix + "." + stage->name();
    metrics.Register(base + ".serviced_forward", &stage->serviced_forward_);
    metrics.Register(base + ".serviced_reply", &stage->serviced_reply_);
    metrics.Register(base + ".lost_backpressure", &stage->lost_backpressure_);
    metrics.Register(base + ".ignored", &stage->ignored_);
    metrics.Register(base + ".flood_dropped", &stage->flood_dropped_);
    metrics.Register(base + ".credits_sent", &stage->credits_sent_);
    metrics.Register(base + ".credits_received", &stage->credits_received_);
    metrics.Register(base + ".egress_stalls", &stage->egress_stalls_);
  }
  metrics.Register(prefix + ".source_shed", &source_shed_);
  metrics.Register(prefix + ".source_replies", &source_replies_);
}

}  // namespace emu
