// Stage service factory (emu-chain): one place that maps a ScenarioSpec
// stage kind to a constructed Emu service with the repo's canonical
// configuration, plus per-stage attribute overrides from the spec line.
//
// Kinds: filter, nat, l1cache, memcached, icmp_echo, tcp_ping, dns. The
// canonical configs are exported so harnesses that build traffic against a
// stage (chaos_soak's frame factories, chain_soak's memaslap workload) read
// the addresses from the same source that configured the service — there is
// exactly one definition of "the NAT's internal subnet" in the repo.
#ifndef SRC_CHAIN_STAGE_FACTORY_H_
#define SRC_CHAIN_STAGE_FACTORY_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/core/service.h"
#include "src/services/dns_service.h"
#include "src/services/icmp_echo_service.h"
#include "src/services/memcached_service.h"
#include "src/services/nat_service.h"
#include "src/services/tcp_ping_service.h"

namespace emu {

using StageAttrs = std::vector<std::pair<std::string, std::string>>;

// True when `kind` names a constructible stage service.
bool KnownStageKind(const std::string& kind);
// Every known kind, for diagnostics.
const std::vector<std::string>& StageKinds();

// Canonical configurations (the chaos_soak / Table 4 setups).
IcmpEchoConfig CanonicalIcmpEchoConfig();
TcpPingConfig CanonicalTcpPingConfig();
DnsServiceConfig CanonicalDnsConfig();
NatConfig CanonicalNatConfig();
MemcachedConfig CanonicalMemcachedConfig();
// The §5.4 L1 tier: l1_cache_mode on, misses forwarded out `host_port` 2.
MemcachedConfig CanonicalL1CacheConfig();

// Constructs the service for `kind` with canonical config plus overrides:
//   nat:        max_mappings=N evict_idle=CYCLES timeout=CYCLES
//   memcached / l1cache: capacity=N cores=N (l1cache also host_port=N)
//   dns:        records=N (svc<i>.lab -> 10.1.0.<1+i>)
//   filter:     default=accept|drop drop_dst_port=N (adds a UDP drop rule)
//   icmp_echo / tcp_ping: no attributes
// Unknown kinds and unknown or malformed attributes are InvalidArgument.
Expected<std::unique_ptr<Service>> MakeStageService(const std::string& kind,
                                                    const StageAttrs& attrs);

}  // namespace emu

#endif  // SRC_CHAIN_STAGE_FACTORY_H_
