#include "src/chain/scenario_build.h"

#include "src/chain/stage_factory.h"
#include "src/fault/fault_registry.h"

namespace emu {

Expected<std::vector<usize>> LinearChainOrder(const ScenarioSpec& spec) {
  if (spec.edges.empty()) {
    return std::vector<usize>{};
  }
  if (spec.source_host.empty()) {
    return InvalidArgument("scenario spec: chain has no source host (start the chain "
                           "line with a host name)");
  }
  std::vector<usize> out_degree(spec.stages.size(), 0);
  std::vector<usize> in_degree(spec.stages.size(), 0);
  for (const SpecEdge& edge : spec.edges) {
    const usize from = spec.FindStage(edge.from);
    const usize to = spec.FindStage(edge.to);
    if (++out_degree[from] > 1) {
      return InvalidArgument("scenario spec line " + std::to_string(edge.line) +
                             ": stage '" + edge.from + "' has multiple downstream edges");
    }
    if (++in_degree[to] > 1) {
      return InvalidArgument("scenario spec line " + std::to_string(edge.line) +
                             ": stage '" + edge.to + "' has multiple upstream edges");
    }
  }
  usize head = spec.stages.size();
  usize chained = 0;
  for (usize i = 0; i < spec.stages.size(); ++i) {
    if (in_degree[i] + out_degree[i] == 0) {
      continue;  // standalone stage, not on the chain
    }
    ++chained;
    if (in_degree[i] == 0) {
      if (head != spec.stages.size()) {
        return InvalidArgument("scenario spec: disjoint chains (both '" +
                               spec.stages[head].name + "' and '" + spec.stages[i].name +
                               "' are chain heads)");
      }
      head = i;
    }
  }
  if (head == spec.stages.size()) {
    return InvalidArgument("scenario spec: chain edges form a cycle");
  }
  std::vector<usize> order;
  for (usize at = head; at != spec.stages.size(); at = spec.Downstream(at)) {
    order.push_back(at);
    if (order.size() > chained) {
      return InvalidArgument("scenario spec: chain edges form a cycle");
    }
  }
  if (order.size() != chained) {
    return InvalidArgument("scenario spec: disjoint chains (only " +
                           std::to_string(order.size()) + " of " + std::to_string(chained) +
                           " chained stages reachable from '" + spec.stages[head].name +
                           "')");
  }
  return order;
}

Expected<std::unique_ptr<Scenario>> BuildScenario(const ScenarioSpec& spec,
                                                  FaultRegistry* registry) {
  if (!spec.impair_prefix.empty() && registry == nullptr) {
    return InvalidArgument("scenario spec sets impair=" + spec.impair_prefix +
                           " but no FaultRegistry was provided");
  }
  const Expected<std::vector<usize>> order = LinearChainOrder(spec);
  if (!order.ok()) {
    return order.status();
  }
  if (!order->empty() && spec.topology != SpecTopology::kHub) {
    return InvalidArgument("scenario spec: chain lines require topology hub, not " +
                           std::string(SpecTopologyName(spec.topology)));
  }
  for (const usize i : *order) {
    if (spec.stages[i].queue == 0) {
      return InvalidArgument("scenario spec line " + std::to_string(spec.stages[i].line) +
                             ": chained stage '" + spec.stages[i].name +
                             "' has queue=0 and admits no traffic");
    }
  }
  switch (spec.topology) {
    case SpecTopology::kHub:
      break;
    case SpecTopology::kStar:
      if (spec.stages.size() != 1) {
        return InvalidArgument("scenario spec: topology star wants exactly 1 stage, got " +
                               std::to_string(spec.stages.size()));
      }
      if (spec.hosts.size() > kNetFpgaPortCount) {
        return InvalidArgument("scenario spec: topology star supports at most " +
                               std::to_string(kNetFpgaPortCount) + " hosts");
      }
      break;
    case SpecTopology::kCluster:
      if (spec.stages.size() != spec.hosts.size()) {
        return InvalidArgument("scenario spec: topology cluster wants one stage per host (" +
                               std::to_string(spec.stages.size()) + " stages, " +
                               std::to_string(spec.hosts.size()) + " hosts)");
      }
      break;
  }
  // Two chained stages on one host would be indistinguishable at ingress
  // (direction is classified by neighbour host MAC).
  for (usize a = 0; a + 1 < order->size(); ++a) {
    for (usize b = a + 1; b < order->size(); ++b) {
      if (spec.stages[(*order)[a]].host == spec.stages[(*order)[b]].host) {
        return InvalidArgument("scenario spec line " +
                               std::to_string(spec.stages[(*order)[b]].line) +
                               ": stages '" + spec.stages[(*order)[a]].name + "' and '" +
                               spec.stages[(*order)[b]].name + "' share host '" +
                               spec.stages[(*order)[b]].host + "'");
      }
    }
  }

  auto scenario = std::make_unique<Scenario>();
  scenario->spec = spec;
  StarTopologyConfig link_config;
  link_config.link_bits_per_second = spec.link_bits_per_second;
  link_config.link_delay = spec.link_delay;

  // Services first: construction errors should not leave a half-built world.
  for (const SpecStage& stage : spec.stages) {
    Expected<std::unique_ptr<Service>> service = MakeStageService(stage.kind, stage.attrs);
    if (!service.ok()) {
      return Status(service.status().code(),
                    "scenario spec line " + std::to_string(stage.line) + ": stage '" +
                        stage.name + "': " + service.status().message());
    }
    scenario->services.push_back(std::move(*service));
  }

  TopologyBuilder& topo = scenario->topology;
  switch (spec.topology) {
    case SpecTopology::kHub: {
      HubNode& hub = topo.AddHub(spec.hosts.size());
      for (usize i = 0; i < spec.hosts.size(); ++i) {
        SimHost& host = topo.AddHost({spec.hosts[i].name, spec.hosts[i].mac, spec.hosts[i].ip});
        topo.LinkHostToHub(host, hub, i, link_config);
      }
      break;
    }
    case SpecTopology::kStar: {
      ServiceNode& node = topo.AddServiceNode(*scenario->services[0]);
      for (usize i = 0; i < spec.hosts.size(); ++i) {
        SimHost& host = topo.AddHost({spec.hosts[i].name, spec.hosts[i].mac, spec.hosts[i].ip});
        topo.LinkHostToNode(host, node, static_cast<u8>(i), link_config);
      }
      break;
    }
    case SpecTopology::kCluster: {
      for (usize i = 0; i < spec.hosts.size(); ++i) {
        ServiceNode& node = topo.AddServiceNode(*scenario->services[i]);
        SimHost& host = topo.AddHost({spec.hosts[i].name, spec.hosts[i].mac, spec.hosts[i].ip});
        topo.LinkHostToNode(host, node, /*port=*/0, link_config);
      }
      break;
    }
  }
  if (!spec.impair_prefix.empty()) {
    for (usize i = 0; i < topo.host_count(); ++i) {
      topo.EnableLinkImpairment(*topo.uplink(i), *registry,
                                spec.impair_prefix + "." + spec.hosts[i].name);
    }
  }

  if (!order->empty()) {
    scenario->has_chain = true;
    scenario->source_host = topo.FindHost(spec.source_host);
    for (const usize i : *order) {
      const SpecStage& stage = spec.stages[i];
      ChainStageConfig config;
      config.name = stage.name;
      config.service = scenario->services[i].get();
      config.host = &topo.host(topo.FindHost(stage.host));
      config.target = stage.target;
      config.queue_depth = stage.queue;
      config.cpu_delay = stage.delay;
      scenario->chain.AddStage(config);
    }
    scenario->chain.SetSource(topo.host(scenario->source_host));
    scenario->chain.Wire();
  }
  return scenario;
}

Expected<std::unique_ptr<Scenario>> BuildScenarioFromText(const std::string& text,
                                                          FaultRegistry* registry) {
  const Expected<ScenarioSpec> spec = ParseScenarioSpec(text);
  if (!spec.ok()) {
    return spec.status();
  }
  return BuildScenario(*spec, registry);
}

}  // namespace emu
