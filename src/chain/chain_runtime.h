// ChainRuntime (emu-chain): composes Emu services into an in-network compute
// pipeline across simulated hosts.
//
// Each stage is a Service placed on its own SimHost (CPU or FPGA target —
// the paper's §3.3 portability applied per stage) behind two bounded ingress
// queues: a forward queue fed by the upstream neighbor and a reply queue fed
// by the downstream one. Flow between neighbors is credit-based: a sender
// holds one credit per slot of the receiving queue, decrements on send, and
// stalls its own egress (which in turn stops it draining its queues —
// backpressure propagates hop by hop) when it runs out; the receiver returns
// a credit control frame on the real link when it dequeues. The traffic
// source sheds instead of stalling, so end-to-end overload surfaces as
// `source_shed`, never as silent mid-chain loss. A frame that nevertheless
// arrives at a full queue (credit frames lost to impairment, duplicated data
// frames) is dropped AND counted as lost backpressure, which
// CollectFindings() reports through the standard LOSTBACKPRESSURE analysis
// check — the invariant the soak gates on.
//
// Transport: the runtime owns the outer Ethernet header. At egress it stamps
// src MAC = this stage's host, dst MAC = the neighbor stage's host, so a
// learning hub sees exactly one MAC per port; at ingress it classifies
// direction by the source MAC (upstream host -> forward, downstream host ->
// reply), then rewrites the destination MAC to the identity the service
// answers to and stamps the service's expected ingress port — both taken
// from the service's ChainStageIo (src/core/service.h). Inner IP/UDP
// semantics (NAT translation, memcached keys) pass through untouched.
//
// Observability: every dequeue emits a "chain.<stage>.queue" complete span
// (enqueue -> dequeue wait) and every delivery a "chain.<stage>.service"
// span onto the stage's shard TraceBuffer — the per-stage latency
// decomposition (Table 4 shape) falls out of the trace via obs::Decompose.
// All per-stage state is touched only on the stage host's scheduler, so a
// chain run stays bit-exact for any ParallelRunner thread count.
#ifndef SRC_CHAIN_CHAIN_RUNTIME_H_
#define SRC_CHAIN_CHAIN_RUNTIME_H_

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/analysis/finding.h"
#include "src/chain/scenario_spec.h"
#include "src/core/targets.h"
#include "src/sim/sim_host.h"

namespace emu {

class MetricsRegistry;

// Credit-return control frames travel as plain Ethernet frames with this
// (unassigned) EtherType; payload byte 0 is the credit kind.
inline constexpr u16 kChainCreditEtherType = 0xC4A1;
inline constexpr u8 kChainCreditForward = 0;  // a forward-queue slot freed
inline constexpr u8 kChainCreditReply = 1;    // a reply-queue slot freed

struct ChainStageConfig {
  std::string name;
  Service* service = nullptr;  // not owned; must outlive the runtime
  SimHost* host = nullptr;     // the stage's placement; one stage per host
  StageTarget target = StageTarget::kCpu;
  usize queue_depth = 16;  // per-direction bounded ingress queue
  // CpuTarget per-frame service time on the network timeline (the FPGA
  // target charges its own measured cycles instead).
  Picoseconds cpu_delay = 10 * kPicosPerMicro;
};

class ChainStageNode {
 public:
  ChainStageNode(const ChainStageConfig& config);

  ChainStageNode(const ChainStageNode&) = delete;
  ChainStageNode& operator=(const ChainStageNode&) = delete;

  const std::string& name() const { return name_; }
  SimHost& host() { return *host_; }

  // --- Counters (read after Run(), as with all sim counters) ---
  u64 serviced_forward() const { return serviced_forward_; }
  u64 serviced_reply() const { return serviced_reply_; }
  // Frames dropped because they arrived at a full queue: lost backpressure.
  u64 lost_backpressure() const { return lost_backpressure_; }
  // Frames not for this stage (hub flood copies, unknown senders).
  u64 ignored() const { return ignored_; }
  // Egress frames whose mask pointed downstream of the chain tail.
  u64 misrouted() const { return misrouted_; }
  // Learning-switch flood copies onto ports that are neither chain direction.
  u64 flood_dropped() const { return flood_dropped_; }
  u64 credits_sent() const { return credits_sent_; }
  u64 credits_received() const { return credits_received_; }
  // Times egress blocked on zero credits (backpressure engaged).
  u64 egress_stalls() const { return egress_stalls_; }
  usize forward_queue_depth() const { return forward_q_.size(); }
  usize reply_queue_depth() const { return reply_q_.size(); }

 private:
  friend class ChainRuntime;

  struct Queued {
    Packet frame;
    Picoseconds enqueued = 0;
  };
  struct Egress {
    Packet frame;
    bool downstream = false;
  };

  void OnHostFrame(Packet frame);
  void OnCredit(MacAddress from, u8 kind);
  void Enqueue(std::deque<Queued>& queue, Packet frame, bool forward);
  void TryPump();
  void StartService(std::deque<Queued>& queue, bool forward);
  void CompleteService(std::vector<Packet> outputs);
  void Route(Packet frame);
  void FlushEgress();
  void SendCredit(u8 kind, MacAddress to);

  std::string name_;
  Service* service_;
  SimHost* host_;
  StageTarget target_;
  usize depth_;
  Picoseconds cpu_delay_;
  ChainStageIo io_;
  std::unique_ptr<CpuTarget> cpu_;
  std::unique_ptr<FpgaTarget> fpga_;

  MacAddress up_mac_;    // zero on the head's source side only when unwired
  MacAddress down_mac_;  // zero on the tail
  std::deque<Queued> forward_q_;
  std::deque<Queued> reply_q_;
  std::deque<Egress> pending_egress_;
  usize forward_credits_ = 0;  // free slots in the downstream forward queue
  usize reply_credits_ = 0;    // free slots in the upstream reply queue
  bool busy_ = false;

  u64 serviced_forward_ = 0;
  u64 serviced_reply_ = 0;
  u64 lost_backpressure_ = 0;
  u64 ignored_ = 0;
  u64 misrouted_ = 0;
  u64 flood_dropped_ = 0;
  u64 credits_sent_ = 0;
  u64 credits_received_ = 0;
  u64 egress_stalls_ = 0;
};

// Head-to-tail composition of stages plus the source endpoint. Build with
// AddStage() in chain order, SetSource(), then Wire() once; after Run() the
// counters, findings, and digest describe the whole pipeline.
class ChainRuntime {
 public:
  ChainRuntime() = default;
  ChainRuntime(const ChainRuntime&) = delete;
  ChainRuntime& operator=(const ChainRuntime&) = delete;

  ChainStageNode& AddStage(const ChainStageConfig& config);
  // The traffic source host (not a stage): SourceSend() feeds the head stage
  // from here, and replies emerging from the head are handed to the handler.
  void SetSource(SimHost& source);
  void SetSourceReplyHandler(std::function<void(Packet)> handler) {
    on_reply_ = std::move(handler);
  }
  // Installs apps, neighbor MACs, and initial credits. Call once, after all
  // stages and the source are set.
  void Wire();

  // Sends `frame` from the source into the head stage; returns false (and
  // counts a shed) when the source holds no credits — the source never
  // contributes to mid-chain loss, it backs off.
  bool SourceSend(Packet frame);

  usize stage_count() const { return stages_.size(); }
  ChainStageNode& stage(usize i) { return *stages_[i]; }
  ChainStageNode* FindStage(const std::string& name);
  SimHost* source() { return source_; }

  u64 source_shed() const { return source_shed_; }
  u64 source_replies() const { return source_replies_; }

  // Appends a LOSTBACKPRESSURE finding per stage that dropped at a full
  // queue, and a CHAINMISROUTE finding per stage that emitted past the tail.
  void CollectFindings(std::vector<Finding>& findings) const;

  // FNV-1a over every stage's counters in chain order plus the source
  // counters: equal digests mean the pipeline processed identically
  // (threads=1 vs threads=4 vs replay).
  u64 Digest() const;

  // Registers per-stage counters as `<prefix>.<stage>.<counter>`.
  void RegisterMetrics(MetricsRegistry& metrics, const std::string& prefix) const;

 private:
  std::vector<std::unique_ptr<ChainStageNode>> stages_;
  SimHost* source_ = nullptr;
  std::function<void(Packet)> on_reply_;
  bool wired_ = false;
  usize source_credits_ = 0;
  u64 source_shed_ = 0;
  u64 source_replies_ = 0;
  u64 source_ignored_ = 0;
};

}  // namespace emu

#endif  // SRC_CHAIN_CHAIN_RUNTIME_H_
