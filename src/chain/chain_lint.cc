#include "src/chain/chain_lint.h"

#include "src/chain/scenario_build.h"
#include "src/chain/stage_factory.h"
#include "src/fault/fault_plan.h"

namespace emu {
namespace {

constexpr const char* kCheck = "CHAINSPEC";

Finding Error(const std::string& design, const std::string& subject,
              const std::string& message) {
  return Finding{kCheck, Severity::kError, design, subject, message};
}

Finding Warning(const std::string& design, const std::string& subject,
                const std::string& message) {
  return Finding{kCheck, Severity::kWarning, design, subject, message};
}

}  // namespace

std::vector<Finding> CheckChainSpec(const ScenarioSpec& spec,
                                    const std::string& design,
                                    const FaultPlan* plan) {
  std::vector<Finding> findings;

  // Per-stage kind validity (the parser only checks syntax).
  for (const SpecStage& stage : spec.stages) {
    if (!KnownStageKind(stage.kind)) {
      findings.push_back(Error(design, stage.name,
                               "line " + std::to_string(stage.line) +
                                   ": unknown stage kind '" + stage.kind + "'"));
    }
  }

  // Chain shape: linearity, source, topology, queueing, placement.
  const Expected<std::vector<usize>> order = LinearChainOrder(spec);
  if (!order.ok()) {
    findings.push_back(Error(design, "chain", order.status().message()));
    return findings;  // shape checks below assume a linear order
  }
  if (!order->empty() && spec.topology != SpecTopology::kHub) {
    findings.push_back(Error(design, "chain",
                             std::string("chain lines require topology hub, not ") +
                                 SpecTopologyName(spec.topology)));
  }

  std::vector<bool> chained(spec.stages.size(), false);
  for (const usize i : *order) {
    chained[i] = true;
  }
  for (const usize i : *order) {
    const SpecStage& stage = spec.stages[i];
    if (stage.queue == 0) {
      findings.push_back(Error(design, stage.name,
                               "line " + std::to_string(stage.line) +
                                   ": chained stage has queue=0 and admits no traffic"));
    }
    for (const usize j : *order) {
      if (j <= i || spec.stages[j].host != stage.host) {
        continue;
      }
      findings.push_back(Error(design, spec.stages[j].name,
                               "line " + std::to_string(spec.stages[j].line) +
                                   ": chained stages '" + stage.name + "' and '" +
                                   spec.stages[j].name + "' share host '" +
                                   stage.host + "'"));
    }
  }
  for (usize i = 0; i < spec.stages.size(); ++i) {
    if (!chained[i] && !spec.edges.empty()) {
      findings.push_back(Warning(design, spec.stages[i].name,
                                 "line " + std::to_string(spec.stages[i].line) +
                                     ": stage is on no chain edge (dead configuration)"));
    }
  }

  // Placement vs fault plan: a chained stage on a host the plan crashes and
  // never restarts goes dark for the rest of the campaign.
  if (plan != nullptr && !order->empty()) {
    for (const usize i : *order) {
      const SpecStage& stage = spec.stages[i];
      u64 last_crash = 0;
      bool crashed = false;
      bool restarted_after = false;
      for (const TopoFault& tf : plan->topo_events) {
        if (tf.host != stage.host) {
          continue;
        }
        if (tf.kind == TopoFault::Kind::kCrash && (!crashed || tf.at >= last_crash)) {
          crashed = true;
          last_crash = tf.at;
          restarted_after = false;
        } else if (tf.kind == TopoFault::Kind::kRestart && crashed && tf.at >= last_crash) {
          restarted_after = true;
        }
      }
      if (crashed && !restarted_after) {
        findings.push_back(Error(design, stage.name,
                                 "line " + std::to_string(stage.line) + ": host '" +
                                     stage.host + "' is crashed by the fault plan at " +
                                     std::to_string(last_crash) +
                                     "ps and never restarted; the chain goes dark"));
      }
    }
    const usize src = spec.FindHost(spec.source_host);
    if (src < spec.hosts.size()) {
      for (const TopoFault& tf : plan->topo_events) {
        if (tf.kind == TopoFault::Kind::kCrash && tf.host == spec.source_host) {
          findings.push_back(Warning(design, spec.source_host,
                                     "fault plan crashes the chain source host at " +
                                         std::to_string(tf.at) + "ps"));
          break;
        }
      }
    }
  }
  return findings;
}

std::vector<Finding> CheckChainSpecText(const std::string& text,
                                        const std::string& design,
                                        const FaultPlan* plan) {
  const Expected<ScenarioSpec> spec = ParseScenarioSpec(text);
  if (!spec.ok()) {
    return {Error(design, "parse", spec.status().message())};
  }
  return CheckChainSpec(*spec, design, plan);
}

}  // namespace emu
