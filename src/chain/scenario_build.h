// BuildScenario (emu-chain): turns a parsed ScenarioSpec into a live
// simulated world — the topology (via TopologyBuilder), the stage services
// (via the stage factory), and, when the spec declares chain edges, a wired
// ChainRuntime ready for SourceSend().
//
// Shapes:
//   hub     — every host on a hub port; stages placed on their named hosts
//             as chain nodes. The only shape that supports `chain` lines.
//   star    — exactly one stage: its service becomes the single ServiceNode,
//             all hosts around it (the classic soak shape).
//   cluster — one stage per host, in declaration order: stage i's service
//             node pairs with host i (the Table 4 side-by-side shape).
//
// When the spec sets `impair=<prefix>`, every host uplink gets per-direction
// impairment points `<prefix>.<host>.up.*` / `<prefix>.<host>.down.*`
// registered in the caller's FaultRegistry — composing link impairment with
// cross-shard routing (the per-direction Link contract).
#ifndef SRC_CHAIN_SCENARIO_BUILD_H_
#define SRC_CHAIN_SCENARIO_BUILD_H_

#include <memory>
#include <vector>

#include "src/chain/chain_runtime.h"
#include "src/chain/scenario_spec.h"
#include "src/common/status.h"
#include "src/sim/topology.h"

namespace emu {

class FaultRegistry;

struct Scenario {
  ScenarioSpec spec;
  TopologyBuilder topology{TopologyBuilder::Mode::kSharded};
  // Stage services in spec.stages order; the runtime holds raw pointers.
  std::vector<std::unique_ptr<Service>> services;
  ChainRuntime chain;       // wired iff has_chain
  bool has_chain = false;
  usize source_host = 0;    // topology host index of the chain source

  // Convenience: run the whole world to quiescence (or the event budget).
  u64 Run(const ParallelRunOptions& opts = {}) { return topology.Run(opts); }
};

// Validates chain shape (linear, sourced, queued) beyond what the parser
// checks, then builds. `registry` is required when spec.impair_prefix is set
// (InvalidArgument otherwise) and unused otherwise.
Expected<std::unique_ptr<Scenario>> BuildScenario(const ScenarioSpec& spec,
                                                  FaultRegistry* registry = nullptr);

// Parses then builds; parse diagnostics pass through verbatim.
Expected<std::unique_ptr<Scenario>> BuildScenarioFromText(const std::string& text,
                                                          FaultRegistry* registry = nullptr);

// The linear chain order as stage indices (head first), or InvalidArgument
// describing the violation (branch, cycle, disjoint chains, missing source).
// Exposed for chain_lint, which reports the same violations as findings.
Expected<std::vector<usize>> LinearChainOrder(const ScenarioSpec& spec);

}  // namespace emu

#endif  // SRC_CHAIN_SCENARIO_BUILD_H_
