#include "src/chain/stage_factory.h"

#include <cstdlib>

#include "src/services/l3l4_filter.h"

namespace emu {
namespace {

const std::string* FindAttr(const StageAttrs& attrs, const std::string& key) {
  for (const auto& [k, v] : attrs) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

Status ParseU64Attr(const StageAttrs& attrs, const std::string& key, u64* out) {
  const std::string* value = FindAttr(attrs, key);
  if (value == nullptr) {
    return Status::Ok();
  }
  char* end = nullptr;
  const u64 parsed = std::strtoull(value->c_str(), &end, 10);
  if (end == value->c_str() || *end != '\0') {
    return InvalidArgument("stage attribute " + key + "=" + *value + ": not a number");
  }
  *out = parsed;
  return Status::Ok();
}

Status CheckAttrs(const StageAttrs& attrs, std::initializer_list<const char*> known) {
  for (const auto& [key, value] : attrs) {
    bool ok = false;
    for (const char* k : known) {
      if (key == k) {
        ok = true;
        break;
      }
    }
    if (!ok) {
      return InvalidArgument("unknown stage attribute: " + key + "=" + value);
    }
  }
  return Status::Ok();
}

}  // namespace

const std::vector<std::string>& StageKinds() {
  static const std::vector<std::string> kinds = {
      "filter", "nat", "l1cache", "memcached", "icmp_echo", "tcp_ping", "dns"};
  return kinds;
}

bool KnownStageKind(const std::string& kind) {
  for (const std::string& k : StageKinds()) {
    if (k == kind) {
      return true;
    }
  }
  return false;
}

IcmpEchoConfig CanonicalIcmpEchoConfig() { return IcmpEchoConfig{}; }
TcpPingConfig CanonicalTcpPingConfig() { return TcpPingConfig{}; }
DnsServiceConfig CanonicalDnsConfig() { return DnsServiceConfig{}; }
NatConfig CanonicalNatConfig() { return NatConfig{}; }
MemcachedConfig CanonicalMemcachedConfig() { return MemcachedConfig{}; }

MemcachedConfig CanonicalL1CacheConfig() {
  MemcachedConfig config;
  config.l1_cache_mode = true;
  config.host_port = 2;
  return config;
}

Expected<std::unique_ptr<Service>> MakeStageService(const std::string& kind,
                                                    const StageAttrs& attrs) {
  if (kind == "filter") {
    if (Status s = CheckAttrs(attrs, {"default", "drop_dst_port"}); !s.ok()) {
      return s;
    }
    L3L4FilterConfig config;
    if (const std::string* def = FindAttr(attrs, "default")) {
      if (*def == "drop") {
        config.default_action = FilterRule::Action::kDrop;
      } else if (*def == "accept") {
        config.default_action = FilterRule::Action::kAccept;
      } else {
        return InvalidArgument("filter default=" + *def + ": want accept|drop");
      }
    }
    u64 drop_port = 0;
    if (Status s = ParseU64Attr(attrs, "drop_dst_port", &drop_port); !s.ok()) {
      return s;
    }
    if (drop_port != 0) {
      FilterRule rule;
      rule.action = FilterRule::Action::kDrop;
      rule.protocol = IpProtocol::kUdp;
      rule.dst_ports = {static_cast<u16>(drop_port), static_cast<u16>(drop_port)};
      config.rules.push_back(rule);
    }
    return std::unique_ptr<Service>(std::make_unique<L3L4Filter>(config));
  }
  if (kind == "nat") {
    if (Status s = CheckAttrs(attrs, {"max_mappings", "evict_idle", "timeout"}); !s.ok()) {
      return s;
    }
    NatConfig config = CanonicalNatConfig();
    u64 max_mappings = config.max_mappings;
    u64 evict_idle = config.exhaustion_evict_idle_cycles;
    u64 timeout = config.mapping_timeout_cycles;
    if (Status s = ParseU64Attr(attrs, "max_mappings", &max_mappings); !s.ok()) return s;
    if (Status s = ParseU64Attr(attrs, "evict_idle", &evict_idle); !s.ok()) return s;
    if (Status s = ParseU64Attr(attrs, "timeout", &timeout); !s.ok()) return s;
    config.max_mappings = max_mappings;
    config.exhaustion_evict_idle_cycles = evict_idle;
    config.mapping_timeout_cycles = timeout;
    return std::unique_ptr<Service>(std::make_unique<NatService>(config));
  }
  if (kind == "l1cache" || kind == "memcached") {
    const bool l1 = kind == "l1cache";
    if (l1) {
      if (Status s = CheckAttrs(attrs, {"capacity", "cores", "host_port"}); !s.ok()) {
        return s;
      }
    } else {
      if (Status s = CheckAttrs(attrs, {"capacity", "cores"}); !s.ok()) {
        return s;
      }
    }
    MemcachedConfig config = l1 ? CanonicalL1CacheConfig() : CanonicalMemcachedConfig();
    u64 capacity = config.capacity;
    u64 cores = config.cores;
    u64 host_port = config.host_port;
    if (Status s = ParseU64Attr(attrs, "capacity", &capacity); !s.ok()) return s;
    if (Status s = ParseU64Attr(attrs, "cores", &cores); !s.ok()) return s;
    if (Status s = ParseU64Attr(attrs, "host_port", &host_port); !s.ok()) return s;
    if (host_port > 3) {
      return InvalidArgument("l1cache host_port=" + std::to_string(host_port) +
                             ": NetFPGA has ports 0-3");
    }
    config.capacity = capacity;
    config.cores = cores;
    config.host_port = static_cast<u8>(host_port);
    return std::unique_ptr<Service>(std::make_unique<MemcachedService>(config));
  }
  if (kind == "icmp_echo") {
    if (Status s = CheckAttrs(attrs, {}); !s.ok()) {
      return s;
    }
    return std::unique_ptr<Service>(std::make_unique<IcmpEchoService>(CanonicalIcmpEchoConfig()));
  }
  if (kind == "tcp_ping") {
    if (Status s = CheckAttrs(attrs, {}); !s.ok()) {
      return s;
    }
    return std::unique_ptr<Service>(std::make_unique<TcpPingService>(CanonicalTcpPingConfig()));
  }
  if (kind == "dns") {
    if (Status s = CheckAttrs(attrs, {"records"}); !s.ok()) {
      return s;
    }
    u64 records = 4;
    if (Status s = ParseU64Attr(attrs, "records", &records); !s.ok()) {
      return s;
    }
    if (records > 200) {
      return InvalidArgument("dns records=" + std::to_string(records) + ": max 200");
    }
    auto service = std::make_unique<DnsService>(CanonicalDnsConfig());
    for (usize i = 0; i < records; ++i) {
      service->AddRecord("svc" + std::to_string(i) + ".lab",
                         Ipv4Address(10, 1, 0, static_cast<u8>(1 + i)));
    }
    return std::unique_ptr<Service>(std::move(service));
  }
  std::string known;
  for (const std::string& k : StageKinds()) {
    known += (known.empty() ? "" : " ") + k;
  }
  return InvalidArgument("unknown stage kind '" + kind + "' (known: " + known + ")");
}

}  // namespace emu
