// CHAINSPEC: static checks over a ScenarioSpec, in the emu-lint mold — the
// spec is data, so most chain mistakes are visible before a single simulated
// picosecond elapses. Checks:
//
//   - parse errors (text entry point), surfaced verbatim as error findings
//   - chain lines on a non-hub topology
//   - a chain with no source host
//   - non-linear chains: branches, cycles, disjoint segments
//   - a chained stage with queue=0 (admits no traffic)
//   - two chained stages placed on the same host (ingress cannot classify)
//   - a stage declared but on no chain edge (warning — dead configuration)
//   - with a fault plan: a chained stage placed on a host the plan crashes
//     and never restarts (the chain goes dark mid-campaign)
//
// Wired into emu_lint behind --spec; exit codes follow the shared contract
// in src/analysis/finding.h.
#ifndef SRC_CHAIN_CHAIN_LINT_H_
#define SRC_CHAIN_CHAIN_LINT_H_

#include <string>
#include <vector>

#include "src/analysis/finding.h"
#include "src/chain/scenario_spec.h"

namespace emu {

struct FaultPlan;

// Checks a parsed spec. `design` labels the findings (usually the spec file
// name); `plan` enables the placement-vs-crash check when non-null.
std::vector<Finding> CheckChainSpec(const ScenarioSpec& spec,
                                    const std::string& design,
                                    const FaultPlan* plan = nullptr);

// Parses then checks; a parse failure becomes a single CHAINSPEC error
// finding carrying the parser's verbatim line-numbered message.
std::vector<Finding> CheckChainSpecText(const std::string& text,
                                        const std::string& design,
                                        const FaultPlan* plan = nullptr);

}  // namespace emu

#endif  // SRC_CHAIN_CHAIN_LINT_H_
