#include "src/chain/scenario_spec.h"

#include <cstdlib>
#include <cstring>
#include <sstream>

namespace emu {
namespace {

std::vector<std::string> Tokenize(const std::string& entry) {
  std::vector<std::string> tokens;
  std::istringstream in(entry);
  std::string token;
  while (in >> token) {
    if (token[0] == '#') {
      break;  // comment: rest of the entry is ignored
    }
    tokens.push_back(token);
  }
  return tokens;
}

bool ParseU64(const std::string& text, u64& out) {
  char* end = nullptr;
  out = std::strtoull(text.c_str(), &end, 10);
  return end != nullptr && *end == '\0' && !text.empty();
}

// Picosecond time with an optional ns/us/ms/s suffix, as in fault plans.
bool ParseTimePs(const std::string& text, u64& out) {
  char* end = nullptr;
  const u64 value = std::strtoull(text.c_str(), &end, 10);
  if (end == nullptr || end == text.c_str()) {
    return false;
  }
  const std::string suffix(end);
  u64 scale = 1;
  if (suffix == "ns") {
    scale = static_cast<u64>(kPicosPerNano);
  } else if (suffix == "us") {
    scale = static_cast<u64>(kPicosPerMicro);
  } else if (suffix == "ms") {
    scale = static_cast<u64>(kPicosPerMilli);
  } else if (suffix == "s") {
    scale = static_cast<u64>(kPicosPerSecond);
  } else if (!suffix.empty()) {
    return false;
  }
  out = value * scale;
  return true;
}

// Bit rate with an optional K/M/G suffix ("10G" = 10^10 bits/s).
bool ParseRate(const std::string& text, u64& out) {
  char* end = nullptr;
  const u64 value = std::strtoull(text.c_str(), &end, 10);
  if (end == nullptr || end == text.c_str()) {
    return false;
  }
  const std::string suffix(end);
  u64 scale = 1;
  if (suffix == "K" || suffix == "k") {
    scale = 1'000ULL;
  } else if (suffix == "M") {
    scale = 1'000'000ULL;
  } else if (suffix == "G") {
    scale = 1'000'000'000ULL;
  } else if (!suffix.empty()) {
    return false;
  }
  out = value * scale;
  return out > 0;
}

bool ParseMac(const std::string& text, MacAddress& out) {
  if (text.size() < 3 || text[0] != '0' || (text[1] != 'x' && text[1] != 'X')) {
    return false;
  }
  char* end = nullptr;
  const u64 value = std::strtoull(text.c_str() + 2, &end, 16);
  if (end == nullptr || *end != '\0' || value > 0xffff'ffff'ffffULL) {
    return false;
  }
  out = MacAddress::FromU48(value);
  return true;
}

bool ParseIp(const std::string& text, Ipv4Address& out) {
  u32 parts[4];
  usize part = 0;
  u64 acc = 0;
  bool have_digit = false;
  for (const char c : text) {
    if (c == '.') {
      if (!have_digit || part >= 3) {
        return false;
      }
      parts[part++] = static_cast<u32>(acc);
      acc = 0;
      have_digit = false;
    } else if (c >= '0' && c <= '9') {
      acc = acc * 10 + static_cast<u64>(c - '0');
      if (acc > 255) {
        return false;
      }
      have_digit = true;
    } else {
      return false;
    }
  }
  if (!have_digit || part != 3) {
    return false;
  }
  parts[3] = static_cast<u32>(acc);
  out = Ipv4Address(static_cast<u8>(parts[0]), static_cast<u8>(parts[1]),
                    static_cast<u8>(parts[2]), static_cast<u8>(parts[3]));
  return true;
}

// "key=value" accessor over an operand token, as in the fault-plan parser.
bool KeyValue(const std::string& token, const char* key, std::string& value) {
  const usize key_len = std::strlen(key);
  if (token.size() <= key_len + 1 || token.compare(0, key_len, key) != 0 ||
      token[key_len] != '=') {
    return false;
  }
  value = token.substr(key_len + 1);
  return true;
}

bool IsKeyValue(const std::string& token, std::string& key, std::string& value) {
  const usize eq = token.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 >= token.size()) {
    return false;
  }
  key = token.substr(0, eq);
  value = token.substr(eq + 1);
  return true;
}

}  // namespace

const char* SpecTopologyName(SpecTopology shape) {
  switch (shape) {
    case SpecTopology::kHub: return "hub";
    case SpecTopology::kStar: return "star";
    case SpecTopology::kCluster: return "cluster";
  }
  return "?";
}

const char* StageTargetName(StageTarget target) {
  return target == StageTarget::kFpga ? "fpga" : "cpu";
}

usize ScenarioSpec::FindHost(const std::string& name) const {
  for (usize i = 0; i < hosts.size(); ++i) {
    if (hosts[i].name == name) {
      return i;
    }
  }
  return hosts.size();
}

usize ScenarioSpec::FindStage(const std::string& name) const {
  for (usize i = 0; i < stages.size(); ++i) {
    if (stages[i].name == name) {
      return i;
    }
  }
  return stages.size();
}

usize ScenarioSpec::Downstream(usize stage) const {
  if (stage < stages.size()) {
    for (const SpecEdge& edge : edges) {
      if (edge.from == stages[stage].name) {
        return FindStage(edge.to);
      }
    }
  }
  return stages.size();
}

usize ScenarioSpec::Upstream(usize stage) const {
  if (stage < stages.size()) {
    for (const SpecEdge& edge : edges) {
      if (edge.to == stages[stage].name) {
        return FindStage(edge.from);
      }
    }
  }
  return stages.size();
}

SpecHost AutoHost(usize index) {
  return SpecHost{"h" + std::to_string(index),
                  MacAddress::FromU48(0x02'00'00'00'a0'00ULL + index),
                  Ipv4Address(10, 0, 0, static_cast<u8>(1 + index)), 0};
}

Expected<ScenarioSpec> ParseScenarioSpec(const std::string& text) {
  ScenarioSpec spec;
  std::vector<std::pair<std::vector<std::string>, usize>> chain_lines;
  bool saw_topology = false;

  const auto fail = [](usize line, const std::string& what, const std::string& entry) {
    return InvalidArgument("scenario spec line " + std::to_string(line) + ": " + what +
                           ": " + entry);
  };

  usize line_number = 0;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    ++line_number;
    // Comments run to end of line; strip before splitting on ';' so a
    // semicolon inside a comment does not start a phantom entry.
    const usize hash = line.find('#');
    if (hash != std::string::npos) {
      line.resize(hash);
    }
    std::istringstream entries(line);
    std::string entry;
    while (std::getline(entries, entry, ';')) {
      const std::vector<std::string> tokens = Tokenize(entry);
      if (tokens.empty()) {
        continue;
      }
      const std::string& kw = tokens[0];
      if (kw == "topology") {
        if (saw_topology) {
          return fail(line_number, "duplicate topology line", entry);
        }
        saw_topology = true;
        spec.topology_line = line_number;
        if (tokens.size() < 2) {
          return fail(line_number, "topology needs a shape (hub|star|cluster)", entry);
        }
        if (tokens[1] == "hub") {
          spec.topology = SpecTopology::kHub;
        } else if (tokens[1] == "star") {
          spec.topology = SpecTopology::kStar;
        } else if (tokens[1] == "cluster") {
          spec.topology = SpecTopology::kCluster;
        } else {
          return fail(line_number, "unknown topology shape '" + tokens[1] + "'", entry);
        }
        for (usize i = 2; i < tokens.size(); ++i) {
          std::string value;
          u64 number = 0;
          if (KeyValue(tokens[i], "hosts", value)) {
            if (!ParseU64(value, number) || number == 0 || number > 64) {
              return fail(line_number, "bad hosts count '" + value + "'", entry);
            }
            for (usize h = 0; h < number; ++h) {
              SpecHost host = AutoHost(h);
              host.line = line_number;
              if (spec.FindHost(host.name) != spec.hosts.size()) {
                return fail(line_number, "duplicate host '" + host.name + "'", entry);
              }
              spec.hosts.push_back(std::move(host));
            }
          } else if (KeyValue(tokens[i], "link_rate", value)) {
            if (!ParseRate(value, spec.link_bits_per_second)) {
              return fail(line_number, "bad link_rate '" + value + "'", entry);
            }
          } else if (KeyValue(tokens[i], "link_delay", value)) {
            u64 delay = 0;
            if (!ParseTimePs(value, delay) || delay == 0) {
              return fail(line_number, "bad link_delay '" + value + "'", entry);
            }
            spec.link_delay = static_cast<Picoseconds>(delay);
          } else if (KeyValue(tokens[i], "impair", value)) {
            spec.impair_prefix = value;
          } else {
            return fail(line_number, "unknown topology operand '" + tokens[i] + "'", entry);
          }
        }
      } else if (kw == "host") {
        if (tokens.size() < 2) {
          return fail(line_number, "host needs a name", entry);
        }
        SpecHost host;
        host.name = tokens[1];
        host.line = line_number;
        if (spec.FindHost(host.name) != spec.hosts.size()) {
          return fail(line_number, "duplicate host '" + host.name + "'", entry);
        }
        // Defaults follow the auto-host convention at this host's index.
        const SpecHost defaults = AutoHost(spec.hosts.size());
        host.mac = defaults.mac;
        host.ip = defaults.ip;
        for (usize i = 2; i < tokens.size(); ++i) {
          std::string value;
          if (KeyValue(tokens[i], "mac", value)) {
            if (!ParseMac(value, host.mac)) {
              return fail(line_number, "bad mac '" + value + "'", entry);
            }
          } else if (KeyValue(tokens[i], "ip", value)) {
            if (!ParseIp(value, host.ip)) {
              return fail(line_number, "bad ip '" + value + "'", entry);
            }
          } else {
            return fail(line_number, "unknown host operand '" + tokens[i] + "'", entry);
          }
        }
        spec.hosts.push_back(std::move(host));
      } else if (kw == "stage") {
        if (tokens.size() < 2) {
          return fail(line_number, "stage needs a name", entry);
        }
        SpecStage stage;
        stage.name = tokens[1];
        stage.line = line_number;
        if (spec.FindStage(stage.name) != spec.stages.size()) {
          return fail(line_number, "duplicate stage '" + stage.name + "'", entry);
        }
        for (usize i = 2; i < tokens.size(); ++i) {
          std::string value;
          u64 number = 0;
          if (KeyValue(tokens[i], "kind", value)) {
            stage.kind = value;
          } else if (KeyValue(tokens[i], "host", value)) {
            stage.host = value;
          } else if (KeyValue(tokens[i], "target", value)) {
            if (value == "cpu") {
              stage.target = StageTarget::kCpu;
            } else if (value == "fpga") {
              stage.target = StageTarget::kFpga;
            } else {
              return fail(line_number, "bad target '" + value + "' (cpu|fpga)", entry);
            }
          } else if (KeyValue(tokens[i], "queue", value)) {
            if (!ParseU64(value, number) || number > 4096) {
              return fail(line_number, "bad queue depth '" + value + "'", entry);
            }
            stage.queue = number;
          } else if (KeyValue(tokens[i], "delay", value)) {
            if (!ParseTimePs(value, number)) {
              return fail(line_number, "bad delay '" + value + "'", entry);
            }
            stage.delay = static_cast<Picoseconds>(number);
          } else {
            std::string key;
            if (!IsKeyValue(tokens[i], key, value)) {
              return fail(line_number, "unknown stage operand '" + tokens[i] + "'", entry);
            }
            stage.attrs.emplace_back(key, value);  // factory-interpreted knob
          }
        }
        if (stage.kind.empty()) {
          return fail(line_number, "stage needs kind=", entry);
        }
        spec.stages.push_back(std::move(stage));
      } else if (kw == "chain") {
        if (tokens.size() < 2) {
          return fail(line_number, "chain needs stages", entry);
        }
        // Elements alternate names and "->"; validated against declared
        // stages/hosts once the whole spec is read.
        std::vector<std::string> elements;
        for (usize i = 1; i < tokens.size(); ++i) {
          if (i % 2 == 0) {
            if (tokens[i] != "->") {
              return fail(line_number, "expected '->' between chain elements", entry);
            }
          } else {
            elements.push_back(tokens[i]);
          }
        }
        if (tokens.size() % 2 != 0) {
          return fail(line_number, "chain ends with a dangling '->'", entry);
        }
        if (elements.size() < 2) {
          return fail(line_number, "chain needs at least two elements", entry);
        }
        chain_lines.emplace_back(std::move(elements), line_number);
      } else {
        return fail(line_number, "unknown keyword '" + kw + "'", entry);
      }
    }
  }

  if (!saw_topology) {
    return InvalidArgument("scenario spec: missing topology line");
  }

  // Resolve chain elements now that every host and stage is declared: the
  // first element may name a host (the traffic source); everything else must
  // be a stage.
  for (auto& [elements, chain_line] : chain_lines) {
    usize first_stage = 0;
    if (spec.FindStage(elements[0]) == spec.stages.size()) {
      if (spec.FindHost(elements[0]) == spec.hosts.size()) {
        return fail(chain_line, "unknown chain element '" + elements[0] + "'",
                    elements[0]);
      }
      if (!spec.source_host.empty() && spec.source_host != elements[0]) {
        return fail(chain_line, "conflicting chain sources", elements[0]);
      }
      spec.source_host = elements[0];
      first_stage = 1;
      if (elements.size() - first_stage < 1) {
        return fail(chain_line, "chain needs a stage after the source host",
                    elements[0]);
      }
    }
    for (usize i = first_stage; i + 1 < elements.size(); ++i) {
      spec.edges.push_back(SpecEdge{elements[i], elements[i + 1], chain_line});
    }
  }

  // Intra-spec reference checks with the declaring line in the diagnostic.
  for (const SpecStage& stage : spec.stages) {
    if (spec.topology == SpecTopology::kHub && stage.host.empty()) {
      return fail(stage.line, "stage '" + stage.name + "' needs host= on a hub topology",
                  stage.name);
    }
    if (!stage.host.empty() && spec.FindHost(stage.host) == spec.hosts.size()) {
      return fail(stage.line, "stage '" + stage.name + "' placed on unknown host '" +
                                  stage.host + "'",
                  stage.name);
    }
  }
  for (const SpecEdge& edge : spec.edges) {
    for (const std::string* name : {&edge.from, &edge.to}) {
      if (spec.FindStage(*name) == spec.stages.size()) {
        return fail(edge.line, "chain references unknown stage '" + *name + "'", *name);
      }
    }
  }
  return spec;
}

}  // namespace emu
