// ICMP echo server (§4.2).
//
// The paper built this as a double baseline: how hard is a simple network
// server to write, and how much time does skipping the bus/CPU/OS/stack
// save. The service answers ICMP echo requests addressed to it and ARP
// requests for its address (so hosts can resolve it); everything else is
// dropped.
#ifndef SRC_SERVICES_ICMP_ECHO_SERVICE_H_
#define SRC_SERVICES_ICMP_ECHO_SERVICE_H_

#include "src/core/service.h"
#include "src/net/mac_address.h"

namespace emu {

struct IcmpEchoConfig {
  MacAddress mac = MacAddress::FromU48(0x02'00'00'00'ee'01);
  Ipv4Address ip = Ipv4Address(10, 0, 0, 100);
  usize bus_bytes = 32;
  // Calibrated cost of the prototype's serial request FSM (fits the Table 4
  // row: ~62 cycles/request -> 3.2 Mq/s at 200 MHz, 1.09 us RTT).
  Cycle parse_cycles = 12;       // header walk before the reply is built
  Cycle turnaround_cycles = 44;  // FSM tail before the next request
};

class IcmpEchoService : public Service {
 public:
  explicit IcmpEchoService(IcmpEchoConfig config = {});

  std::string_view name() const override { return "emu_icmp_echo"; }
  void Instantiate(Simulator& sim, Dataplane dp) override;
  ResourceUsage Resources() const override { return resources_; }
  Cycle ModuleLatency() const override { return 9; }
  Cycle InitiationInterval() const override { return 3; }
  void RegisterMetrics(MetricsRegistry& registry) override;

  u64 echoes() const { return echoes_; }
  u64 arp_replies() const { return arp_replies_; }
  u64 dropped() const { return dropped_; }

 private:
  HwProcess MainLoop();

  IcmpEchoConfig config_;
  Dataplane dp_;
  ResourceUsage resources_;
  u64 echoes_ = 0;
  u64 arp_replies_ = 0;
  u64 dropped_ = 0;
};

}  // namespace emu

#endif  // SRC_SERVICES_ICMP_ECHO_SERVICE_H_
