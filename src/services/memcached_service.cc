#include "src/services/memcached_service.h"

#include <cassert>

#include "src/core/metrics.h"
#include "src/core/protocol_wrappers.h"
#include "src/fault/fault_registry.h"
#include "src/ip/pearson_hash.h"
#include "src/net/udp.h"
#include "src/netfpga/axis.h"
#include "src/netfpga/dataplane.h"
#include "src/obs/trace_hooks.h"
#include "src/services/reply_util.h"

namespace emu {
namespace {

u64 KeyHash(const std::string& key) {
  return PearsonHash64(
      std::span<const u8>(reinterpret_cast<const u8*>(key.data()), key.size()));
}

}  // namespace

MemcachedService::MemcachedService(MemcachedConfig config) : config_(config) {
  assert(config_.cores >= 1 && config_.cores <= kNetFpgaPortCount);
}

MemcachedService::~MemcachedService() = default;

void MemcachedService::Instantiate(Simulator& sim, Dataplane dp) {
  assert(dp.rx != nullptr && dp.tx != nullptr);
  dp_ = dp;
  sim_ = &sim;
  checksum_unit_ = std::make_unique<ChecksumUnit>(sim, "mc_csum");
  if (config_.l1_cache_mode) {
    client_ports_ = std::make_unique<Cam>(sim, "mc_clients", 64, 48, 8);
  }
  if (config_.backend == McBackend::kDram) {
    dram_ = std::make_unique<DramModel>(sim, "mc_dram",
                                        config_.capacity * config_.cores * 2048);
  }
  for (usize core = 0; core < config_.cores; ++core) {
    CoreState state;
    state.index = std::make_unique<LruCacheBlock>(sim, "mc_lru" + std::to_string(core),
                                                  config_.capacity);
    state.slots.resize(config_.capacity);
    state.queue = std::make_unique<SyncFifo<Packet>>(sim, "mc_queue" + std::to_string(core),
                                                     32, config_.bus_bytes * 8);
    cores_.push_back(std::move(state));
  }
  // Request parser FSM + response builder per core, plus the dispatcher.
  control_resources_ = HlsControlResources(6, config_.bus_bytes * 8);
  for (usize core = 0; core < config_.cores; ++core) {
    control_resources_ += HlsControlResources(14, config_.bus_bytes * 8);
    if (config_.backend == McBackend::kOnChip) {
      // Value store in BRAM.
      control_resources_ +=
          BramResources(config_.capacity * (config_.max_key_bytes + config_.max_value_bytes) * 8);
    }
  }
  const usize dispatch = sim.AddProcess(Dispatcher(), "mc_dispatch");
  {
    elab::IoDecl decl(sim.catalog(), dispatch);
    decl.Pops(dp_.rx);
    for (const CoreState& core : cores_) {
      decl.Pushes(core.queue.get());
    }
    if (config_.l1_cache_mode) {
      decl.Reads(std::string("mc_clients"));
    }
  }
  for (usize core = 0; core < config_.cores; ++core) {
    const usize worker = sim.AddProcess(Worker(core), "mc_core" + std::to_string(core));
    elab::IoDecl decl(sim.catalog(), worker);
    decl.Pops(cores_[core].queue.get()).Pushes(dp_.tx);
    if (config_.l1_cache_mode) {
      decl.Reads(std::string("mc_clients")).Writes(std::string("mc_clients"));
    }
  }
}

ResourceUsage MemcachedService::Resources() const {
  ResourceUsage usage = control_resources_ + checksum_unit_->resources();
  for (const CoreState& core : cores_) {
    usage += core.index->resources();
  }
  if (dram_ != nullptr) {
    usage += dram_->resources();
  }
  return usage;
}

void MemcachedService::InjectChecksumBug(bool enabled) {
  checksum_unit_->InjectFoldBug(enabled);
}

bool MemcachedService::checksum_bug_injected() const {
  return checksum_unit_->fold_bug_injected();
}

void MemcachedService::AttachController(DirectionController* controller) {
  controller_ = controller;
  if (controller_ == nullptr) {
    return;
  }
  main_point_ = ExtensionPoint(controller_, controller_->main_point());
  CaspMachine& machine = controller_->machine();
  machine.BindVariable(
      {"checksum", [this] { return static_cast<u64>(last_checksum_); }, nullptr});
  machine.BindVariable({"gets", [this] { return gets_; }, nullptr});
  machine.BindVariable({"sets", [this] { return sets_; }, nullptr});
  machine.BindVariable({"mc_dropped", [this] { return dropped_; }, nullptr});
  machine.BindVariable({"inject_bug",
                        [this] { return checksum_bug_injected() ? u64{1} : u64{0}; },
                        [this](u64 v) { InjectChecksumBug(v != 0); }});
}

void MemcachedService::RegisterFaultPoints(FaultRegistry& registry) {
  if (checksum_unit_ != nullptr) {
    checksum_unit_->AttachFault(registry, "memcached.csum");
  }
  for (usize core = 0; core < cores_.size(); ++core) {
    SyncFifo<Packet>* queue = cores_[core].queue.get();
    registry.RegisterStallTarget("memcached.queue" + std::to_string(core),
                                 [queue](u64 cycles) {
                                   queue->InjectStall(static_cast<Cycle>(cycles));
                                 });
  }
}

Cycle MemcachedService::StoreAccessCycles(usize core, usize bytes) {
  const Cycle transfer = bytes / 8 + 1;  // 64-bit words per cycle
  if (config_.backend == McBackend::kOnChip) {
    return transfer + 1;
  }
  const usize addr = (core * config_.capacity) * 2048 % dram_->size_bytes();
  return transfer + dram_->AccessLatency(addr, sim_->now());
}

HwProcess MemcachedService::Dispatcher() {
  for (;;) {
    co_await WaitUntil([this] { return !dp_.rx->Empty(); });
    // Cheap L2/L3 peek at the head frame: SETs/DELETEs replicate to all
    // cores, everything else dispatches by input port.
    NetFpgaData dataplane;
    dataplane.tdata = dp_.rx->Front();
    UdpWrapper udp(dataplane);

    // L1-cache mode: frames arriving on the host-facing port are the host
    // tier's replies to forwarded misses — fill the cache and route them to
    // the requesting client (5.4's multilevel-cache structure).
    if (config_.l1_cache_mode && dataplane.tdata.src_port() == config_.host_port) {
      if (!dp_.tx->CanPush()) {
        co_await Pause();
        continue;
      }
      Packet frame = dp_.rx->Pop();
      const usize words = WordsForBytes(frame.size(), config_.bus_bytes);
      if (udp.Reachable() && udp.source_port() == kMemcachedPort) {
        FillCacheFromHostReply(frame);
        NetFpgaData out;
        out.tdata = std::move(frame);
        EthernetWrapper eth(out);
        const CamLookupResult client = client_ports_->Lookup(eth.destination().ToU48());
        if (client.hit) {
          NetFpga::SetOutputPort(out, client.value);
          ++host_replies_forwarded_;
          dp_.tx->Push(std::move(out.tdata));
        } else {
          ++dropped_;  // no client binding: reply has nowhere to go
        }
      } else {
        ++dropped_;
      }
      co_await PauseFor(words);
      continue;
    }
    bool is_set = false;
    if (udp.Reachable() && udp.destination_port() == kMemcachedPort) {
      auto request = ParseMcRequest(udp.Payload(), config_.protocol);
      is_set = request.ok() && request->op != McOpcode::kGet;
    }

    if (is_set && config_.cores > 1) {
      // Replicated writes backpressure until EVERY replica queue has room —
      // this is exactly why SET throughput cannot scale with cores (5.4).
      bool all_ready = true;
      for (CoreState& core : cores_) {
        all_ready = all_ready && core.queue->CanPush();
      }
      if (!all_ready) {
        co_await Pause();
        continue;
      }
      Packet frame = dp_.rx->Pop();
      const usize words = WordsForBytes(frame.size(), config_.bus_bytes);
      for (CoreState& core : cores_) {
        core.queue->Push(frame);
      }
      co_await PauseFor(words);
    } else {
      const usize core_id = dataplane.tdata.src_port() % config_.cores;
      if (!cores_[core_id].queue->CanPush()) {
        co_await Pause();
        continue;
      }
      Packet frame = dp_.rx->Pop();
      const usize words = WordsForBytes(frame.size(), config_.bus_bytes);
      cores_[core_id].queue->Push(std::move(frame));
      co_await PauseFor(words);
    }
  }
}

McResponse MemcachedService::Execute(usize core_id, const McRequest& request) {
  CoreState& core = cores_[core_id];
  McResponse response;
  response.protocol = config_.protocol;
  response.op = request.op;
  response.key = request.key;
  response.opaque = request.opaque;

  if (request.key.empty() || request.key.size() > config_.max_key_bytes ||
      request.value.size() > config_.max_value_bytes) {
    response.status = McStatus::kInvalidArguments;
    return response;
  }

  const u64 hash = KeyHash(request.key);
  switch (request.op) {
    case McOpcode::kGet: {
      const LruCacheBlock::Data hit = core.index->Lookup(hash);
      if (hit.matched && core.slots[hit.index].used &&
          core.slots[hit.index].key == request.key) {
        response.status = McStatus::kNoError;
        response.value = core.slots[hit.index].value;
        response.flags = core.slots[hit.index].flags;
      } else {
        response.status = McStatus::kKeyNotFound;
      }
      break;
    }
    case McOpcode::kSet: {
      const usize slot = core.index->Cache(hash, 0);
      core.slots[slot] = Entry{request.key, request.value, request.flags, true};
      response.status = McStatus::kNoError;
      break;
    }
    case McOpcode::kDelete: {
      const LruCacheBlock::Data hit = core.index->Lookup(hash);
      if (hit.matched && core.slots[hit.index].used &&
          core.slots[hit.index].key == request.key) {
        core.index->Erase(hash);
        core.slots[hit.index].used = false;
        response.status = McStatus::kNoError;
      } else {
        response.status = McStatus::kKeyNotFound;
      }
      break;
    }
  }
  return response;
}

HwProcess MemcachedService::Worker(usize core_id) {
  CoreState& core = cores_[core_id];
  for (;;) {
    co_await WaitUntil(
        [this, &core] { return !core.queue->Empty() && dp_.tx->PollCanPush(); });
    NetFpgaData dataplane;
    dataplane.tdata = core.queue->Pop();
    const usize words = WordsForBytes(dataplane.tdata.size(), config_.bus_bytes);
    co_await PauseFor(words);

    ArpWrapper arp(dataplane);
    if (core_id == 0 && arp.Reachable() && arp.OperIs(ArpOper::kRequest) &&
        arp.target_ip() == config_.ip) {
      Packet reply =
          MakeArpReply(config_.mac, config_.ip, arp.sender_mac(), arp.sender_ip());
      CopyDataplaneStamps(dataplane.tdata, reply);
      NetFpgaData out;
      out.tdata = std::move(reply);
      NetFpga::SendBackToSource(out);
      co_await PauseFor(2);
      dp_.tx->Push(std::move(out.tdata));
      co_await Pause();
      continue;
    }

    UdpWrapper udp(dataplane);
    Ipv4Wrapper ip(dataplane);
    if (!udp.Reachable() || ip.destination() != config_.ip ||
        udp.destination_port() != kMemcachedPort) {
      ++dropped_;
      co_await Pause();
      continue;
    }

    auto request = ParseMcRequest(udp.Payload(), config_.protocol);
    if (!request.ok()) {
      ++dropped_;
      co_await Pause();
      continue;
    }

    // Main-loop extension point (§5.5): run installed direction procedures;
    // a fired breakpoint stalls the service until the director resumes it.
    // The call scope keeps `backtrace` accurate while a request is in flight.
    DirectedCallScope call_scope(controller_, "handle_request");
    if (controller_ != nullptr) {
      if (!main_point_.Activate()) {
        while (controller_->broken()) {
          co_await Pause();
        }
      }
    }

    // Protocol decode: the ASCII FSM walks the command line a byte per
    // cycle; the binary header decodes in a couple of beats.
    const usize decode_cycles =
        config_.protocol == McProtocol::kAscii ? 12 + request->key.size() : 3;
    // Stage span: decode + key hash (the parse leg of Table 4's breakdown).
    if (obs::TraceBuffer* tb = obs::ActiveBuffer()) {
      if (obs::FrameTraceId(dataplane.tdata) != 0) {
        obs::EmitComplete(tb, "memcached.parse", sim_->NowPs(),
                          static_cast<Picoseconds>(decode_cycles + 1 + request->key.size()) *
                              sim_->cycle_period_ps());
      }
    }
    co_await PauseFor(decode_cycles);
    // Key hashing: a byte per cycle through the Pearson core.
    co_await PauseFor(1 + request->key.size());

    // L1-cache mode: a GET miss is not answered — the original request is
    // forwarded out of the host-facing port and the host's reply (which
    // later fills the cache) goes back to the client.
    if (config_.l1_cache_mode && request->op == McOpcode::kGet) {
      const LruCacheBlock::Data probe = cores_[core_id].index->Lookup(KeyHash(request->key));
      const bool is_hit = probe.matched && cores_[core_id].slots[probe.index].used &&
                          cores_[core_id].slots[probe.index].key == request->key;
      if (!is_hit) {
        ++gets_;
        ++misses_forwarded_;
        EthernetWrapper eth(dataplane);
        const CamLookupResult existing = client_ports_->Lookup(eth.source().ToU48());
        if (!existing.hit) {
          client_ports_->Write(client_slot_, eth.source().ToU48(),
                               dataplane.tdata.src_port());
          client_slot_ = (client_slot_ + 1) % client_ports_->entries();
        }
        NetFpga::SetOutputPort(dataplane, config_.host_port);
        co_await PauseFor(2);  // miss decision + forward mux
        dp_.tx->Push(std::move(dataplane.tdata));
        co_await Pause();
        continue;
      }
    }

    // The replicated copy of a SET is answered only by the owning core.
    const bool respond =
        request->op == McOpcode::kGet ||
        config_.cores == 1 ||
        dataplane.tdata.src_port() % config_.cores == core_id;

    McResponse response = Execute(core_id, *request);
    switch (request->op) {
      case McOpcode::kGet:
        ++gets_;
        if (response.status == McStatus::kNoError) {
          ++get_hits_;
        }
        co_await PauseFor(StoreAccessCycles(core_id, response.value.size()));
        break;
      case McOpcode::kSet:
        if (respond) {
          ++sets_;
        }
        co_await PauseFor(StoreAccessCycles(core_id, request->value.size()));
        break;
      case McOpcode::kDelete:
        if (respond) {
          ++deletes_;
        }
        co_await PauseFor(2);
        break;
    }

    if (!respond) {
      // Non-owning replicas still pay the full write FSM tail — the reason
      // SET throughput cannot scale with core count (5.4).
      co_await PauseFor(config_.turnaround_cycles);
      continue;
    }

    // Build the reply in the request's frame.
    const std::vector<u8> payload = BuildMcResponse(response);
    Packet& frame = dataplane.tdata;
    SwapEthernetAddresses(frame);
    const usize udp_offset = Ipv4View(frame).payload_offset();
    frame.Resize(udp_offset + kUdpHeaderSize);
    frame.Append(payload);
    Ipv4View ip_out(frame);
    ip_out.set_total_length(static_cast<u16>(frame.size() - kEthernetHeaderSize));
    SwapIpv4Addresses(frame);
    UdpView udp_out(frame, udp_offset);
    SwapUdpPorts(frame);
    udp_out.set_length(static_cast<u16>(kUdpHeaderSize + payload.size()));

    // UDP checksum via the hardware unit (the §5.5 bug lives here when
    // injected; otherwise it matches the software path).
    udp_out.set_checksum(0);
    checksum_unit_->Reset();
    checksum_unit_->Add32(ip_out.source().value());
    checksum_unit_->Add32(ip_out.destination().value());
    checksum_unit_->Add16(static_cast<u16>(IpProtocol::kUdp));
    checksum_unit_->Add16(udp_out.length());
    checksum_unit_->AddBytes(frame.View(udp_offset, udp_out.length()));
    u16 checksum = checksum_unit_->Result();
    if (checksum == 0) {
      checksum = 0xffff;
    }
    udp_out.set_checksum(checksum);
    last_checksum_ = checksum;
    if (controller_ != nullptr) {
      controller_->NoteWrite("checksum");
    }
    if (obs::TraceBuffer* tb = obs::ActiveBuffer()) {
      if (obs::FrameTraceId(frame) != 0) {
        obs::EmitComplete(tb, "memcached.reply", sim_->NowPs(),
                          static_cast<Picoseconds>(checksum_unit_->CyclesForBytes(
                              udp_out.length())) *
                              sim_->cycle_period_ps());
      }
    }
    co_await PauseFor(checksum_unit_->CyclesForBytes(udp_out.length()));

    if (frame.size() < kEthernetMinFrame) {
      frame.Resize(kEthernetMinFrame);
    }
    NetFpga::SendBackToSource(dataplane);
    const usize out_words = WordsForBytes(frame.size(), config_.bus_bytes);
    dp_.tx->Push(std::move(dataplane.tdata));
    co_await PauseFor(out_words > 1 ? out_words - 1 : 1);
    co_await PauseFor(config_.turnaround_cycles);  // FSM tail (throughput)
  }
}

void MemcachedService::FillCacheFromHostReply(const Packet& frame) {
  Packet copy = frame;
  Ipv4View ip(copy);
  if (!ip.Valid()) {
    return;
  }
  UdpView udp(copy, ip.payload_offset());
  if (!udp.Valid()) {
    return;
  }
  auto response = ParseMcResponse(udp.Payload(), config_.protocol);
  if (!response.ok() || response->op != McOpcode::kGet ||
      response->status != McStatus::kNoError) {
    return;
  }
  // The binary protocol's GET reply omits the key; only the ASCII VALUE line
  // carries it, so cache fill works for the ASCII tier (the Table 4 setup).
  if (response->key.empty() || response->value.size() > config_.max_value_bytes) {
    return;
  }
  const u64 hash = KeyHash(response->key);
  for (CoreState& core : cores_) {
    const usize slot = core.index->Cache(hash, 0);
    core.slots[slot] = Entry{response->key, response->value, response->flags, true};
  }
  ++cache_fills_;
}


void MemcachedService::RegisterMetrics(MetricsRegistry& registry) {
  registry.Register("memcached.gets", &gets_);
  registry.Register("memcached.get_hits", &get_hits_);
  registry.Register("memcached.sets", &sets_);
  registry.Register("memcached.deletes", &deletes_);
  registry.Register("memcached.dropped", &dropped_);
  registry.Register("memcached.misses_forwarded", &misses_forwarded_);
  registry.Register("memcached.host_replies_forwarded", &host_replies_forwarded_);
  registry.Register("memcached.cache_fills", &cache_fills_);
}

}  // namespace emu
