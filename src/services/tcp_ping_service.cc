#include "src/services/tcp_ping_service.h"

#include <algorithm>
#include <cassert>

#include "src/core/metrics.h"
#include "src/core/protocol_wrappers.h"
#include "src/net/tcp.h"
#include "src/netfpga/axis.h"
#include "src/netfpga/dataplane.h"
#include "src/services/reply_util.h"

namespace emu {

TcpPingService::TcpPingService(TcpPingConfig config) : config_(std::move(config)) {}

void TcpPingService::Instantiate(Simulator& sim, Dataplane dp) {
  assert(dp.rx != nullptr && dp.tx != nullptr);
  dp_ = dp;
  // The paper notes this service is a more complex extension of ICMP echo
  // (~700 lines of C# vs. the echo's simplicity): a deeper FSM plus the
  // pseudo-header checksum unit and the open-port match logic.
  resources_ = HlsControlResources(9, config_.bus_bytes * 8) +
               ResourceUsage{260 + 24 * static_cast<u64>(config_.open_ports.size()), 210, 0};
  const usize main = sim.AddProcess(MainLoop(), "tcp_ping");
  elab::IoDecl(sim.catalog(), main).Pops(dp_.rx).Pushes(dp_.tx);
}

bool TcpPingService::PortOpen(u16 port) const {
  return std::find(config_.open_ports.begin(), config_.open_ports.end(), port) !=
         config_.open_ports.end();
}

HwProcess TcpPingService::MainLoop() {
  for (;;) {
    co_await WaitUntil([this] { return !dp_.rx->Empty() && dp_.tx->PollCanPush(); });
    NetFpgaData dataplane;
    dataplane.tdata = dp_.rx->Pop();
    const usize words = WordsForBytes(dataplane.tdata.size(), config_.bus_bytes);
    co_await PauseFor(words);

    ArpWrapper arp(dataplane);
    if (arp.Reachable() && arp.OperIs(ArpOper::kRequest) && arp.target_ip() == config_.ip) {
      Packet reply =
          MakeArpReply(config_.mac, config_.ip, arp.sender_mac(), arp.sender_ip());
      CopyDataplaneStamps(dataplane.tdata, reply);
      NetFpgaData out;
      out.tdata = std::move(reply);
      NetFpga::SendBackToSource(out);
      co_await PauseFor(2);
      dp_.tx->Push(std::move(out.tdata));
      co_await Pause();
      continue;
    }

    TcpWrapper tcp(dataplane);
    Ipv4Wrapper ip(dataplane);
    if (tcp.Reachable() && ip.destination() == config_.ip && tcp.HasFlag(TcpFlags::kSyn) &&
        !tcp.HasFlag(TcpFlags::kAck)) {
      // Serial TCP header walk + port match (see TcpPingConfig).
      co_await PauseFor(config_.parse_cycles);
      EthernetWrapper eth(dataplane);
      TcpSegmentSpec spec;
      spec.eth_dst = eth.source();
      spec.eth_src = config_.mac;
      spec.ip_src = config_.ip;
      spec.ip_dst = ip.source();
      spec.src_port = tcp.destination_port();
      spec.dst_port = tcp.source_port();
      if (PortOpen(tcp.destination_port())) {
        // Second step of the handshake: SYN-ACK with our ISN.
        spec.seq = config_.initial_sequence;
        spec.ack = tcp.sequence() + 1;
        spec.flags = TcpFlags::kSyn | TcpFlags::kAck;
        ++syn_acks_;
      } else {
        spec.seq = 0;
        spec.ack = tcp.sequence() + 1;
        spec.flags = TcpFlags::kRst | TcpFlags::kAck;
        ++resets_;
      }
      Packet reply = MakeTcpSegment(spec);
      CopyDataplaneStamps(dataplane.tdata, reply);
      NetFpgaData out;
      out.tdata = std::move(reply);
      NetFpga::SendBackToSource(out);
      // Build the segment and run the pseudo-header checksum.
      co_await PauseFor(4);
      const usize out_words = WordsForBytes(out.tdata.size(), config_.bus_bytes);
      dp_.tx->Push(std::move(out.tdata));
      co_await PauseFor(out_words > 1 ? out_words - 1 : 1);
      co_await PauseFor(config_.turnaround_cycles);  // FSM tail (throughput)
      continue;
    }

    ++dropped_;
    co_await Pause();
  }
}


void TcpPingService::RegisterMetrics(MetricsRegistry& registry) {
  registry.Register("tcp_ping.syn_acks", &syn_acks_);
  registry.Register("tcp_ping.resets", &resets_);
  registry.Register("tcp_ping.dropped", &dropped_);
}

}  // namespace emu
