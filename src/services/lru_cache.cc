#include "src/services/lru_cache.h"

namespace emu {

LruCacheBlock::LruCacheBlock(Simulator& sim, std::string name, usize capacity)
    : Module(sim, name) {
  hash_cam_ = std::make_unique<HashCam>(sim, name + "_hashcam", capacity * 2);
  queue_ = std::make_unique<NaughtyQ>(sim, name + "_naughtyq", capacity);
  key_of_slot_.resize(capacity, 0);
  slot_used_.resize(capacity, false);
  AddResources(hash_cam_->resources() + queue_->resources());
}

LruCacheBlock::Data LruCacheBlock::Lookup(u64 key_in) {
  Data res;
  const u64 idx = hash_cam_->Read(key_in);
  if (hash_cam_->matched()) {
    res.matched = true;
    res.result = queue_->Read(idx);
    res.index = idx;
    queue_->BackOfQ(idx);
  }
  return res;
}

usize LruCacheBlock::Cache(u64 key_in, u64 value_in) {
  // Re-caching an existing key: unbind the old slot first (it becomes the
  // next eviction candidate), then insert fresh.
  Erase(key_in);
  const NaughtyQ::EnlistResult enlisted = queue_->Enlist(value_in);
  if (enlisted.evicted && slot_used_[enlisted.index]) {
    // A live entry fell out of the front of the queue: unbind its key.
    hash_cam_->Erase(key_of_slot_[enlisted.index]);
    ++evictions_;
  }
  if (!hash_cam_->Write(key_in, enlisted.index)) {
    // Probe window exhausted: the new entry is unreachable, i.e. instantly
    // evicted. Leave the slot as an unbound zombie for recycling.
    slot_used_[enlisted.index] = false;
    queue_->FrontOfQ(enlisted.index);
    ++evictions_;
    return enlisted.index;
  }
  key_of_slot_[enlisted.index] = key_in;
  slot_used_[enlisted.index] = true;
  return enlisted.index;
}

bool LruCacheBlock::Erase(u64 key_in) {
  const u64 idx = hash_cam_->Read(key_in);
  if (!hash_cam_->matched()) {
    return false;
  }
  hash_cam_->Erase(key_in);
  slot_used_[idx] = false;
  // Demote the now-unbound slot to the front so the next Enlist recycles it
  // before touching any live entry.
  queue_->FrontOfQ(idx);
  return true;
}

}  // namespace emu
