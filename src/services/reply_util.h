// Shared header-rewrite helpers for request/response services (swap the
// direction of a frame in place, fix checksums after a rewrite).
#ifndef SRC_SERVICES_REPLY_UTIL_H_
#define SRC_SERVICES_REPLY_UTIL_H_

#include "src/net/ipv4.h"
#include "src/net/packet.h"

namespace emu {

// Swaps Ethernet source/destination MACs.
void SwapEthernetAddresses(Packet& frame);

// Swaps IPv4 source/destination, resets TTL, and refreshes the header
// checksum.
void SwapIpv4Addresses(Packet& frame, u8 ttl = 64);

// Swaps UDP source/destination ports (checksum must be refreshed by the
// caller after any payload change).
void SwapUdpPorts(Packet& frame);

// Copies the dataplane bookkeeping (source port, wire ingress timestamp,
// core ingress cycle) from a request onto a freshly built reply so latency
// accounting survives services that do not rewrite in place.
void CopyDataplaneStamps(const Packet& request, Packet& reply);

}  // namespace emu

#endif  // SRC_SERVICES_REPLY_UTIL_H_
