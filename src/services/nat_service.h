// NAT gateway (§4.4).
//
// Network address translation for UDP and TCP between an internal subnet
// (ports 1-3) and the external network (port 0) — the service the paper had
// a second-year undergraduate write entirely in C# in under 1,000 lines, and
// the one they compile to all three targets. Outbound flows get a translated
// (external_ip, external_port) pair; inbound packets to a translated port
// are rewritten back and sent to the recorded internal host. IP and L4
// checksums are refreshed after every rewrite. ARP requests for either
// gateway address are answered.
#ifndef SRC_SERVICES_NAT_SERVICE_H_
#define SRC_SERVICES_NAT_SERVICE_H_

#include <memory>
#include <optional>
#include <vector>

#include "src/core/service.h"
#include "src/ip/hash_cam.h"
#include "src/net/ipv4.h"
#include "src/net/mac_address.h"

namespace emu {

class DirectionController;
class FaultPoint;

struct NatConfig {
  // External side (port 0).
  Ipv4Address external_ip = Ipv4Address(203, 0, 113, 1);
  MacAddress external_mac = MacAddress::FromU48(0x02'00'00'00'aa'00);
  MacAddress external_gateway_mac = MacAddress::FromU48(0x02'ff'ff'ff'ff'01);
  // Internal side (ports 1-3).
  Ipv4Address internal_ip = Ipv4Address(192, 168, 1, 1);
  MacAddress internal_mac = MacAddress::FromU48(0x02'00'00'00'aa'01);
  Ipv4Address internal_subnet = Ipv4Address(192, 168, 1, 0);
  u32 internal_prefix = 24;

  u16 port_base = 40000;
  usize max_mappings = 1024;
  usize bus_bytes = 32;
  // Calibrated rewrite-FSM cost (Table 4: ~82 cycles -> 2.4 Mq/s, 1.32 us
  // one-way through the gateway).
  Cycle parse_cycles = 55;
  Cycle turnaround_cycles = 20;

  // Idle-flow expiry: a mapping untouched for this many cycles is reclaimed
  // (0 disables — the paper's student prototype had no expiry; a production
  // NAT needs one). 2 s at 200 MHz by default when enabled.
  Cycle mapping_timeout_cycles = 0;

  // Exhaustion policy: with the table full, a mapping idle for at least this
  // many cycles may be evicted for the new flow (evict-idle-first). Flows
  // more recently active are never evicted — the new flow is rejected and
  // counted instead, so existing translations are never corrupted under
  // pressure. 0 (the default) disables eviction: table-full means pure
  // reject, exactly the pre-hardening behaviour.
  Cycle exhaustion_evict_idle_cycles = 0;
};

class NatService : public Service {
 public:
  explicit NatService(NatConfig config = {});
  ~NatService() override;

  std::string_view name() const override { return "emu_nat"; }
  void Instantiate(Simulator& sim, Dataplane dp) override;
  ResourceUsage Resources() const override;
  Cycle ModuleLatency() const override { return 12; }
  Cycle InitiationInterval() const override { return 4; }
  void RegisterMetrics(MetricsRegistry& registry) override;

  // emu-chain: upstream is the internal side (port 1, gateway MAC), the
  // external side (port 0) continues downstream — so a chain pipes the
  // translated flow onward and untranslates replies on the way back.
  ChainStageIo ChainIo() const override {
    ChainStageIo io;
    io.forward_in_port = 1;
    io.reply_in_port = 0;
    io.downstream_mask = 0x01;
    io.forward_mac = config_.internal_mac;
    io.reply_mac = config_.external_mac;
    return io;
  }

  u64 translated_out() const { return translated_out_; }
  u64 translated_in() const { return translated_in_; }
  u64 dropped() const { return dropped_; }
  usize active_mappings() const { return active_mappings_; }
  // Graceful-degradation bookkeeping (table pressure).
  u64 exhaustion_rejects() const { return exhaustion_rejects_; }
  u64 exhaustion_evictions() const { return exhaustion_evictions_; }

  // §5.5-style direction: binds the translation/degradation counters so the
  // controller observes table pressure live. Call before Instantiate().
  void AttachController(DirectionController* controller);

  // emu-fault: registers `nat.table_full` (TABLE_EXHAUSTION). While armed
  // and firing, MapOutbound behaves as if no slot were free — the graceful
  // rejection path runs without needing max_mappings real flows.
  void RegisterFaultPoints(FaultRegistry& registry) override;

 private:
  struct Mapping {
    bool used = false;
    IpProtocol protocol = IpProtocol::kUdp;
    Ipv4Address internal_ip;
    u16 internal_port = 0;
    MacAddress internal_mac;
    u8 internal_fpga_port = 0;
    u64 flow_key = 0;      // for reverse removal from the flow table
    Cycle last_used = 0;   // expiry bookkeeping
  };

  HwProcess MainLoop();
  // Finds or allocates the external port for an outbound flow; returns 0 on
  // table exhaustion (after the evict-idle-first policy found no victim).
  u16 MapOutbound(IpProtocol protocol, Ipv4Address src_ip, u16 src_port, MacAddress src_mac,
                  u8 fpga_port);
  bool Expired(const Mapping& mapping) const;
  void Reclaim(usize slot);
  // Exhaustion fallback: the least-recently-used slot idle past the
  // configured threshold, or nullopt when every flow is too recent to evict.
  std::optional<usize> FindIdleVictim() const;

  NatConfig config_;
  Dataplane dp_;
  Simulator* sim_ = nullptr;
  DirectionController* controller_ = nullptr;
  FaultPoint* table_full_fault_ = nullptr;
  std::unique_ptr<HashCam> flow_table_;
  std::vector<Mapping> mappings_;  // index = external_port - port_base
  usize next_mapping_ = 0;
  usize active_mappings_ = 0;
  ResourceUsage control_resources_;
  u64 translated_out_ = 0;
  u64 translated_in_ = 0;
  u64 dropped_ = 0;
  u64 exhaustion_rejects_ = 0;
  u64 exhaustion_evictions_ = 0;
};

}  // namespace emu

#endif  // SRC_SERVICES_NAT_SERVICE_H_
