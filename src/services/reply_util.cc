#include "src/services/reply_util.h"

#include "src/net/ethernet.h"
#include "src/net/udp.h"

namespace emu {

void SwapEthernetAddresses(Packet& frame) {
  EthernetView eth(frame);
  const MacAddress dst = eth.destination();
  eth.set_destination(eth.source());
  eth.set_source(dst);
}

void SwapIpv4Addresses(Packet& frame, u8 ttl) {
  Ipv4View ip(frame);
  const Ipv4Address dst = ip.destination();
  ip.set_destination(ip.source());
  ip.set_source(dst);
  ip.set_ttl(ttl);
  ip.UpdateChecksum();
}

void CopyDataplaneStamps(const Packet& request, Packet& reply) {
  reply.set_src_port(request.src_port());
  reply.set_ingress_time(request.ingress_time());
  reply.set_core_ingress_cycle(request.core_ingress_cycle());
  // The reply continues the request's packet flight (emu-scope): keep the
  // trace id so egress/receive spans close against the original ingress.
  reply.set_trace_id(request.trace_id());
}

void SwapUdpPorts(Packet& frame) {
  Ipv4View ip(frame);
  UdpView udp(frame, ip.payload_offset());
  const u16 dst = udp.destination_port();
  udp.set_destination_port(udp.source_port());
  udp.set_source_port(dst);
}

}  // namespace emu
