// L2 learning switch — the paper's flagship use case (§4.1, Fig. 2).
//
// Functionally identical to the NetFPGA SUME reference learning switch: look
// up the destination MAC in a CAM-backed table, forward to the learned port
// on a hit, broadcast otherwise, and learn the source MAC on every frame
// ("LUT[free] = srcmac_port", Fig. 2 line 16). The MAC table can be the
// vendor CAM IP block or the pure high-level-code CAM; §4.1's resource/
// timing trade-off, reproduced by the ablation bench.
//
// The service is split into two Kiwi threads (lookup, then forward+learn)
// connected by a FIFO — Kiwi's parallel-threads-to-parallel-sub-circuits
// semantics — giving a pipelined initiation interval of one bus transfer,
// which is what lets Emu hit 4x10G line rate with a single parser (§5.3).
#ifndef SRC_SERVICES_LEARNING_SWITCH_H_
#define SRC_SERVICES_LEARNING_SWITCH_H_

#include <memory>

#include "src/core/service.h"
#include "src/ip/cam.h"
#include "src/ip/logic_cam.h"
#include "src/netfpga/axis.h"

namespace emu {

enum class CamKind {
  kIpBlock,  // vendor CAM IP (better resources/timing)
  kLogic,    // CAM synthesized from high-level code (no IP dependence)
};

struct LearningSwitchConfig {
  CamKind cam = CamKind::kIpBlock;
  usize table_entries = 256;  // as in the paper's Table 3 comparison
  usize bus_bytes = kDefaultBusBytes;
};

class LearningSwitch : public Service {
 public:
  explicit LearningSwitch(LearningSwitchConfig config = {});
  ~LearningSwitch() override;

  std::string_view name() const override { return "emu_learning_switch"; }
  void Instantiate(Simulator& sim, Dataplane dp) override;
  ResourceUsage Resources() const override;
  Cycle ModuleLatency() const override;
  Cycle InitiationInterval() const override { return 2; }
  void RegisterMetrics(MetricsRegistry& registry) override;

  // --- Statistics ---
  u64 lookups() const { return lookups_; }
  u64 hits() const { return hits_; }
  u64 learned() const { return learned_; }

  // Read-only view of the table for tests.
  const CamInterface& table() const { return *cam_; }

 private:
  HwProcess LookupStage();
  HwProcess DecideStage();
  HwProcess ForwardAndLearnStage();

  LearningSwitchConfig config_;
  Simulator* sim_ = nullptr;
  Dataplane dp_;
  std::unique_ptr<CamInterface> cam_;
  std::unique_ptr<SyncFifo<Packet>> lookup_to_decide_;
  std::unique_ptr<SyncFifo<Packet>> decide_to_forward_;
  ResourceUsage control_resources_;
  u64 lookups_ = 0;
  u64 hits_ = 0;
  u64 learned_ = 0;
  usize free_slot_ = 0;
};

}  // namespace emu

#endif  // SRC_SERVICES_LEARNING_SWITCH_H_
