#include "src/services/nat_service.h"

#include <cassert>

#include "src/core/metrics.h"
#include "src/core/protocol_wrappers.h"
#include "src/debug/controller.h"
#include "src/fault/fault_registry.h"
#include "src/ip/pearson_hash.h"
#include "src/net/tcp.h"
#include "src/net/udp.h"
#include "src/netfpga/axis.h"
#include "src/netfpga/dataplane.h"
#include "src/obs/trace_hooks.h"
#include "src/services/reply_util.h"

namespace emu {
namespace {

u64 FlowKey(IpProtocol protocol, Ipv4Address ip, u16 port) {
  // proto(8) | ip(32) | port(16) packed, then Pearson-hashed by HashCam.
  return (static_cast<u64>(protocol) << 48) | (static_cast<u64>(ip.value()) << 16) | port;
}

}  // namespace

NatService::NatService(NatConfig config) : config_(config) {}

NatService::~NatService() = default;

void NatService::Instantiate(Simulator& sim, Dataplane dp) {
  assert(dp.rx != nullptr && dp.tx != nullptr);
  dp_ = dp;
  sim_ = &sim;
  flow_table_ = std::make_unique<HashCam>(sim, "nat_flows", config_.max_mappings * 2);
  mappings_.resize(config_.max_mappings);
  // Rewrite FSM + mapping store (~1,000 lines of C# in the paper).
  control_resources_ = HlsControlResources(11, config_.bus_bytes * 8) +
                       BramResources(config_.max_mappings * 14 * 8) +
                       ResourceUsage{340, 260, 0};
  const usize nat = sim.AddProcess(MainLoop(), "nat");
  elab::IoDecl(sim.catalog(), nat)
      .Pops(dp_.rx)
      .Pushes(dp_.tx)
      .Reads(flow_table_.get())
      .Writes(flow_table_.get());
}

ResourceUsage NatService::Resources() const {
  return control_resources_ + flow_table_->resources();
}

bool NatService::Expired(const Mapping& mapping) const {
  // A mapping touched this very cycle is never expired: a flow whose packet
  // is mid-rewrite must not be reclaimed under it (the half-rewritten
  // translation bug).
  return config_.mapping_timeout_cycles != 0 && mapping.used &&
         sim_->now() > mapping.last_used &&
         sim_->now() - mapping.last_used > config_.mapping_timeout_cycles;
}

void NatService::Reclaim(usize slot) {
  flow_table_->Erase(mappings_[slot].flow_key);
  mappings_[slot].used = false;
  --active_mappings_;
}

std::optional<usize> NatService::FindIdleVictim() const {
  if (config_.exhaustion_evict_idle_cycles == 0) {
    return std::nullopt;
  }
  std::optional<usize> victim;
  Cycle oldest = 0;
  for (usize slot = 0; slot < mappings_.size(); ++slot) {
    const Mapping& mapping = mappings_[slot];
    if (!mapping.used || sim_->now() <= mapping.last_used) {
      continue;  // free (handled elsewhere) or touched this cycle
    }
    const Cycle idle = sim_->now() - mapping.last_used;
    if (idle >= config_.exhaustion_evict_idle_cycles &&
        (!victim.has_value() || mapping.last_used < oldest)) {
      victim = slot;
      oldest = mapping.last_used;
    }
  }
  return victim;
}

void NatService::AttachController(DirectionController* controller) {
  controller_ = controller;
  if (controller_ == nullptr) {
    return;
  }
  CaspMachine& machine = controller_->machine();
  machine.BindVariable({"nat_out", [this] { return translated_out_; }, nullptr});
  machine.BindVariable({"nat_in", [this] { return translated_in_; }, nullptr});
  machine.BindVariable({"nat_dropped", [this] { return dropped_; }, nullptr});
  machine.BindVariable(
      {"nat_active", [this] { return static_cast<u64>(active_mappings_); }, nullptr});
  machine.BindVariable({"nat_rejects", [this] { return exhaustion_rejects_; }, nullptr});
  machine.BindVariable(
      {"nat_evictions", [this] { return exhaustion_evictions_; }, nullptr});
}

void NatService::RegisterFaultPoints(FaultRegistry& registry) {
  table_full_fault_ = registry.Register("nat.table_full", FaultClass::kTableExhaustion);
  if (flow_table_ != nullptr) {
    registry.RegisterSeuTarget("nat.flows", flow_table_->state_bits(),
                               [this](u64 bit) { flow_table_->InjectBitFlip(bit); });
  }
}

u16 NatService::MapOutbound(IpProtocol protocol, Ipv4Address src_ip, u16 src_port,
                            MacAddress src_mac, u8 fpga_port) {
  const u64 key = FlowKey(protocol, src_ip, src_port);
  const u64 existing = flow_table_->Read(key);
  if (flow_table_->matched()) {
    if (!Expired(mappings_[existing])) {
      mappings_[existing].last_used = sim_->now();
      return static_cast<u16>(config_.port_base + existing);
    }
    Reclaim(existing);  // stale binding for this very flow: reallocate fresh
  }
  // Injected exhaustion (emu-fault): new flows see a full table; established
  // flows (the match above) keep translating — degradation, not corruption.
  if (table_full_fault_ != nullptr && table_full_fault_->armed() &&
      table_full_fault_->Sample(sim_->now())) {
    ++exhaustion_rejects_;
    return 0;
  }
  // Allocate the next free slot (rotating allocator; expired mappings are
  // reclaimed on the way).
  for (usize scan = 0; scan < mappings_.size(); ++scan) {
    const usize slot = (next_mapping_ + scan) % mappings_.size();
    if (Expired(mappings_[slot])) {
      Reclaim(slot);
    }
    if (!mappings_[slot].used) {
      if (!flow_table_->Write(key, slot)) {
        ++exhaustion_rejects_;  // probe window full: same degradation path
        return 0;
      }
      mappings_[slot] =
          Mapping{true, protocol, src_ip, src_port, src_mac, fpga_port, key, sim_->now()};
      next_mapping_ = slot + 1;
      ++active_mappings_;
      return static_cast<u16>(config_.port_base + slot);
    }
  }
  // Table full: evict the least-recently-used flow idle past the threshold.
  // Recently active flows are never sacrificed — reject the newcomer instead.
  if (const std::optional<usize> victim = FindIdleVictim()) {
    Reclaim(*victim);
    ++exhaustion_evictions_;
    if (!flow_table_->Write(key, *victim)) {
      ++exhaustion_rejects_;
      return 0;
    }
    mappings_[*victim] =
        Mapping{true, protocol, src_ip, src_port, src_mac, fpga_port, key, sim_->now()};
    ++active_mappings_;
    return static_cast<u16>(config_.port_base + *victim);
  }
  ++exhaustion_rejects_;
  return 0;
}

HwProcess NatService::MainLoop() {
  for (;;) {
    co_await WaitUntil([this] { return !dp_.rx->Empty() && dp_.tx->PollCanPush(); });
    NetFpgaData dataplane;
    dataplane.tdata = dp_.rx->Pop();
    const usize words = WordsForBytes(dataplane.tdata.size(), config_.bus_bytes);
    co_await PauseFor(words);

    const u8 in_port = dataplane.tdata.src_port();
    const bool from_external = in_port == 0;

    // ARP for either gateway address.
    ArpWrapper arp(dataplane);
    if (arp.Reachable() && arp.OperIs(ArpOper::kRequest)) {
      const Ipv4Address target = arp.target_ip();
      if (target == config_.external_ip || target == config_.internal_ip) {
        const MacAddress our_mac =
            target == config_.external_ip ? config_.external_mac : config_.internal_mac;
        Packet reply = MakeArpReply(our_mac, target, arp.sender_mac(), arp.sender_ip());
        CopyDataplaneStamps(dataplane.tdata, reply);
        NetFpgaData out;
        out.tdata = std::move(reply);
        NetFpga::SendBackToSource(out);
        co_await PauseFor(2);
        dp_.tx->Push(std::move(out.tdata));
        co_await Pause();
        continue;
      }
    }

    Ipv4Wrapper ip(dataplane);
    if (!ip.Reachable() ||
        (!ip.ProtocolIs(IpProtocol::kUdp) && !ip.ProtocolIs(IpProtocol::kTcp))) {
      ++dropped_;
      co_await Pause();
      continue;
    }
    // Serial header walk + rewrite FSM of the undergraduate prototype
    // (see NatConfig).
    if (obs::TraceBuffer* tb = obs::ActiveBuffer()) {
      if (obs::FrameTraceId(dataplane.tdata) != 0) {
        obs::EmitComplete(tb, "nat.parse", sim_->NowPs(),
                          static_cast<Picoseconds>(config_.parse_cycles) *
                              sim_->cycle_period_ps());
      }
    }
    co_await PauseFor(config_.parse_cycles);
    const IpProtocol protocol =
        ip.ProtocolIs(IpProtocol::kUdp) ? IpProtocol::kUdp : IpProtocol::kTcp;
    Packet& frame = dataplane.tdata;
    const usize l4_offset = ip.payload_offset();
    const usize segment_length = ip.total_length() - ip.HeaderBytes();

    u16 src_port = 0;
    u16 dst_port = 0;
    if (protocol == IpProtocol::kUdp) {
      UdpView udp(frame, l4_offset);
      src_port = udp.source_port();
      dst_port = udp.destination_port();
    } else {
      TcpView tcp(frame, l4_offset);
      src_port = tcp.source_port();
      dst_port = tcp.destination_port();
    }

    EthernetWrapper eth(dataplane);
    bool forward = false;
    u8 out_fpga_port = 0;

    if (!from_external && ip.source().InSubnet(config_.internal_subnet,
                                               config_.internal_prefix)) {
      // Outbound: translate source.
      const u16 ext_port =
          MapOutbound(protocol, ip.source(), src_port, eth.source(), in_port);
      co_await PauseFor(3);  // flow-table probe / insert
      if (ext_port != 0) {
        ip.set_source(config_.external_ip);
        if (protocol == IpProtocol::kUdp) {
          UdpView udp(frame, l4_offset);
          udp.set_source_port(ext_port);
        } else {
          TcpView tcp(frame, l4_offset);
          tcp.set_source_port(ext_port);
        }
        eth.set_source(config_.external_mac);
        eth.set_destination(config_.external_gateway_mac);
        out_fpga_port = 0;
        forward = true;
        ++translated_out_;
      }
    } else if (from_external && ip.destination() == config_.external_ip) {
      // Inbound: look the mapping up by translated port.
      co_await PauseFor(2);
      if (dst_port >= config_.port_base &&
          dst_port < config_.port_base + mappings_.size()) {
        const usize slot = dst_port - config_.port_base;
        if (Expired(mappings_[slot])) {
          Reclaim(slot);
        }
        // Snapshot the mapping before rewriting: every field below comes
        // from one coherent view even if the slot is evicted or expired
        // while this packet is still in flight.
        const Mapping mapping = mappings_[slot];
        if (mapping.used && mapping.protocol == protocol) {
          mappings_[slot].last_used = sim_->now();
          ip.set_destination(mapping.internal_ip);
          if (protocol == IpProtocol::kUdp) {
            UdpView udp(frame, l4_offset);
            udp.set_destination_port(mapping.internal_port);
          } else {
            TcpView tcp(frame, l4_offset);
            tcp.set_destination_port(mapping.internal_port);
          }
          eth.set_source(config_.internal_mac);
          eth.set_destination(mapping.internal_mac);
          out_fpga_port = mapping.internal_fpga_port;
          forward = true;
          ++translated_in_;
        }
      }
    }

    if (!forward) {
      ++dropped_;
      co_await Pause();
      continue;
    }

    // Refresh checksums after the rewrite.
    ip.set_ttl(ip.ttl() > 0 ? ip.ttl() - 1 : 0);
    ip.UpdateChecksum();
    if (protocol == IpProtocol::kUdp) {
      UdpView udp(frame, l4_offset);
      udp.UpdateChecksum(ip);
    } else {
      TcpView tcp(frame, l4_offset);
      tcp.UpdateChecksum(ip, segment_length);
    }
    co_await PauseFor(2);  // checksum fold

    NetFpga::SetOutputPort(dataplane, out_fpga_port);
    const usize out_words = WordsForBytes(frame.size(), config_.bus_bytes);
    if (obs::TraceBuffer* tb = obs::ActiveBuffer()) {
      if (obs::FrameTraceId(dataplane.tdata) != 0) {
        obs::EmitComplete(tb, "nat.egress", sim_->NowPs(),
                          static_cast<Picoseconds>(out_words > 1 ? out_words - 1 : 1) *
                              sim_->cycle_period_ps());
      }
    }
    dp_.tx->Push(std::move(dataplane.tdata));
    co_await PauseFor(out_words > 1 ? out_words - 1 : 1);
    co_await PauseFor(config_.turnaround_cycles);  // FSM tail (throughput)
  }
}


void NatService::RegisterMetrics(MetricsRegistry& registry) {
  registry.Register("nat.translated_out", &translated_out_);
  registry.Register("nat.translated_in", &translated_in_);
  registry.Register("nat.dropped", &dropped_);
  registry.Register("nat.exhaustion_rejects", &exhaustion_rejects_);
  registry.Register("nat.exhaustion_evictions", &exhaustion_evictions_);
}

}  // namespace emu
