#include "src/services/swim_service.h"

#include <algorithm>

#include "src/core/metrics.h"
#include "src/net/ethernet.h"
#include "src/net/ipv4.h"
#include "src/obs/trace_hooks.h"

namespace emu {
namespace {

constexpr u64 kFnvOffset = 14695981039346656037ull;
constexpr u64 kFnvPrime = 1099511628211ull;

u64 Fnv1aU64(u64 h, u64 value) {
  for (usize i = 0; i < sizeof(value); ++i) {
    h ^= static_cast<u8>(value >> (8 * i));
    h *= kFnvPrime;
  }
  return h;
}

// Wire format (UDP payload, all multi-byte fields big-endian):
//   [0]    type          (SwimMessageType)
//   [1:3)  from id
//   [3:7)  seq
//   [7:9)  subject id
//   [9]    piggyback entry count
//   then per entry: subject id (2), state (1), incarnation (4)
constexpr usize kHeaderSize = 10;
constexpr usize kEntrySize = 7;

void PutU16(std::vector<u8>& out, u16 value) {
  out.push_back(static_cast<u8>(value >> 8));
  out.push_back(static_cast<u8>(value));
}

void PutU32(std::vector<u8>& out, u32 value) {
  out.push_back(static_cast<u8>(value >> 24));
  out.push_back(static_cast<u8>(value >> 16));
  out.push_back(static_cast<u8>(value >> 8));
  out.push_back(static_cast<u8>(value));
}

u16 GetU16(std::span<const u8> bytes, usize offset) {
  return static_cast<u16>((static_cast<u16>(bytes[offset]) << 8) | bytes[offset + 1]);
}

u32 GetU32(std::span<const u8> bytes, usize offset) {
  return (static_cast<u32>(bytes[offset]) << 24) | (static_cast<u32>(bytes[offset + 1]) << 16) |
         (static_cast<u32>(bytes[offset + 2]) << 8) | bytes[offset + 3];
}

// Precedence: higher incarnation always wins; at equal incarnation
// Dead > Suspect > Alive (the enum's numeric order).
bool Supersedes(SwimState state, u32 incarnation, SwimState old_state, u32 old_incarnation) {
  if (incarnation != old_incarnation) {
    return incarnation > old_incarnation;
  }
  return static_cast<u8>(state) > static_cast<u8>(old_state);
}

}  // namespace

const char* SwimStateName(SwimState state) {
  switch (state) {
    case SwimState::kAlive: return "alive";
    case SwimState::kSuspect: return "suspect";
    case SwimState::kDead: return "dead";
  }
  return "?";
}

Picoseconds SwimDetectionBound(const SwimConfig& config, usize cluster_size) {
  // Worst case with randomized round-robin: a member can go unprobed by a
  // given peer for just under two full rounds (probed at the top of one
  // shuffle, drawn at the bottom of the next), then the suspicion window
  // must expire; slack covers probe timeouts and gossip propagation.
  const u64 periods = 2 * static_cast<u64>(cluster_size) + config.suspicion_periods + 4;
  return static_cast<Picoseconds>(periods) * config.protocol_period + config.indirect_timeout;
}

SwimPeer::SwimPeer(SimHost& host, u16 id, std::vector<SwimMember> members, SwimConfig config,
                   u64 seed)
    : host_(host), id_(id), members_(std::move(members)), config_(config), rng_(seed) {
  table_.resize(members_.size());
  for (u16 m = 0; m < members_.size(); ++m) {
    if (m != id_) {
      round_.push_back(m);
    }
  }
}

void SwimPeer::Start() {
  host_.SetApp([this](SimHost&, Packet frame) { OnFrame(std::move(frame)); });
  host_.SetOnRestart([this] { OnRestart(); });
  rng::Shuffle(rng_, round_);
  round_pos_ = 0;
  // Stagger first probes across the cluster so period boundaries do not make
  // every peer transmit on the same edge.
  const Picoseconds stagger =
      config_.protocol_period * static_cast<Picoseconds>(id_ + 1) /
      static_cast<Picoseconds>(members_.size() + 1);
  ScheduleTick(Now() + config_.protocol_period + stagger);
}

void SwimPeer::ScheduleTick(Picoseconds at) {
  if (config_.run_until != 0 && at >= config_.run_until) {
    return;
  }
  host_.scheduler().At(at, [this] { Tick(); });
}

void SwimPeer::Tick() {
  ScheduleTick(Now() + config_.protocol_period);  // cadence survives crashes
  if (!CanSend() || !ProtocolActive()) {
    return;
  }
  const u16 target = NextTarget();
  if (target >= members_.size()) {
    return;  // nobody left to probe
  }
  const u32 seq = ++next_seq_;
  probe_ = Probe{seq, target, /*acked=*/false, /*active=*/true};
  ++pings_sent_;
  SendSwim(target, SwimMessageType::kPing, seq, id_, /*full_table=*/false);
  host_.scheduler().At(Now() + config_.direct_timeout, [this, seq] { DirectTimeout(seq); });
  host_.scheduler().At(Now() + config_.indirect_timeout,
                       [this, seq] { IndirectTimeout(seq); });
}

void SwimPeer::DirectTimeout(u32 seq) {
  if (!probe_.active || probe_.seq != seq || probe_.acked || !CanSend()) {
    return;
  }
  for (u16 proxy : PickMembers(config_.ping_req_fanout, probe_.target)) {
    ++ping_reqs_sent_;
    SendSwim(proxy, SwimMessageType::kPingReq, seq, probe_.target, /*full_table=*/false);
  }
}

void SwimPeer::IndirectTimeout(u32 seq) {
  if (!probe_.active || probe_.seq != seq || !host_.up()) {
    return;
  }
  const bool acked = probe_.acked;
  const u16 target = probe_.target;
  probe_.active = false;
  if (!acked) {
    ApplyUpdate(target, SwimState::kSuspect, table_[target].incarnation);
  }
}

void SwimPeer::DeathCheck(u16 subject, u64 epoch) {
  if (!host_.up()) {
    return;
  }
  const MemberRecord& record = table_[subject];
  if (record.state == SwimState::kSuspect && record.suspect_epoch == epoch) {
    ApplyUpdate(subject, SwimState::kDead, record.incarnation);
  }
}

u16 SwimPeer::NextTarget() {
  for (usize attempts = 0; attempts < round_.size(); ++attempts) {
    if (round_pos_ >= round_.size()) {
      rng::Shuffle(rng_, round_);
      round_pos_ = 0;
    }
    const u16 candidate = round_[round_pos_++];
    if (table_[candidate].state != SwimState::kDead) {
      return candidate;
    }
  }
  return static_cast<u16>(members_.size());
}

std::vector<u16> SwimPeer::PickMembers(usize k, u16 exclude) {
  std::vector<u16> candidates;
  for (u16 m = 0; m < members_.size(); ++m) {
    if (m != id_ && m != exclude && table_[m].state != SwimState::kDead) {
      candidates.push_back(m);
    }
  }
  return rng::PickK(rng_, candidates, k);
}

void SwimPeer::OnRestart() {
  // Stable-storage incarnation: one past everything that circulated about us
  // before the crash (nothing can carry an incarnation above our own).
  ++incarnation_;
  for (MemberRecord& record : table_) {
    // Amnesia: the reboot lost the table. suspect_epoch deliberately
    // survives — it is a timer-validity token, and resetting it could let a
    // pre-crash DeathCheck match a post-restart suspicion's epoch.
    record.state = SwimState::kAlive;
    record.incarnation = 0;
  }
  table_[id_].incarnation = incarnation_;
  gossip_.clear();
  relays_.clear();
  probe_ = Probe{};
  rng::Shuffle(rng_, round_);
  round_pos_ = 0;
  LogEvent(id_, SwimState::kAlive, incarnation_);
  EnqueueGossip(id_, SwimState::kAlive, incarnation_);
  if (obs::TraceBuffer* tb = obs::ActiveBuffer()) {
    obs::EmitInstant(tb, "swim.rejoin." + members_[id_].name, Now());
  }
  for (u16 target : PickMembers(config_.ping_req_fanout, id_)) {
    ++joins_sent_;
    SendSwim(target, SwimMessageType::kJoin, ++next_seq_, id_, /*full_table=*/false);
  }
}

void SwimPeer::OnFrame(Packet frame) {
  EthernetView eth(frame);
  if (!eth.Valid() || eth.destination() != members_[id_].mac) {
    return;  // hub flood for someone else
  }
  Ipv4View ip(frame);
  if (!ip.Valid() || !ip.ProtocolIs(IpProtocol::kUdp)) {
    return;
  }
  UdpView udp(frame, ip.payload_offset());
  if (!udp.Valid() || udp.destination_port() != kSwimUdpPort) {
    return;
  }
  const std::span<const u8> payload = udp.Payload();
  if (payload.size() < kHeaderSize) {
    ++malformed_;
    return;
  }
  const u8 type_raw = payload[0];
  const u16 from = GetU16(payload, 1);
  const u32 seq = GetU32(payload, 3);
  const u16 subject = GetU16(payload, 7);
  const usize count = payload[9];
  if (type_raw > static_cast<u8>(SwimMessageType::kJoinAck) || from >= members_.size() ||
      from == id_ || payload.size() < kHeaderSize + count * kEntrySize) {
    ++malformed_;
    return;
  }
  // Piggybacked gossip merges first, whatever the message type: every
  // message is a dissemination vehicle.
  for (usize i = 0; i < count; ++i) {
    const usize at = kHeaderSize + i * kEntrySize;
    const u16 entry_subject = GetU16(payload, at);
    const u8 entry_state = payload[at + 2];
    const u32 entry_inc = GetU32(payload, at + 3);
    if (entry_subject >= members_.size() || entry_state > static_cast<u8>(SwimState::kDead)) {
      ++malformed_;
      continue;
    }
    ApplyUpdate(entry_subject, static_cast<SwimState>(entry_state), entry_inc);
  }
  // Direct evidence the sender is reachable while we hold it suspect or
  // dead: re-arm the assertion so the reply piggybacks it straight back to
  // the subject, which then refutes with a bumped incarnation. Without this
  // a partition-induced Dead{k} is permanent — the subject's own Alive{k}
  // cannot supersede at equal incarnation, nobody probes a dead member, and
  // the original gossip's bounded retransmissions may die out before ever
  // reaching the subject.
  if (table_[from].state != SwimState::kAlive) {
    EnqueueGossip(from, table_[from].state, table_[from].incarnation);
  }
  switch (static_cast<SwimMessageType>(type_raw)) {
    case SwimMessageType::kPing:
      HandlePing(from, seq, subject);
      break;
    case SwimMessageType::kAck:
      HandleAck(from, seq, subject);
      break;
    case SwimMessageType::kPingReq:
      HandlePingReq(from, seq, subject);
      break;
    case SwimMessageType::kJoin:
      HandleJoin(from, seq);
      break;
    case SwimMessageType::kJoinAck:
      HandleJoinAck();
      break;
  }
}

void SwimPeer::HandlePing(u16 from, u32 seq, u16 subject) {
  ++acks_sent_;
  SendSwim(from, SwimMessageType::kAck, seq, subject, /*full_table=*/false);
}

void SwimPeer::HandleAck(u16 from, u32 seq, u16 subject) {
  // Relay leg: we pinged `from` on some origin's behalf — forward the good
  // news, restamped with the probed member as subject.
  for (usize i = 0; i < relays_.size(); ++i) {
    if (relays_[i].seq == seq && relays_[i].subject == from) {
      const u16 origin = relays_[i].origin;
      relays_.erase(relays_.begin() + static_cast<std::ptrdiff_t>(i));
      SendSwim(origin, SwimMessageType::kAck, seq, from, /*full_table=*/false);
      break;
    }
  }
  if (probe_.active && probe_.seq == seq && !probe_.acked &&
      (from == probe_.target || subject == probe_.target)) {
    probe_.acked = true;
    ++acks_received_;
  }
}

void SwimPeer::HandlePingReq(u16 from, u32 seq, u16 subject) {
  if (subject >= members_.size()) {
    ++malformed_;
    return;
  }
  if (subject == id_) {
    // Asked about ourselves: that is its own proof of life.
    ++acks_sent_;
    SendSwim(from, SwimMessageType::kAck, seq, id_, /*full_table=*/false);
    return;
  }
  if (relays_.size() >= 32) {
    relays_.erase(relays_.begin());  // bounded: oldest relay is long expired
  }
  relays_.push_back(Relay{seq, from, subject});
  ++pings_relayed_;
  SendSwim(subject, SwimMessageType::kPing, seq, from, /*full_table=*/false);
}

void SwimPeer::HandleJoin(u16 from, u32 seq) {
  // The joiner's fresh Alive{inc} arrived in the piggyback; answer with a
  // full snapshot so it recovers the cluster view in one round trip.
  ++join_acks_sent_;
  SendSwim(from, SwimMessageType::kJoinAck, seq, id_, /*full_table=*/true);
}

void SwimPeer::HandleJoinAck() {}  // the snapshot rode in on the piggyback

void SwimPeer::ApplyUpdate(u16 subject, SwimState state, u32 incarnation) {
  if (subject == id_) {
    // Someone thinks we are suspect/dead: refute with a higher incarnation.
    if (state != SwimState::kAlive && incarnation >= incarnation_) {
      incarnation_ = incarnation + 1;
      table_[id_] = MemberRecord{SwimState::kAlive, incarnation_, 0};
      ++refutations_;
      LogEvent(id_, SwimState::kAlive, incarnation_);
      EnqueueGossip(id_, SwimState::kAlive, incarnation_);
    }
    return;
  }
  MemberRecord& record = table_[subject];
  if (!Supersedes(state, incarnation, record.state, record.incarnation)) {
    return;
  }
  record.state = state;
  record.incarnation = incarnation;
  LogEvent(subject, state, incarnation);
  EnqueueGossip(subject, state, incarnation);
  if (state == SwimState::kSuspect) {
    ++suspects_declared_;
    const u64 epoch = ++record.suspect_epoch;
    const Picoseconds expiry =
        Now() + static_cast<Picoseconds>(config_.suspicion_periods) * config_.protocol_period;
    host_.scheduler().At(expiry, [this, subject, epoch] { DeathCheck(subject, epoch); });
  } else if (state == SwimState::kDead) {
    ++deads_declared_;
  }
  if (obs::TraceBuffer* tb = obs::ActiveBuffer()) {
    obs::EmitInstant(tb, "swim." + members_[id_].name + "." + SwimStateName(state) + "." +
                             members_[subject].name,
                     Now());
  }
}

void SwimPeer::EnqueueGossip(u16 subject, SwimState state, u32 incarnation) {
  for (GossipUpdate& update : gossip_) {
    if (update.subject == subject) {
      update.state = state;
      update.incarnation = incarnation;
      update.sends_left = config_.gossip_transmissions;
      return;
    }
  }
  gossip_.push_back(GossipUpdate{subject, state, incarnation, config_.gossip_transmissions});
}

void SwimPeer::LogEvent(u16 subject, SwimState state, u32 incarnation) {
  events_.push_back(SwimEvent{Now(), id_, subject, state, incarnation});
}

void SwimPeer::SendSwim(u16 to, SwimMessageType type, u32 seq, u16 subject, bool full_table) {
  if (!CanSend() || to >= members_.size() || to == id_) {
    return;
  }
  std::vector<u8> payload;
  payload.reserve(kHeaderSize + config_.max_piggyback * kEntrySize);
  payload.push_back(static_cast<u8>(type));
  PutU16(payload, id_);
  PutU32(payload, seq);
  PutU16(payload, subject);
  payload.push_back(0);  // entry count, patched below
  usize count = 0;
  const auto add_entry = [&payload, &count](u16 s, SwimState st, u32 inc) {
    PutU16(payload, s);
    payload.push_back(static_cast<u8>(st));
    PutU32(payload, inc);
    ++count;
  };
  if (full_table) {
    const usize limit = std::min<usize>(members_.size(), 255);
    for (u16 m = 0; m < limit; ++m) {
      add_entry(m, table_[m].state, table_[m].incarnation);
    }
  } else {
    // Our own liveness rides on every message (free refutation/rejoin
    // spreading), then the most-underdisseminated queued updates — ties
    // break on lowest subject id so the pick order is seed-independent.
    add_entry(id_, SwimState::kAlive, incarnation_);
    while (count < config_.max_piggyback && !gossip_.empty()) {
      usize best = gossip_.size();
      for (usize i = 0; i < gossip_.size(); ++i) {
        if (gossip_[i].subject == id_) {
          continue;  // already included above
        }
        if (best == gossip_.size() || gossip_[i].sends_left > gossip_[best].sends_left ||
            (gossip_[i].sends_left == gossip_[best].sends_left &&
             gossip_[i].subject < gossip_[best].subject)) {
          best = i;
        }
      }
      if (best == gossip_.size()) {
        break;
      }
      GossipUpdate& update = gossip_[best];
      add_entry(update.subject, update.state, update.incarnation);
      ++gossip_entries_sent_;
      if (--update.sends_left == 0) {
        gossip_.erase(gossip_.begin() + static_cast<std::ptrdiff_t>(best));
      }
    }
  }
  payload[9] = static_cast<u8>(count);
  gossip_fanout_.Observe(count);
  const UdpPacketSpec spec{members_[to].mac,  members_[id_].mac, members_[id_].ip,
                           members_[to].ip,   kSwimUdpPort,      kSwimUdpPort};
  host_.Send(MakeUdpPacket(spec, payload));
}

u64 SwimPeer::EventsDigest() const {
  u64 h = kFnvOffset;
  for (const SwimEvent& event : events_) {
    h = Fnv1aU64(h, static_cast<u64>(event.at));
    h = Fnv1aU64(h, event.observer);
    h = Fnv1aU64(h, event.subject);
    h = Fnv1aU64(h, static_cast<u64>(event.state));
    h = Fnv1aU64(h, event.incarnation);
  }
  return h;
}

void SwimPeer::RegisterMetrics(MetricsRegistry& metrics, const std::string& prefix) const {
  metrics.Register(prefix + ".pings_sent", &pings_sent_);
  metrics.Register(prefix + ".acks_sent", &acks_sent_);
  metrics.Register(prefix + ".acks_received", &acks_received_);
  metrics.Register(prefix + ".ping_reqs_sent", &ping_reqs_sent_);
  metrics.Register(prefix + ".pings_relayed", &pings_relayed_);
  metrics.Register(prefix + ".joins_sent", &joins_sent_);
  metrics.Register(prefix + ".suspects_declared", &suspects_declared_);
  metrics.Register(prefix + ".deads_declared", &deads_declared_);
  metrics.Register(prefix + ".refutations", &refutations_);
  metrics.Register(prefix + ".gossip_entries_sent", &gossip_entries_sent_);
  metrics.Register(prefix + ".malformed", &malformed_);
  metrics.RegisterHistogram(prefix + ".gossip_fanout", &gossip_fanout_);
}

}  // namespace emu
