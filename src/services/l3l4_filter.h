// L3-L4 filter (§4.1).
//
// The paper provides a tool that emulates the iptables command-line
// interface and generates filter code that "slots into" the learning switch,
// turning it into an L3 filter over address sets/protocols or an L4 filter
// over TCP/UDP port ranges. Here the rule set is evaluated by a filter stage
// in front of an embedded LearningSwitch; rules are ordered, first match
// wins, and the default policy is configurable. iptables_cli.h parses
// iptables-like text into FilterRules.
#ifndef SRC_SERVICES_L3L4_FILTER_H_
#define SRC_SERVICES_L3L4_FILTER_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/core/service.h"
#include "src/net/ipv4.h"
#include "src/services/learning_switch.h"

namespace emu {

struct PortRange {
  u16 lo = 0;
  u16 hi = 65535;

  bool Contains(u16 port) const { return port >= lo && port <= hi; }
  bool IsAny() const { return lo == 0 && hi == 65535; }
};

struct FilterRule {
  enum class Action { kAccept, kDrop };

  Action action = Action::kDrop;
  std::optional<IpProtocol> protocol;  // unset: any IP protocol
  Ipv4Address src_base;
  u32 src_prefix = 0;  // 0 = any source
  Ipv4Address dst_base;
  u32 dst_prefix = 0;
  PortRange src_ports;
  PortRange dst_ports;

  std::string ToString() const;
};

// True when `frame` (an Ethernet/IPv4 frame) matches the rule.
bool RuleMatches(const FilterRule& rule, Packet& frame);

struct L3L4FilterConfig {
  std::vector<FilterRule> rules;
  FilterRule::Action default_action = FilterRule::Action::kAccept;
  LearningSwitchConfig switch_config;
};

class L3L4Filter : public Service {
 public:
  explicit L3L4Filter(L3L4FilterConfig config = {});
  ~L3L4Filter() override;

  std::string_view name() const override { return "emu_l3l4_filter"; }
  void Instantiate(Simulator& sim, Dataplane dp) override;
  ResourceUsage Resources() const override;
  Cycle ModuleLatency() const override;
  Cycle InitiationInterval() const override { return 3; }
  void RegisterMetrics(MetricsRegistry& registry) override;

  u64 accepted() const { return accepted_; }
  u64 filtered() const { return filtered_; }
  const LearningSwitch& embedded_switch() const { return *switch_; }

 private:
  HwProcess FilterStage();

  L3L4FilterConfig config_;
  Dataplane dp_;
  std::unique_ptr<SyncFifo<Packet>> accepted_fifo_;
  std::unique_ptr<LearningSwitch> switch_;
  ResourceUsage filter_resources_;
  u64 accepted_ = 0;
  u64 filtered_ = 0;
};

}  // namespace emu

#endif  // SRC_SERVICES_L3L4_FILTER_H_
