// Memcached server (§4.3, extended per §5.4).
//
// GET/SET/DELETE over UDP, binary or ASCII protocol. The paper's first
// prototype was latency-only (binary protocol, 6-byte keys, 8-byte values);
// later extensions added the ASCII protocol, larger sizes, DRAM, and
// multiple cores — all of which are configuration here:
//   - `protocol` selects binary/ASCII (the Table 4 evaluation uses ASCII);
//   - `backend` selects on-chip BRAM (low constant latency) or on-board
//     DRAM (bigger but slower and refresh-jittered), the §5.4 trade-off;
//   - `cores` > 1 instantiates one store+worker per core, GETs dispatched by
//     input port, SETs/DELETEs replicated to every core (which is why SET
//     throughput does not scale, §5.4).
// Storage is the Fig. 9 LRU block per core: full entries live in a slot
// array; the LRU index maps Pearson-hashed keys to slots.
#ifndef SRC_SERVICES_MEMCACHED_SERVICE_H_
#define SRC_SERVICES_MEMCACHED_SERVICE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/service.h"
#include "src/debug/extension_point.h"
#include "src/ip/cam.h"
#include "src/ip/checksum_unit.h"
#include "src/ip/dram_model.h"
#include "src/net/mac_address.h"
#include "src/net/memcached.h"
#include "src/services/lru_cache.h"

namespace emu {

enum class McBackend {
  kOnChip,  // BRAM: constant 1-cycle word access
  kDram,    // on-board DRAM: higher, variable latency (refresh)
};

struct MemcachedConfig {
  MacAddress mac = MacAddress::FromU48(0x02'00'00'00'ee'04);
  Ipv4Address ip = Ipv4Address(10, 0, 0, 211);
  McProtocol protocol = McProtocol::kAscii;  // as in the Table 4 setup
  McBackend backend = McBackend::kOnChip;
  usize capacity = 4096;        // entries per core
  usize max_key_bytes = 250;    // paper prototype: 6; later relaxed
  usize max_value_bytes = 1024;  // paper prototype: 8; later relaxed
  usize cores = 1;
  usize bus_bytes = 32;
  // Calibrated tail of the per-request FSM beyond the modelled parse/hash/
  // store costs (Table 4: ~103 cycles total -> 1.9 Mq/s, 1.21 us).
  Cycle turnaround_cycles = 65;

  // §5.4's scaling suggestion, implemented: "further scaling can be achieved
  // by using the Emu-based design as a (large) L1 cache ... where cache
  // misses are sent to a host". When enabled, GET misses are forwarded out
  // of `host_port` instead of answered; host replies coming back on that
  // port fill the cache and are forwarded to the requesting client's port
  // (learned per client MAC). SETs/DELETEs stay local to the cache tier.
  bool l1_cache_mode = false;
  u8 host_port = 0;
};

class MemcachedService : public Service {
 public:
  explicit MemcachedService(MemcachedConfig config = {});
  ~MemcachedService() override;

  std::string_view name() const override { return "emu_memcached"; }
  void Instantiate(Simulator& sim, Dataplane dp) override;
  ResourceUsage Resources() const override;
  Cycle ModuleLatency() const override { return 16; }
  Cycle InitiationInterval() const override { return 24; }
  void RegisterMetrics(MetricsRegistry& registry) override;

  // emu-chain: clients sit upstream on port 1. A plain server is a chain
  // tail (no downstream egress); the L1 tier forwards misses out of
  // `host_port`, which therefore continues downstream toward the pool.
  ChainStageIo ChainIo() const override {
    ChainStageIo io;
    io.forward_in_port = 1;
    io.reply_in_port = config_.host_port;
    io.downstream_mask =
        config_.l1_cache_mode ? static_cast<u8>(1u << config_.host_port) : u8{0};
    io.forward_mac = config_.mac;
    io.reply_mac = config_.mac;
    // The host tier's replies are routed by the client CAM, which binds the
    // requester MACs seen at ingress — the upstream neighbor under hop-by-hop
    // chain transport.
    io.reply_to_upstream = config_.l1_cache_mode;
    return io;
  }

  // Reproduces the §5.5 checksum bug: reply UDP checksums are computed by a
  // hardware unit whose carry fold is broken. Invisible on short replies,
  // wrong on longer ones — found in the paper via direction packets.
  void InjectChecksumBug(bool enabled);
  bool checksum_bug_injected() const;

  // §5.5: extends the service for direction. Binds controller-visible
  // variables — notably `checksum`, the last UDP checksum the hardware
  // computed (reporting it over direction packets is how the paper's authors
  // found their checksum bug) and the writable `inject_bug` knob — and adds
  // the main-loop extension point. Call before Instantiate().
  void AttachController(DirectionController* controller);

  // emu-fault: generalises the §5.5 flag into plan-driven points —
  // `memcached.csum.fold` (the carry-fold bug) plus one FIFO-stall target
  // per worker queue (`memcached.queue<i>`). Call after Instantiate().
  void RegisterFaultPoints(FaultRegistry& registry) override;

  u64 gets() const { return gets_; }
  u64 get_hits() const { return get_hits_; }
  u64 sets() const { return sets_; }
  u64 deletes() const { return deletes_; }
  u64 dropped() const { return dropped_; }
  u64 misses_forwarded() const { return misses_forwarded_; }
  u64 host_replies_forwarded() const { return host_replies_forwarded_; }
  u64 cache_fills() const { return cache_fills_; }

 private:
  struct Entry {
    std::string key;
    std::string value;
    u32 flags = 0;
    bool used = false;
  };

  struct CoreState {
    std::unique_ptr<LruCacheBlock> index;
    std::vector<Entry> slots;
    std::unique_ptr<SyncFifo<Packet>> queue;
  };

  HwProcess Dispatcher();
  HwProcess Worker(usize core);
  McResponse Execute(usize core, const McRequest& request);
  Cycle StoreAccessCycles(usize core, usize bytes);
  // L1-cache mode: host reply handling (fill + forward to the client).
  void FillCacheFromHostReply(const Packet& frame);

  MemcachedConfig config_;
  Dataplane dp_;
  std::vector<CoreState> cores_;
  std::unique_ptr<DramModel> dram_;
  std::unique_ptr<ChecksumUnit> checksum_unit_;
  Simulator* sim_ = nullptr;
  DirectionController* controller_ = nullptr;
  ExtensionPoint main_point_;
  u64 last_checksum_ = 0;
  ResourceUsage control_resources_;
  u64 gets_ = 0;
  u64 get_hits_ = 0;
  u64 sets_ = 0;
  u64 deletes_ = 0;
  u64 dropped_ = 0;
  // L1-cache mode state: client MAC -> FPGA port bindings for routing host
  // replies back, plus the tier statistics.
  std::unique_ptr<Cam> client_ports_;
  usize client_slot_ = 0;
  u64 misses_forwarded_ = 0;
  u64 host_replies_forwarded_ = 0;
  u64 cache_fills_ = 0;
};

}  // namespace emu

#endif  // SRC_SERVICES_MEMCACHED_SERVICE_H_
