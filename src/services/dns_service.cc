#include "src/services/dns_service.h"

#include <cassert>

#include "src/core/metrics.h"
#include "src/core/protocol_wrappers.h"
#include "src/fault/fault_registry.h"
#include "src/ip/pearson_hash.h"
#include "src/net/udp.h"
#include "src/netfpga/axis.h"
#include "src/netfpga/dataplane.h"
#include "src/services/reply_util.h"

namespace emu {
namespace {

u64 NameKey(const std::string& name) {
  return PearsonHash64(
      std::span<const u8>(reinterpret_cast<const u8*>(name.data()), name.size()));
}

// AAAA bindings live in the same hash table under a salted key so one block
// serves both record types.
constexpr u64 kV6KeySalt = 0x6666'0000'0000'0001ULL;

}  // namespace

DnsService::DnsService(DnsServiceConfig config) : config_(config) {}

DnsService::~DnsService() = default;

void DnsService::Instantiate(Simulator& sim, Dataplane dp) {
  assert(dp.rx != nullptr && dp.tx != nullptr);
  dp_ = dp;
  table_ = std::make_unique<HashCam>(sim, "dns_table", config_.table_capacity);
  records_.resize(config_.table_capacity);
  // Name-match BRAM alongside the hash table (26-byte names + addresses),
  // plus the parse/respond FSM (the paper: ~700 lines of C#).
  control_resources_ =
      HlsControlResources(10, config_.bus_bytes * 8) +
      BramResources(config_.table_capacity * (config_.max_name_bytes + 4) * 8) +
      ResourceUsage{1450, 900, 0};
  const usize main = sim.AddProcess(MainLoop(), "dns");
  elab::IoDecl(sim.catalog(), main)
      .Pops(dp_.rx)
      .Pushes(dp_.tx)
      .Reads(table_.get())
      .Writes(table_.get());
  for (Record& record : pending_records_) {
    InstallRecord(std::move(record));
  }
  pending_records_.clear();
}

ResourceUsage DnsService::Resources() const {
  return control_resources_ + table_->resources();
}

void DnsService::AttachController(DirectionController* controller) {
  controller_ = controller;
  if (controller_ == nullptr) {
    return;
  }
  main_point_ = ExtensionPoint(controller_, controller_->main_point());
  CaspMachine& machine = controller_->machine();
  machine.BindVariable({"resolved", [this] { return resolved_; }, nullptr});
  machine.BindVariable({"nxdomain", [this] { return nxdomain_; }, nullptr});
  machine.BindVariable({"last_id", [this] { return last_query_id_; }, nullptr});
  machine.BindVariable({"dns_dropped", [this] { return dropped_; }, nullptr});
}

void DnsService::RegisterFaultPoints(FaultRegistry& registry) {
  if (table_ != nullptr) {
    registry.RegisterSeuTarget("dns.table", table_->state_bits(),
                               [this](u64 bit) { table_->InjectBitFlip(bit); });
  }
}

Status DnsService::AddRecord(const std::string& name, Ipv4Address address) {
  Record record;
  record.name = name;
  record.address = address;
  return InstallRecord(std::move(record));
}

Status DnsService::AddRecordAaaa(const std::string& name, const Ipv6Address& address) {
  Record record;
  record.name = name;
  record.address6 = address;
  record.is_v6 = true;
  return InstallRecord(std::move(record));
}

Status DnsService::InstallRecord(Record record) {
  if (record.name.empty() || record.name.size() > config_.max_name_bytes) {
    return InvalidArgument("name exceeds configured limit");
  }
  if (table_ == nullptr) {
    // Not instantiated yet: buffer for installation at Instantiate().
    pending_records_.push_back(std::move(record));
    return Status::Ok();
  }
  const u64 key = NameKey(record.name) ^ (record.is_v6 ? kV6KeySalt : 0);
  // Reuse the slot when re-adding the same name/type.
  const u64 existing = table_->Read(key);
  if (table_->matched() && records_[existing].name == record.name &&
      records_[existing].is_v6 == record.is_v6) {
    records_[existing] = std::move(record);
    return Status::Ok();
  }
  // Find a free slot.
  for (usize slot = 0; slot < records_.size(); ++slot) {
    if (records_[slot].name.empty()) {
      if (!table_->Write(key, slot)) {
        return ResourceExhausted("hash table probe window full");
      }
      records_[slot] = std::move(record);
      return Status::Ok();
    }
  }
  return ResourceExhausted("resolution table full");
}

HwProcess DnsService::MainLoop() {
  for (;;) {
    co_await WaitUntil([this] { return !dp_.rx->Empty() && dp_.tx->PollCanPush(); });
    NetFpgaData dataplane;
    dataplane.tdata = dp_.rx->Pop();
    const usize words = WordsForBytes(dataplane.tdata.size(), config_.bus_bytes);
    co_await PauseFor(words);

    ArpWrapper arp(dataplane);
    if (arp.Reachable() && arp.OperIs(ArpOper::kRequest) && arp.target_ip() == config_.ip) {
      Packet reply =
          MakeArpReply(config_.mac, config_.ip, arp.sender_mac(), arp.sender_ip());
      CopyDataplaneStamps(dataplane.tdata, reply);
      NetFpgaData out;
      out.tdata = std::move(reply);
      NetFpga::SendBackToSource(out);
      co_await PauseFor(2);
      dp_.tx->Push(std::move(out.tdata));
      co_await Pause();
      continue;
    }

    UdpWrapper udp(dataplane);
    Ipv4Wrapper ip(dataplane);
    if (!udp.Reachable() || ip.destination() != config_.ip ||
        udp.destination_port() != kDnsPort) {
      ++dropped_;
      co_await Pause();
      continue;
    }

    auto query = ParseDnsQuery(udp.Payload());
    std::vector<u8> response;
    if (!query.ok()) {
      ++dropped_;
      co_await Pause();
      continue;
    }
    last_query_id_ = query->header.id;

    // Main-loop extension point (§5.5); the call scope feeds `backtrace`.
    DirectedCallScope call_scope(controller_, "handle_query");
    if (controller_ != nullptr) {
      if (!main_point_.Activate()) {
        while (controller_->broken()) {
          co_await Pause();
        }
      }
    }
    // Bytewise walk of the query name plus answer assembly — the dominant
    // cost of the prototype's serial FSM (see DnsServiceConfig) — with the
    // Pearson hash of the name overlapped inside it.
    co_await PauseFor(config_.parse_cycles + query->question.name.size() / 8);

    const bool is_aaaa = query->question.qtype == kDnsTypeAaaa;
    if ((query->question.qtype != kDnsTypeA && !is_aaaa) ||
        query->question.qclass != kDnsClassIn ||
        query->question.name.size() > config_.max_name_bytes) {
      response = BuildDnsError(*query, DnsRcode::kNotImp);
      ++nxdomain_;
    } else {
      const u64 key = NameKey(query->question.name) ^ (is_aaaa ? kV6KeySalt : 0);
      const u64 slot = table_->Read(key);
      if (table_->matched() && records_[slot].name == query->question.name &&
          records_[slot].is_v6 == is_aaaa) {
        response = is_aaaa ? BuildDnsResponseAaaa(*query, records_[slot].address6)
                           : BuildDnsResponse(*query, records_[slot].address);
        ++resolved_;
      } else {
        // Inform the client we cannot resolve the name (§4.3).
        response = BuildDnsError(*query, DnsRcode::kNxDomain);
        ++nxdomain_;
      }
    }

    // Reuse the request frame: swap directions, splice in the new payload,
    // refresh lengths and checksums.
    Packet& frame = dataplane.tdata;
    SwapEthernetAddresses(frame);
    const usize udp_offset = Ipv4View(frame).payload_offset();
    frame.Resize(udp_offset + kUdpHeaderSize);
    frame.Append(response);
    Ipv4View ip_out(frame);
    ip_out.set_total_length(
        static_cast<u16>(frame.size() - kEthernetHeaderSize));
    SwapIpv4Addresses(frame);
    UdpView udp_out(frame, udp_offset);
    SwapUdpPorts(frame);
    udp_out.set_length(static_cast<u16>(kUdpHeaderSize + response.size()));
    udp_out.UpdateChecksum(ip_out);
    if (frame.size() < kEthernetMinFrame) {
      frame.Resize(kEthernetMinFrame);
    }

    NetFpga::SendBackToSource(dataplane);
    co_await PauseFor(2);  // response assembly + checksum fold
    const usize out_words = WordsForBytes(frame.size(), config_.bus_bytes);
    dp_.tx->Push(std::move(dataplane.tdata));
    co_await PauseFor(out_words > 1 ? out_words - 1 : 1);
    co_await PauseFor(config_.turnaround_cycles);  // FSM tail (throughput)
  }
}


void DnsService::RegisterMetrics(MetricsRegistry& registry) {
  registry.Register("dns.resolved", &resolved_);
  registry.Register("dns.nxdomain", &nxdomain_);
  registry.Register("dns.dropped", &dropped_);
}

}  // namespace emu
