// DNS server (§4.3).
//
// Non-recursive resolution of A-record queries from a fixed table. The
// paper's prototype resolves names of at most 26 bytes to IPv4 addresses and
// tells the client when it cannot resolve a name; both the limit and the
// table size are configuration here ("these constraints can be relaxed").
// The resolution table is a Pearson-hashed associative memory (HashCam) with
// the full names kept alongside to reject hash collisions.
#ifndef SRC_SERVICES_DNS_SERVICE_H_
#define SRC_SERVICES_DNS_SERVICE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/service.h"
#include "src/debug/extension_point.h"
#include "src/ip/hash_cam.h"
#include "src/net/dns.h"
#include "src/net/mac_address.h"

namespace emu {

struct DnsServiceConfig {
  MacAddress mac = MacAddress::FromU48(0x02'00'00'00'ee'03);
  Ipv4Address ip = Ipv4Address(10, 0, 0, 53);
  usize max_name_bytes = 26;  // the paper's prototype limit
  usize table_capacity = 512;
  usize bus_bytes = 32;
  // Calibrated request-FSM cost: the prototype walks the query name and
  // builds the answer bytewise (Table 4: ~170 cycles -> 1.18 Mq/s, 1.82 us).
  Cycle parse_cycles = 150;
  Cycle turnaround_cycles = 10;
};

class DnsService : public Service {
 public:
  explicit DnsService(DnsServiceConfig config = {});
  ~DnsService() override;

  std::string_view name() const override { return "emu_dns"; }
  void Instantiate(Simulator& sim, Dataplane dp) override;
  ResourceUsage Resources() const override;
  Cycle ModuleLatency() const override { return 14; }
  Cycle InitiationInterval() const override { return 4; }
  void RegisterMetrics(MetricsRegistry& registry) override;

  // Control plane: install a name -> address record. Fails when the name
  // exceeds the configured limit or the table is full. Records added before
  // Instantiate() are buffered and installed at instantiation.
  Status AddRecord(const std::string& name, Ipv4Address address);

  // The §4.3 relaxation to IPv6: install an AAAA record.
  Status AddRecordAaaa(const std::string& name, const Ipv6Address& address);

  u64 resolved() const { return resolved_; }
  u64 nxdomain() const { return nxdomain_; }
  u64 dropped() const { return dropped_; }

  // §5.5: extends the service for direction (binds resolved/nxdomain/last_id
  // variables and the main-loop extension point). Call before Instantiate().
  void AttachController(DirectionController* controller);

  // emu-fault: registers `dns.table` as an SEU target (bit flips in the
  // resolution HashCam — corrupted entries degrade to NXDOMAIN, never
  // crash). Call after Instantiate().
  void RegisterFaultPoints(FaultRegistry& registry) override;

 private:
  struct Record {
    std::string name;
    Ipv4Address address;
    Ipv6Address address6;
    bool is_v6 = false;
  };

  HwProcess MainLoop();
  Status InstallRecord(Record record);

  DnsServiceConfig config_;
  Dataplane dp_;
  DirectionController* controller_ = nullptr;
  ExtensionPoint main_point_;
  u64 last_query_id_ = 0;
  std::unique_ptr<HashCam> table_;
  std::vector<Record> records_;  // slot storage (BRAM contents)
  std::vector<Record> pending_records_;  // added before instantiation
  ResourceUsage control_resources_;
  u64 resolved_ = 0;
  u64 nxdomain_ = 0;
  u64 dropped_ = 0;
};

}  // namespace emu

#endif  // SRC_SERVICES_DNS_SERVICE_H_
