#include "src/services/learning_switch.h"

#include <cassert>

#include "src/core/metrics.h"
#include "src/net/ethernet.h"
#include "src/netfpga/dataplane.h"
#include "src/obs/trace_hooks.h"

namespace emu {

LearningSwitch::LearningSwitch(LearningSwitchConfig config) : config_(config) {}

LearningSwitch::~LearningSwitch() = default;

void LearningSwitch::Instantiate(Simulator& sim, Dataplane dp) {
  assert(dp.rx != nullptr && dp.tx != nullptr);
  sim_ = &sim;
  dp_ = dp;
  if (config_.cam == CamKind::kIpBlock) {
    cam_ = std::make_unique<Cam>(sim, "mac_cam", config_.table_entries, 48, 8);
  } else {
    cam_ = std::make_unique<LogicCam>(sim, "mac_cam", config_.table_entries, 48, 8);
  }
  lookup_to_decide_ =
      std::make_unique<SyncFifo<Packet>>(sim, "lookup_to_decide", 8, config_.bus_bytes * 8);
  decide_to_forward_ =
      std::make_unique<SyncFifo<Packet>>(sim, "decide_to_forward", 8, config_.bus_bytes * 8);
  // Three Kiwi threads over the datapath: lookup, decide, forward+learn.
  // Their scheduler states plus the inter-stage FIFOs are the ~15% of the
  // core that is not the CAM (the paper's breakdown in §5.3).
  control_resources_ = HlsControlResources(3, config_.bus_bytes * 8) +
                       HlsControlResources(2, config_.bus_bytes * 8) +
                       HlsControlResources(4, config_.bus_bytes * 8) +
                       lookup_to_decide_->resources() + decide_to_forward_->resources();
  const usize lookup = sim.AddProcess(LookupStage(), "switch_lookup");
  const usize decide = sim.AddProcess(DecideStage(), "switch_decide");
  const usize forward = sim.AddProcess(ForwardAndLearnStage(), "switch_forward");
  // Static IO (emu-lint): cam_ is held by interface pointer, so it is
  // referenced by its constructed name.
  elab::IoDecl(sim.catalog(), lookup)
      .Pops(dp_.rx)
      .Pushes(lookup_to_decide_.get())
      .Reads(std::string("mac_cam"));
  elab::IoDecl(sim.catalog(), decide)
      .Pops(lookup_to_decide_.get())
      .Pushes(decide_to_forward_.get());
  elab::IoDecl(sim.catalog(), forward)
      .Pops(decide_to_forward_.get())
      .Pushes(dp_.tx)
      .Reads(std::string("mac_cam"))
      .Writes(std::string("mac_cam"));
}

ResourceUsage LearningSwitch::Resources() const {
  ResourceUsage usage = control_resources_;
  if (config_.cam == CamKind::kIpBlock) {
    usage += static_cast<const Cam*>(cam_.get())->resources();
  } else {
    usage += static_cast<const LogicCam*>(cam_.get())->resources();
  }
  return usage;
}

Cycle LearningSwitch::ModuleLatency() const {
  // Measured for minimal frames on the 256-bit bus: 8 cycles with the CAM IP
  // block (Table 3), plus the logic CAM's extra lookup cycle.
  return 8 + (cam_->lookup_latency() - 1);
}

// Stage 1: stream the frame in (one bus beat per cycle) while the CAM
// resolves the destination MAC; the lookup overlaps the body beats.
HwProcess LearningSwitch::LookupStage() {
  for (;;) {
    co_await WaitUntil(
        [this] { return !dp_.rx->Empty() && lookup_to_decide_->PollCanPush(); });
    {
      NetFpgaData dataplane;
      dataplane.tdata = dp_.rx->Pop();

      EthernetView eth(dataplane.tdata);
      bool dstmac_lut_hit = false;
      u64 lut_element_op = 0;
      if (eth.Valid()) {
        ++lookups_;
        const CamLookupResult result = cam_->Lookup(eth.destination().ToU48());
        dstmac_lut_hit = result.hit && !eth.destination().IsMulticast();
        lut_element_op = result.value;
        if (dstmac_lut_hit) {
          ++hits_;
        }
      }
      const usize words = WordsForBytes(dataplane.tdata.size(), config_.bus_bytes);
      // Stage span: body beats overlapped with the CAM lookup (Table 4's
      // per-module latency decomposition, read off the trace).
      if (obs::TraceBuffer* tb = obs::ActiveBuffer()) {
        if (obs::FrameTraceId(dataplane.tdata) != 0) {
          obs::EmitComplete(tb, "switch.lookup", sim_->NowPs(),
                            static_cast<Picoseconds>(words + (cam_->lookup_latency() - 1)) *
                                sim_->cycle_period_ps());
        }
      }
      co_await PauseFor(words + (cam_->lookup_latency() - 1));

      // Configure the metadata: unicast on a hit, broadcast otherwise
      // (Fig. 2 lines 5-9); a frame with no output set would be dropped.
      if (dstmac_lut_hit) {
        NetFpga::SetOutputPort(dataplane, lut_element_op);
      } else {
        NetFpga::Broadcast(dataplane);
      }
      lookup_to_decide_->Push(std::move(dataplane.tdata));
      co_await Pause();
    }
  }
}

// Stage 2: the Kiwi scheduling barrier between the forwarding decision and
// the learning logic (Fig. 2 line 11) — one scheduler state of its own.
HwProcess LearningSwitch::DecideStage() {
  for (;;) {
    co_await WaitUntil(
        [this] { return !lookup_to_decide_->Empty() && decide_to_forward_->PollCanPush(); });
    Packet frame = lookup_to_decide_->Pop();
    co_await Pause();  // Kiwi.Pause()
    decide_to_forward_->Push(std::move(frame));
    co_await Pause();
  }
}

// Stage 3: learn the source MAC ("the switch learns", Fig. 2 lines 14-18)
// and stream the frame out.
HwProcess LearningSwitch::ForwardAndLearnStage() {
  for (;;) {
    co_await WaitUntil(
        [this] { return !decide_to_forward_->Empty() && dp_.tx->PollCanPush(); });
    {
      Packet frame = decide_to_forward_->Pop();
      EthernetView eth(frame);

      if (eth.Valid()) {
        const MacAddress src = eth.source();
        if (!src.IsMulticast() && !src.IsZero()) {
          const CamLookupResult existing = cam_->Lookup(src.ToU48());
          if (!existing.hit) {
            cam_->Write(free_slot_, src.ToU48(), frame.src_port());
            free_slot_ = (free_slot_ + 1) % config_.table_entries;
            ++learned_;
          } else if (existing.value != frame.src_port()) {
            // Station moved: refresh the binding in place.
            cam_->Write(existing.index, src.ToU48(), frame.src_port());
          }
        }
      }
      co_await Pause();

      const usize words = WordsForBytes(frame.size(), config_.bus_bytes);
      if (obs::TraceBuffer* tb = obs::ActiveBuffer()) {
        if (obs::FrameTraceId(frame) != 0) {
          obs::EmitComplete(tb, "switch.forward", sim_->NowPs(),
                            static_cast<Picoseconds>(words > 1 ? words - 1 : 1) *
                                sim_->cycle_period_ps());
        }
      }
      dp_.tx->Push(std::move(frame));
      co_await PauseFor(words > 1 ? words - 1 : 1);
    }
  }
}


void LearningSwitch::RegisterMetrics(MetricsRegistry& registry) {
  registry.Register("switch.lookups", &lookups_);
  registry.Register("switch.hits", &hits_);
  registry.Register("switch.learned", &learned_);
}

}  // namespace emu
