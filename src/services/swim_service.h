// SWIM membership (emu-gossip): weakly-consistent failure detection over the
// event-driven simulator, after Das, Gupta & Motivala's SWIM and the
// membership-protocol assignment stack in SNIPPETS.md (EmulNet/MP1Node).
//
// One SwimPeer runs on every SimHost of a HubTopology. Each protocol period
// the peer pings one member (randomized round-robin: a seed-stable shuffle
// of the member list, reshuffled when exhausted); if no ack arrives within
// the direct timeout it asks `ping_req_fanout` random proxies to ping the
// target on its behalf (indirect probe), and if the full probe window
// closes unacked the target becomes *suspected*. Suspicion is gossiped;
// after `suspicion_periods` protocol periods without refutation the peer
// declares the target *dead*. A suspected member that hears about its own
// suspicion refutes it by bumping its incarnation number and gossiping
// Alive{inc+1} — precedence is (incarnation, state): higher incarnation
// always wins, and at equal incarnation Dead > Suspect > Alive.
//
// Dissemination is infection-style: every protocol message carries up to
// `max_piggyback` membership updates, each retransmitted a bounded number of
// times; there are no broadcast rounds.
//
// Crash/restart integration: the peer is wired to the host's lifecycle
// (SimHost::SetOnRestart). While the host is down the peer is silent — its
// timers keep their cadence but do nothing, and the host disposes arriving
// frames. When the restart completes the peer resets its protocol state,
// bumps its incarnation past anything that circulated about it (the
// incarnation counter models stable storage: it survives the reboot), and
// rejoins by sending Join to a few random members; JoinAck replies carry a
// full membership snapshot.
//
// Determinism: all of a peer's state lives on its host's shard and is only
// touched from that shard's thread (frame delivery + EventScheduler timers).
// Randomness comes from the peer's own seeded Rng via the seed-stable
// rng::Shuffle/PickK helpers, so membership-event logs and their digests are
// bit-exact across replays and ParallelRunner thread counts.
#ifndef SRC_SERVICES_SWIM_SERVICE_H_
#define SRC_SERVICES_SWIM_SERVICE_H_

#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/core/histogram.h"
#include "src/net/udp.h"
#include "src/sim/sim_host.h"

namespace emu {

class MetricsRegistry;

inline constexpr u16 kSwimUdpPort = 7946;

enum class SwimState : u8 { kAlive = 0, kSuspect = 1, kDead = 2 };
const char* SwimStateName(SwimState state);

enum class SwimMessageType : u8 {
  kPing = 0,
  kAck = 1,
  kPingReq = 2,
  kJoin = 3,
  kJoinAck = 4,
};

// Static cluster directory: member id -> addresses. Every peer gets the same
// list; ids are indices into it.
struct SwimMember {
  std::string name;
  MacAddress mac;
  Ipv4Address ip;
};

struct SwimConfig {
  Picoseconds protocol_period = 1 * kPicosPerMilli;
  // Probe deadlines, measured from the probe's start: direct ack by
  // `direct_timeout` or the indirect phase begins; any ack by
  // `indirect_timeout` or the target is suspected. Must both be < period.
  Picoseconds direct_timeout = 200 * kPicosPerMicro;
  Picoseconds indirect_timeout = 600 * kPicosPerMicro;
  u32 suspicion_periods = 3;   // suspect -> dead after this many periods
  usize ping_req_fanout = 2;   // indirect-probe proxies, and Join targets
  usize max_piggyback = 6;     // membership updates per message
  u32 gossip_transmissions = 4;  // times each update is piggybacked
  // Protocol stop time: no probe round starts at or past this simulated
  // time. Responses (acks, relays, join acks) still flow so probes already
  // in flight complete instead of turning into spurious end-of-run
  // suspicions; response chains are finite, so a topology Run() reaches
  // quiescence shortly after. 0 keeps the protocol running forever — only
  // use under RunUntil.
  Picoseconds run_until = 0;
};

// One membership-table transition as observed by one peer — the protocol's
// flight recorder. The harness derives detection latency, false positives,
// and rejoin convergence from these, and digests them for replay checks.
struct SwimEvent {
  Picoseconds at = 0;
  u16 observer = 0;
  u16 subject = 0;
  SwimState state = SwimState::kAlive;
  u32 incarnation = 0;
};

class SwimPeer {
 public:
  // `seed` feeds this peer's private Rng (pass e.g. run_seed ^ id). The
  // member list must be identical on every peer; `id` indexes it.
  SwimPeer(SimHost& host, u16 id, std::vector<SwimMember> members, SwimConfig config,
           u64 seed);

  // Installs the host hooks (App + OnRestart) and schedules the first
  // protocol tick, staggered by id so peers do not probe in lockstep.
  void Start();

  u16 id() const { return id_; }
  u32 incarnation() const { return incarnation_; }
  SwimState StateOf(u16 member) const { return table_[member].state; }
  u32 IncarnationOf(u16 member) const { return table_[member].incarnation; }

  const std::vector<SwimEvent>& events() const { return events_; }
  // FNV-1a over the serialized event log; equal iff the peer observed the
  // same transitions at the same simulated times.
  u64 EventsDigest() const;

  u64 pings_sent() const { return pings_sent_; }
  u64 acks_received() const { return acks_received_; }
  u64 ping_reqs_sent() const { return ping_reqs_sent_; }
  u64 joins_sent() const { return joins_sent_; }
  u64 suspects_declared() const { return suspects_declared_; }
  u64 deads_declared() const { return deads_declared_; }
  u64 refutations() const { return refutations_; }
  u64 malformed() const { return malformed_; }

  // Piggybacked updates per sent message.
  const Histogram& gossip_fanout() const { return gossip_fanout_; }

  // Registers the peer's counters and the gossip-fanout histogram under
  // `prefix` (e.g. "swim.h3").
  void RegisterMetrics(MetricsRegistry& metrics, const std::string& prefix) const;

 private:
  struct MemberRecord {
    SwimState state = SwimState::kAlive;
    u32 incarnation = 0;
    u64 suspect_epoch = 0;  // invalidates stale death checks
  };
  struct GossipUpdate {
    u16 subject = 0;
    SwimState state = SwimState::kAlive;
    u32 incarnation = 0;
    u32 sends_left = 0;
  };
  struct Probe {
    u32 seq = 0;
    u16 target = 0;
    bool acked = false;
    bool active = false;
  };
  struct Relay {  // pending ping-req forward: who asked us about whom
    u32 seq = 0;
    u16 origin = 0;
    u16 subject = 0;
  };

  Picoseconds Now() const { return host_.scheduler().now(); }
  bool CanSend() const { return host_.up(); }
  // Gates new probe rounds only: a responder must keep answering past
  // run_until or the unanswered ping reads as a death at the horizon.
  bool ProtocolActive() const {
    return config_.run_until == 0 || Now() < config_.run_until;
  }

  void OnFrame(Packet frame);
  void OnRestart();
  void Tick();
  void ScheduleTick(Picoseconds at);
  void DirectTimeout(u32 seq);
  void IndirectTimeout(u32 seq);
  void DeathCheck(u16 subject, u64 epoch);

  void HandlePing(u16 from, u32 seq, u16 subject);
  void HandleAck(u16 from, u32 seq, u16 subject);
  void HandlePingReq(u16 from, u32 seq, u16 subject);
  void HandleJoin(u16 from, u32 seq);
  void HandleJoinAck();

  // Merges one membership assertion through the (incarnation, state)
  // precedence rules; logs, gossips, and schedules suspicion expiry on
  // change. Assertions about self turn into refutations.
  void ApplyUpdate(u16 subject, SwimState state, u32 incarnation);
  void EnqueueGossip(u16 subject, SwimState state, u32 incarnation);
  void LogEvent(u16 subject, SwimState state, u32 incarnation);

  // Next randomized-round-robin probe target; members_.size() when none.
  u16 NextTarget();
  // Up to `k` random non-dead members, excluding self and `exclude`.
  std::vector<u16> PickMembers(usize k, u16 exclude);

  void SendSwim(u16 to, SwimMessageType type, u32 seq, u16 subject, bool full_table);

  SimHost& host_;
  u16 id_;
  std::vector<SwimMember> members_;
  SwimConfig config_;
  Rng rng_;

  u32 incarnation_ = 0;  // survives restarts (stable storage)
  std::vector<MemberRecord> table_;
  std::vector<GossipUpdate> gossip_;
  std::vector<u16> round_;  // shuffled probe order
  usize round_pos_ = 0;
  Probe probe_;
  std::vector<Relay> relays_;
  u32 next_seq_ = 0;

  std::vector<SwimEvent> events_;
  Histogram gossip_fanout_;
  u64 pings_sent_ = 0;
  u64 acks_sent_ = 0;
  u64 acks_received_ = 0;
  u64 ping_reqs_sent_ = 0;
  u64 pings_relayed_ = 0;
  u64 joins_sent_ = 0;
  u64 join_acks_sent_ = 0;
  u64 suspects_declared_ = 0;
  u64 deads_declared_ = 0;
  u64 refutations_ = 0;
  u64 gossip_entries_sent_ = 0;
  u64 malformed_ = 0;
};

// Simulated-time bound by which every up member must have declared a member
// dead after it crashed (the gossip_soak completeness invariant): worst-case
// randomized round-robin delay until every peer has probed or heard, plus
// the suspicion window, plus slack for gossip propagation.
Picoseconds SwimDetectionBound(const SwimConfig& config, usize cluster_size);

}  // namespace emu

#endif  // SRC_SERVICES_SWIM_SERVICE_H_
