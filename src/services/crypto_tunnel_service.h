// Encrypting tunnel — the "bespoke feature, e.g., encryption schemes" of §4.
//
// A transparent payload-encryption gateway between a plaintext side and a
// ciphertext side of the NetFPGA: UDP datagrams entering a plain port leave
// the cipher port with their payload Speck-CTR encrypted under the
// configured key and an 8-byte nonce header prepended; datagrams entering
// the cipher port are validated, decrypted, and forwarded to the plain port.
// Two tunnel instances with the same key therefore form an encrypted link
// (exercised by the tests). Ethernet/IP/UDP headers pass through untouched
// apart from length/checksum fixups, so the services behind the tunnel are
// oblivious to it.
#ifndef SRC_SERVICES_CRYPTO_TUNNEL_SERVICE_H_
#define SRC_SERVICES_CRYPTO_TUNNEL_SERVICE_H_

#include <memory>

#include "src/core/service.h"
#include "src/ip/speck_cipher.h"

namespace emu {

struct CryptoTunnelConfig {
  SpeckCipher::Key key = {0x03020100, 0x0b0a0908, 0x13121110, 0x1b1a1918};
  u8 plain_port = 0;   // cleartext side
  u8 cipher_port = 1;  // encrypted side
  u64 nonce_seed = 0x0123456789abcdefULL;  // deterministic nonce stream
  usize bus_bytes = 32;
};

class CryptoTunnelService : public Service {
 public:
  explicit CryptoTunnelService(CryptoTunnelConfig config = {});
  ~CryptoTunnelService() override;

  std::string_view name() const override { return "emu_crypto_tunnel"; }
  void Instantiate(Simulator& sim, Dataplane dp) override;
  ResourceUsage Resources() const override;
  Cycle ModuleLatency() const override { return 12 + kSpeckRounds; }
  Cycle InitiationInterval() const override { return 8; }
  void RegisterMetrics(MetricsRegistry& registry) override;

  u64 encrypted() const { return encrypted_; }
  u64 decrypted() const { return decrypted_; }
  u64 dropped() const { return dropped_; }

 private:
  HwProcess MainLoop();

  CryptoTunnelConfig config_;
  Dataplane dp_;
  std::unique_ptr<SpeckCipher> cipher_;
  ResourceUsage control_resources_;
  u64 next_nonce_ = 0;
  u64 encrypted_ = 0;
  u64 decrypted_ = 0;
  u64 dropped_ = 0;
};

}  // namespace emu

#endif  // SRC_SERVICES_CRYPTO_TUNNEL_SERVICE_H_
