#include "src/services/crypto_tunnel_service.h"

#include <cassert>

#include "src/common/bit_util.h"
#include "src/core/metrics.h"
#include "src/core/protocol_wrappers.h"
#include "src/net/udp.h"
#include "src/netfpga/axis.h"
#include "src/netfpga/dataplane.h"

namespace emu {
namespace {

constexpr usize kNonceBytes = 8;

}  // namespace

CryptoTunnelService::CryptoTunnelService(CryptoTunnelConfig config)
    : config_(config), next_nonce_(config.nonce_seed) {}

CryptoTunnelService::~CryptoTunnelService() = default;

void CryptoTunnelService::Instantiate(Simulator& sim, Dataplane dp) {
  assert(dp.rx != nullptr && dp.tx != nullptr);
  dp_ = dp;
  cipher_ = std::make_unique<SpeckCipher>(sim, "tunnel_speck", config_.key);
  control_resources_ = HlsControlResources(7, config_.bus_bytes * 8) + ResourceUsage{160, 140, 0};
  const usize main = sim.AddProcess(MainLoop(), "crypto_tunnel");
  elab::IoDecl(sim.catalog(), main).Pops(dp_.rx).Pushes(dp_.tx);
}

ResourceUsage CryptoTunnelService::Resources() const {
  return control_resources_ + cipher_->resources();
}

HwProcess CryptoTunnelService::MainLoop() {
  for (;;) {
    co_await WaitUntil([this] { return !dp_.rx->Empty() && dp_.tx->PollCanPush(); });
    NetFpgaData dataplane;
    dataplane.tdata = dp_.rx->Pop();
    const usize words = WordsForBytes(dataplane.tdata.size(), config_.bus_bytes);
    co_await PauseFor(words);

    const u8 in_port = dataplane.tdata.src_port();
    UdpWrapper udp(dataplane);
    if (!udp.Reachable() ||
        (in_port != config_.plain_port && in_port != config_.cipher_port)) {
      ++dropped_;
      co_await Pause();
      continue;
    }

    Packet& frame = dataplane.tdata;
    Ipv4View ip(frame);
    const usize udp_offset = ip.payload_offset();
    UdpView udp_view(frame, udp_offset);
    const usize payload_len = udp_view.length() - kUdpHeaderSize;
    const usize payload_offset = udp_offset + kUdpHeaderSize;

    if (in_port == config_.plain_port) {
      // Encrypt: prepend the nonce, cipher the payload.
      const u64 nonce = next_nonce_++;
      std::vector<u8> payload(frame.View(payload_offset, payload_len).begin(),
                              frame.View(payload_offset, payload_len).end());
      cipher_->CtrCrypt(nonce, payload);
      frame.Resize(payload_offset + kNonceBytes);
      BitUtil::Set64(frame.MutableView(payload_offset, kNonceBytes), 0, nonce);
      frame.Append(payload);
      ++encrypted_;
      NetFpga::SetOutputPort(dataplane, config_.cipher_port);
    } else {
      // Decrypt: strip the nonce, restore the payload.
      if (payload_len < kNonceBytes) {
        ++dropped_;
        co_await Pause();
        continue;
      }
      const u64 nonce = BitUtil::Get64(frame.View(payload_offset, kNonceBytes), 0);
      std::vector<u8> payload(
          frame.View(payload_offset + kNonceBytes, payload_len - kNonceBytes).begin(),
          frame.View(payload_offset + kNonceBytes, payload_len - kNonceBytes).end());
      cipher_->CtrCrypt(nonce, payload);
      frame.Resize(payload_offset);
      frame.Append(payload);
      ++decrypted_;
      NetFpga::SetOutputPort(dataplane, config_.plain_port);
    }

    // Fix up lengths and checksums after the payload rewrite.
    Ipv4View ip_out(frame);
    ip_out.set_total_length(static_cast<u16>(frame.size() - kEthernetHeaderSize));
    ip_out.UpdateChecksum();
    UdpView udp_out(frame, udp_offset);
    udp_out.set_length(static_cast<u16>(frame.size() - payload_offset + kUdpHeaderSize));
    udp_out.UpdateChecksum(ip_out);
    if (frame.size() < kEthernetMinFrame) {
      frame.Resize(kEthernetMinFrame);
    }

    // One Speck block pipelines per cycle after the rounds fill the pipe.
    co_await PauseFor(cipher_->CyclesForBytes(payload_len));
    const usize out_words = WordsForBytes(frame.size(), config_.bus_bytes);
    dp_.tx->Push(std::move(dataplane.tdata));
    co_await PauseFor(out_words > 1 ? out_words - 1 : 1);
  }
}


void CryptoTunnelService::RegisterMetrics(MetricsRegistry& registry) {
  registry.Register("crypto.encrypted", &encrypted_);
  registry.Register("crypto.decrypted", &decrypted_);
  registry.Register("crypto.dropped", &dropped_);
}

}  // namespace emu
