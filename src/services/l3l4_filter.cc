#include "src/services/l3l4_filter.h"

#include <cassert>
#include <cstdio>

#include "src/core/metrics.h"
#include "src/net/ethernet.h"
#include "src/net/tcp.h"
#include "src/net/udp.h"
#include "src/netfpga/axis.h"

namespace emu {

std::string FilterRule::ToString() const {
  std::string out = action == Action::kDrop ? "DROP" : "ACCEPT";
  if (protocol.has_value()) {
    switch (*protocol) {
      case IpProtocol::kIcmp:
        out += " icmp";
        break;
      case IpProtocol::kTcp:
        out += " tcp";
        break;
      case IpProtocol::kUdp:
        out += " udp";
        break;
    }
  }
  char buf[64];
  if (src_prefix != 0) {
    std::snprintf(buf, sizeof(buf), " src=%s/%u", src_base.ToString().c_str(), src_prefix);
    out += buf;
  }
  if (dst_prefix != 0) {
    std::snprintf(buf, sizeof(buf), " dst=%s/%u", dst_base.ToString().c_str(), dst_prefix);
    out += buf;
  }
  if (!src_ports.IsAny()) {
    std::snprintf(buf, sizeof(buf), " sport=%u:%u", src_ports.lo, src_ports.hi);
    out += buf;
  }
  if (!dst_ports.IsAny()) {
    std::snprintf(buf, sizeof(buf), " dport=%u:%u", dst_ports.lo, dst_ports.hi);
    out += buf;
  }
  return out;
}

bool RuleMatches(const FilterRule& rule, Packet& frame) {
  EthernetView eth(frame);
  if (!eth.Valid() || !eth.EtherTypeIs(EtherType::kIpv4)) {
    return false;  // filter applies to IPv4 traffic only
  }
  Ipv4View ip(frame);
  if (!ip.Valid()) {
    return false;
  }
  if (rule.protocol.has_value() && !ip.ProtocolIs(*rule.protocol)) {
    return false;
  }
  if (rule.src_prefix != 0 && !ip.source().InSubnet(rule.src_base, rule.src_prefix)) {
    return false;
  }
  if (rule.dst_prefix != 0 && !ip.destination().InSubnet(rule.dst_base, rule.dst_prefix)) {
    return false;
  }
  if (!rule.src_ports.IsAny() || !rule.dst_ports.IsAny()) {
    u16 sport = 0;
    u16 dport = 0;
    if (ip.ProtocolIs(IpProtocol::kTcp)) {
      TcpView tcp(frame, ip.payload_offset());
      if (!tcp.Valid()) {
        return false;
      }
      sport = tcp.source_port();
      dport = tcp.destination_port();
    } else if (ip.ProtocolIs(IpProtocol::kUdp)) {
      UdpView udp(frame, ip.payload_offset());
      if (!udp.Valid()) {
        return false;
      }
      sport = udp.source_port();
      dport = udp.destination_port();
    } else {
      return false;  // port ranges only make sense for TCP/UDP
    }
    if (!rule.src_ports.Contains(sport) || !rule.dst_ports.Contains(dport)) {
      return false;
    }
  }
  return true;
}

L3L4Filter::L3L4Filter(L3L4FilterConfig config) : config_(std::move(config)) {}

L3L4Filter::~L3L4Filter() = default;

void L3L4Filter::Instantiate(Simulator& sim, Dataplane dp) {
  assert(dp.rx != nullptr && dp.tx != nullptr);
  dp_ = dp;
  accepted_fifo_ = std::make_unique<SyncFifo<Packet>>(
      sim, "accepted", 16, config_.switch_config.bus_bytes * 8);
  // The generated filter logic: one comparator bundle per rule, evaluated in
  // parallel with a priority encoder (first match wins).
  filter_resources_ =
      HlsControlResources(3, config_.switch_config.bus_bytes * 8) +
      ResourceUsage{90 * static_cast<u64>(config_.rules.size()) + 120,
                    40 * static_cast<u64>(config_.rules.size()) + 90, 0} +
      accepted_fifo_->resources();
  const usize filter = sim.AddProcess(FilterStage(), "l3l4_filter");
  elab::IoDecl(sim.catalog(), filter).Pops(dp_.rx).Pushes(accepted_fifo_.get());

  switch_ = std::make_unique<LearningSwitch>(config_.switch_config);
  switch_->Instantiate(sim, Dataplane{accepted_fifo_.get(), dp.tx});
}

ResourceUsage L3L4Filter::Resources() const {
  return filter_resources_ + switch_->Resources();
}

Cycle L3L4Filter::ModuleLatency() const {
  // Filter stage adds two cycles (parallel rule match + verdict) in front of
  // the embedded switch.
  return 2 + switch_->ModuleLatency();
}

HwProcess L3L4Filter::FilterStage() {
  for (;;) {
    co_await WaitUntil(
        [this] { return !dp_.rx->Empty() && accepted_fifo_->PollCanPush(); });
    Packet frame = dp_.rx->Pop();

    // All rules evaluate in parallel in hardware; one cycle for the
    // comparators, one for the priority encoder.
    FilterRule::Action verdict = config_.default_action;
    for (const FilterRule& rule : config_.rules) {
      if (RuleMatches(rule, frame)) {
        verdict = rule.action;
        break;
      }
    }
    co_await PauseFor(2);

    if (verdict == FilterRule::Action::kAccept) {
      ++accepted_;
      accepted_fifo_->Push(std::move(frame));
    } else {
      ++filtered_;  // dropped: never forwarded
    }
    co_await Pause();
  }
}


void L3L4Filter::RegisterMetrics(MetricsRegistry& registry) {
  registry.Register("l3l4.accepted", &accepted_);
  registry.Register("l3l4.filtered", &filtered_);
}

}  // namespace emu
