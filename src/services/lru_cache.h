// Look-aside least-recently-used cache (§4.4, Fig. 9).
//
// The paper's closing example: an LRU cache is a few lines in Emu but would
// need control-plane-managed eviction in a match-action DSL. The structure is
// exactly Fig. 9's: a HashCAM maps keys to slot indices in a NaughtyQ recency
// queue; Lookup touches the entry to the back of the queue, Cache enlists a
// value (evicting the front when full) and binds the key. This block also
// backs the Memcached service's store.
#ifndef SRC_SERVICES_LRU_CACHE_H_
#define SRC_SERVICES_LRU_CACHE_H_

#include <memory>
#include <vector>

#include "src/hdl/module.h"
#include "src/ip/hash_cam.h"
#include "src/ip/naughty_q.h"

namespace emu {

class LruCacheBlock : public Module {
 public:
  // Fig. 9's result record (index added for clients that keep sideband
  // state per slot, e.g. the Memcached store).
  struct Data {
    bool matched = false;
    u64 result = 0;
    usize index = 0;
  };

  LruCacheBlock(Simulator& sim, std::string name, usize capacity);

  usize capacity() const { return queue_->capacity(); }
  usize size() const { return queue_->size(); }

  // Fig. 9 Lookup: on a hit, returns the value and moves the entry to the
  // back of the recency queue.
  Data Lookup(u64 key_in);

  // Fig. 9 Cache: stores key -> value, evicting the LRU entry when full.
  // Returns the slot index the value landed in (stable until eviction).
  usize Cache(u64 key_in, u64 value_in);

  // Removes a key (needed by Memcached DELETE; not in the paper's snippet).
  bool Erase(u64 key_in);

  u64 evictions() const { return evictions_; }

 private:
  std::unique_ptr<HashCam> hash_cam_;
  std::unique_ptr<NaughtyQ> queue_;
  std::vector<u64> key_of_slot_;  // reverse map for eviction invalidation
  std::vector<bool> slot_used_;
  u64 evictions_ = 0;
};

}  // namespace emu

#endif  // SRC_SERVICES_LRU_CACHE_H_
