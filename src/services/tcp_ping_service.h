// TCP ping responder (§4.2).
//
// A reachability test over TCP rather than ICMP: the service answers the
// first two steps of the three-way handshake (SYN -> SYN-ACK) on a set of
// open ports, RSTs SYNs to closed ports, and answers ARP for its address.
// The client measures RTT from SYN to SYN-ACK and tears down with RST.
#ifndef SRC_SERVICES_TCP_PING_SERVICE_H_
#define SRC_SERVICES_TCP_PING_SERVICE_H_

#include <vector>

#include "src/core/service.h"
#include "src/net/mac_address.h"

namespace emu {

struct TcpPingConfig {
  MacAddress mac = MacAddress::FromU48(0x02'00'00'00'ee'02);
  Ipv4Address ip = Ipv4Address(10, 0, 0, 101);
  std::vector<u16> open_ports = {80, 443};
  u32 initial_sequence = 0x11223344;  // deterministic ISN for reproducibility
  usize bus_bytes = 32;
  // Calibrated request-FSM cost (Table 4: ~95 cycles -> 2.1 Mq/s, 1.27 us).
  Cycle parse_cycles = 40;
  Cycle turnaround_cycles = 45;
};

class TcpPingService : public Service {
 public:
  explicit TcpPingService(TcpPingConfig config = {});

  std::string_view name() const override { return "emu_tcp_ping"; }
  void Instantiate(Simulator& sim, Dataplane dp) override;
  ResourceUsage Resources() const override { return resources_; }
  Cycle ModuleLatency() const override { return 11; }
  Cycle InitiationInterval() const override { return 3; }
  void RegisterMetrics(MetricsRegistry& registry) override;

  u64 syn_acks() const { return syn_acks_; }
  u64 resets() const { return resets_; }
  u64 dropped() const { return dropped_; }

 private:
  HwProcess MainLoop();
  bool PortOpen(u16 port) const;

  TcpPingConfig config_;
  Dataplane dp_;
  ResourceUsage resources_;
  u64 syn_acks_ = 0;
  u64 resets_ = 0;
  u64 dropped_ = 0;
};

}  // namespace emu

#endif  // SRC_SERVICES_TCP_PING_SERVICE_H_
