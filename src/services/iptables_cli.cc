#include "src/services/iptables_cli.h"

#include <string>
#include <vector>

namespace emu {
namespace {

std::vector<std::string_view> Tokenize(std::string_view text) {
  std::vector<std::string_view> tokens;
  usize pos = 0;
  while (pos < text.size()) {
    while (pos < text.size() && (text[pos] == ' ' || text[pos] == '\t')) {
      ++pos;
    }
    const usize start = pos;
    while (pos < text.size() && text[pos] != ' ' && text[pos] != '\t') {
      ++pos;
    }
    if (pos > start) {
      tokens.push_back(text.substr(start, pos - start));
    }
  }
  return tokens;
}

Expected<u16> ParsePort(std::string_view text) {
  if (text.empty() || text.size() > 5) {
    return InvalidArgument("bad port");
  }
  u32 value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') {
      return InvalidArgument("non-digit in port");
    }
    value = value * 10 + static_cast<u32>(c - '0');
  }
  if (value > 65535) {
    return InvalidArgument("port out of range");
  }
  return static_cast<u16>(value);
}

Expected<PortRange> ParsePortRange(std::string_view text) {
  const usize colon = text.find(':');
  PortRange range;
  if (colon == std::string_view::npos) {
    auto port = ParsePort(text);
    if (!port.ok()) {
      return port.status();
    }
    range.lo = *port;
    range.hi = *port;
    return range;
  }
  auto lo = ParsePort(text.substr(0, colon));
  auto hi = ParsePort(text.substr(colon + 1));
  if (!lo.ok() || !hi.ok()) {
    return InvalidArgument("bad port range");
  }
  if (*lo > *hi) {
    return InvalidArgument("inverted port range");
  }
  range.lo = *lo;
  range.hi = *hi;
  return range;
}

// "10.0.0.0/24" or bare "10.0.0.1" (treated as /32).
Status ParseAddressSpec(std::string_view text, Ipv4Address* base, u32* prefix) {
  const usize slash = text.find('/');
  std::string_view addr_text = text;
  u32 prefix_len = 32;
  if (slash != std::string_view::npos) {
    addr_text = text.substr(0, slash);
    const std::string_view prefix_text = text.substr(slash + 1);
    if (prefix_text.empty() || prefix_text.size() > 2) {
      return InvalidArgument("bad prefix length");
    }
    prefix_len = 0;
    for (char c : prefix_text) {
      if (c < '0' || c > '9') {
        return InvalidArgument("non-digit prefix length");
      }
      prefix_len = prefix_len * 10 + static_cast<u32>(c - '0');
    }
    if (prefix_len > 32) {
      return InvalidArgument("prefix length > 32");
    }
  }
  auto addr = Ipv4Address::Parse(std::string(addr_text));
  if (!addr.ok()) {
    return addr.status();
  }
  *base = *addr;
  *prefix = prefix_len;
  return Status::Ok();
}

Expected<FilterRule::Action> ParseAction(std::string_view text) {
  if (text == "ACCEPT") {
    return FilterRule::Action::kAccept;
  }
  if (text == "DROP" || text == "REJECT") {
    return FilterRule::Action::kDrop;
  }
  return InvalidArgument("unknown target (expected ACCEPT or DROP)");
}

}  // namespace

Expected<FilterRule> ParseIptablesRule(std::string_view command) {
  const auto tokens = Tokenize(command);
  FilterRule rule;
  bool have_action = false;
  usize i = 0;
  // Leading "iptables" is tolerated.
  if (i < tokens.size() && tokens[i] == "iptables") {
    ++i;
  }
  for (; i < tokens.size(); ++i) {
    const std::string_view flag = tokens[i];
    const auto NextValue = [&]() -> Expected<std::string_view> {
      if (i + 1 >= tokens.size()) {
        return InvalidArgument(std::string("missing value after ") + std::string(flag));
      }
      return tokens[++i];
    };
    if (flag == "-A" || flag == "-I") {
      auto chain = NextValue();
      if (!chain.ok()) {
        return chain.status();
      }
      continue;  // chains are not modelled; rules apply to the forward path
    }
    if (flag == "-p") {
      auto proto = NextValue();
      if (!proto.ok()) {
        return proto.status();
      }
      if (*proto == "icmp") {
        rule.protocol = IpProtocol::kIcmp;
      } else if (*proto == "tcp") {
        rule.protocol = IpProtocol::kTcp;
      } else if (*proto == "udp") {
        rule.protocol = IpProtocol::kUdp;
      } else {
        return UnsupportedProtocol("only icmp/tcp/udp are filterable");
      }
      continue;
    }
    if (flag == "-s" || flag == "-d") {
      auto spec = NextValue();
      if (!spec.ok()) {
        return spec.status();
      }
      Ipv4Address base;
      u32 prefix = 0;
      const Status status = ParseAddressSpec(*spec, &base, &prefix);
      if (!status.ok()) {
        return status;
      }
      if (flag == "-s") {
        rule.src_base = base;
        rule.src_prefix = prefix;
      } else {
        rule.dst_base = base;
        rule.dst_prefix = prefix;
      }
      continue;
    }
    if (flag == "--sport" || flag == "--dport") {
      auto spec = NextValue();
      if (!spec.ok()) {
        return spec.status();
      }
      auto range = ParsePortRange(*spec);
      if (!range.ok()) {
        return range.status();
      }
      if (flag == "--sport") {
        rule.src_ports = *range;
      } else {
        rule.dst_ports = *range;
      }
      continue;
    }
    if (flag == "-j") {
      auto target = NextValue();
      if (!target.ok()) {
        return target.status();
      }
      auto action = ParseAction(*target);
      if (!action.ok()) {
        return action.status();
      }
      rule.action = *action;
      have_action = true;
      continue;
    }
    return InvalidArgument("unknown flag: " + std::string(flag));
  }
  if (!have_action) {
    return InvalidArgument("rule needs -j ACCEPT|DROP");
  }
  if ((!rule.src_ports.IsAny() || !rule.dst_ports.IsAny()) &&
      (!rule.protocol.has_value() || *rule.protocol == IpProtocol::kIcmp)) {
    return InvalidArgument("port matches require -p tcp or -p udp");
  }
  return rule;
}

Expected<IptablesRuleset> ParseIptablesScript(std::string_view script) {
  IptablesRuleset ruleset;
  usize pos = 0;
  while (pos <= script.size()) {
    usize eol = script.find('\n', pos);
    if (eol == std::string_view::npos) {
      eol = script.size();
    }
    std::string_view line = script.substr(pos, eol - pos);
    pos = eol + 1;
    // Strip comments.
    const usize hash = line.find('#');
    if (hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    const auto tokens = Tokenize(line);
    if (tokens.empty()) {
      if (eol == script.size()) {
        break;
      }
      continue;
    }
    if (tokens[0] == "-P" || (tokens.size() > 1 && tokens[1] == "-P")) {
      // Default policy: "-P FORWARD DROP".
      const usize base = tokens[0] == "-P" ? 0 : 1;
      if (tokens.size() < base + 3) {
        return InvalidArgument("-P needs chain and target");
      }
      auto action = ParseAction(tokens[base + 2]);
      if (!action.ok()) {
        return action.status();
      }
      ruleset.default_action = *action;
    } else {
      auto rule = ParseIptablesRule(line);
      if (!rule.ok()) {
        return rule.status();
      }
      ruleset.rules.push_back(*rule);
    }
    if (eol == script.size()) {
      break;
    }
  }
  return ruleset;
}

}  // namespace emu
