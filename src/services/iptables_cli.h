// iptables-style rule parser (§4.1).
//
// "We provide a tool that emulates the command-line parameter interface of
// IP tables. Instead of modifying a Linux server's filters, it generates
// code that slots into our learning switch." Supported grammar (a practical
// subset of iptables):
//
//   [-A CHAIN] [-p icmp|tcp|udp] [-s ADDR[/PREFIX]] [-d ADDR[/PREFIX]]
//   [--sport LO[:HI]] [--dport LO[:HI]] -j ACCEPT|DROP
//
// ParseIptablesRule handles one rule; ParseIptablesScript handles one rule
// per line ('#' comments and blank lines allowed) and also accepts a
// "-P CHAIN ACCEPT|DROP" default-policy line.
#ifndef SRC_SERVICES_IPTABLES_CLI_H_
#define SRC_SERVICES_IPTABLES_CLI_H_

#include <string_view>

#include "src/common/status.h"
#include "src/services/l3l4_filter.h"

namespace emu {

Expected<FilterRule> ParseIptablesRule(std::string_view command);

struct IptablesRuleset {
  std::vector<FilterRule> rules;
  FilterRule::Action default_action = FilterRule::Action::kAccept;
};

Expected<IptablesRuleset> ParseIptablesScript(std::string_view script);

}  // namespace emu

#endif  // SRC_SERVICES_IPTABLES_CLI_H_
