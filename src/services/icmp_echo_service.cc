#include "src/services/icmp_echo_service.h"

#include <cassert>

#include "src/core/metrics.h"
#include "src/core/protocol_wrappers.h"
#include "src/netfpga/axis.h"
#include "src/netfpga/dataplane.h"
#include "src/services/reply_util.h"

namespace emu {

IcmpEchoService::IcmpEchoService(IcmpEchoConfig config) : config_(config) {}

void IcmpEchoService::Instantiate(Simulator& sim, Dataplane dp) {
  assert(dp.rx != nullptr && dp.tx != nullptr);
  dp_ = dp;
  // Parse + reply FSM over the datapath, plus the checksum adder tree.
  resources_ = HlsControlResources(6, config_.bus_bytes * 8) + ResourceUsage{180, 120, 0};
  const usize main = sim.AddProcess(MainLoop(), "icmp_echo");
  elab::IoDecl(sim.catalog(), main).Pops(dp_.rx).Pushes(dp_.tx);
}

HwProcess IcmpEchoService::MainLoop() {
  for (;;) {
    co_await WaitUntil([this] { return !dp_.rx->Empty() && dp_.tx->PollCanPush(); });
    NetFpgaData dataplane;
    dataplane.tdata = dp_.rx->Pop();
    const usize words = WordsForBytes(dataplane.tdata.size(), config_.bus_bytes);
    // Stream the request in.
    co_await PauseFor(words);

    ArpWrapper arp(dataplane);
    if (arp.Reachable() && arp.OperIs(ArpOper::kRequest) && arp.target_ip() == config_.ip) {
      Packet reply =
          MakeArpReply(config_.mac, config_.ip, arp.sender_mac(), arp.sender_ip());
      CopyDataplaneStamps(dataplane.tdata, reply);
      NetFpgaData out;
      out.tdata = std::move(reply);
      NetFpga::SendBackToSource(out);
      ++arp_replies_;
      co_await PauseFor(2);  // build + checksum
      dp_.tx->Push(std::move(out.tdata));
      co_await Pause();
      continue;
    }

    IcmpWrapper icmp(dataplane);
    if (icmp.Reachable() && icmp.TypeIs(IcmpType::kEchoRequest)) {
      Ipv4Wrapper ip(dataplane);
      if (ip.destination() == config_.ip && icmp.ChecksumValid(icmp.MessageLength())) {
        // Serial header walk of the prototype FSM (see IcmpEchoConfig).
        co_await PauseFor(config_.parse_cycles);
        // Turn the request into the reply in place: swap addresses, flip the
        // type, refresh both checksums.
        SwapEthernetAddresses(dataplane.tdata);
        SwapIpv4Addresses(dataplane.tdata);
        icmp.set_type(IcmpType::kEchoReply);
        icmp.UpdateChecksum(icmp.MessageLength());
        NetFpga::SendBackToSource(dataplane);
        ++echoes_;
        // Checksum recompute overlaps the outbound beats except the final
        // fold/complement cycles.
        co_await PauseFor(2);
        const usize out_words = WordsForBytes(dataplane.tdata.size(), config_.bus_bytes);
        dp_.tx->Push(std::move(dataplane.tdata));
        co_await PauseFor(out_words > 1 ? out_words - 1 : 1);
        // FSM tail before the next request is accepted (throughput-defining;
        // the reply is already on the wire, so latency is unaffected).
        co_await PauseFor(config_.turnaround_cycles);
        continue;
      }
    }

    // Not for us: drop by never setting an output port.
    ++dropped_;
    co_await Pause();
  }
}


void IcmpEchoService::RegisterMetrics(MetricsRegistry& registry) {
  registry.Register("icmp.echoes", &echoes_);
  registry.Register("icmp.arp_replies", &arp_replies_);
  registry.Register("icmp.dropped", &dropped_);
}

}  // namespace emu
