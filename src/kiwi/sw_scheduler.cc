// SwScheduler is header-only; see sw_scheduler.h.
#include "src/kiwi/sw_scheduler.h"
