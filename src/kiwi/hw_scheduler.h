// Hardware-semantics scheduler (§3.4).
//
// Kiwi's hardware semantics turn parallel threads into parallel logical
// sub-circuits advancing in lock step with the clock; HwScheduler is that
// interpretation: a Simulator at a real clock rate, where Pause() costs one
// cycle of wall-clock time (5 ns at the NetFPGA's 200 MHz).
#ifndef SRC_KIWI_HW_SCHEDULER_H_
#define SRC_KIWI_HW_SCHEDULER_H_

#include <functional>

#include "src/hdl/simulator.h"

namespace emu {

class HwScheduler {
 public:
  explicit HwScheduler(u64 clock_hz = Simulator::kNetFpgaClockHz) : sim_(clock_hz) {}

  Simulator& sim() { return sim_; }
  const Simulator& sim() const { return sim_; }

  Picoseconds CyclesToPs(Cycle cycles) const {
    return static_cast<Picoseconds>(cycles) * sim_.cycle_period_ps();
  }

  Cycle PsToCycles(Picoseconds ps) const {
    return static_cast<Cycle>((ps + sim_.cycle_period_ps() - 1) / sim_.cycle_period_ps());
  }

  void Run(Cycle cycles) { sim_.Run(cycles); }

  bool RunUntil(const std::function<bool()>& done, Cycle limit) {
    return sim_.RunUntil(done, limit);
  }

 private:
  Simulator sim_;
};

}  // namespace emu

#endif  // SRC_KIWI_HW_SCHEDULER_H_
