// HwScheduler is header-only; see hw_scheduler.h.
#include "src/kiwi/hw_scheduler.h"
