// Software-semantics scheduler (§3.4).
//
// Kiwi's software semantics reduce the same thread/Pause constructs to
// ordinary .NET concurrency: Pause() is a cooperative yield with no hardware
// time attached. SwScheduler runs the identical service coroutines on the
// same kernel, but a "step" is a scheduling quantum, not a clock edge — this
// is the x86 debug/run environment of Fig. 1 (steps A3/A4).
#ifndef SRC_KIWI_SW_SCHEDULER_H_
#define SRC_KIWI_SW_SCHEDULER_H_

#include <functional>

#include "src/hdl/simulator.h"

namespace emu {

class SwScheduler {
 public:
  SwScheduler() : sim_(1'000'000'000) {}  // nominal 1 GHz quantum clock

  Simulator& sim() { return sim_; }

  // Runs quanta until `done()` or the budget runs out.
  bool RunUntil(const std::function<bool()>& done, usize max_quanta) {
    return sim_.RunUntil(done, max_quanta);
  }

  // Runs until every process has finished (services loop forever, so this is
  // mainly for finite test programs).
  void RunToCompletion(usize max_quanta) {
    sim_.RunUntil([this] { return sim_.live_process_count() == 0; }, max_quanta);
  }

 private:
  Simulator sim_;
};

}  // namespace emu

#endif  // SRC_KIWI_SW_SCHEDULER_H_
