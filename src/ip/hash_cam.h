// HashCAM: hash-indexed associative memory (Fig. 9).
//
// The paper's LRU cache pairs a HashCAM (key -> slot index, with a `matched`
// flag) with the NaughtyQ recency queue. This block models a Pearson-hashed,
// limited-probe open-addressing table: Read(key) sets `matched` and returns
// the stored index; Write(key, idx) installs or updates a binding; Erase(key)
// removes one (needed when NaughtyQ evicts). The probe limit models the fixed
// lookup pipeline a hardware table has — beyond it, Write simply fails, which
// callers treat as a capacity miss.
#ifndef SRC_IP_HASH_CAM_H_
#define SRC_IP_HASH_CAM_H_

#include <vector>

#include "src/common/types.h"
#include "src/hdl/module.h"

namespace emu {

class HashCam : public Module {
 public:
  static constexpr usize kProbeLimit = 8;

  // `buckets` is rounded up to a power of two.
  HashCam(Simulator& sim, std::string name, usize buckets);

  usize buckets() const { return table_.size(); }

  // True when the last Read() found its key (the Fig. 9 `HashCAM.matched`).
  bool matched() const { return matched_; }

  // Returns the index bound to `key` (0 when unmatched; check matched()).
  u64 Read(u64 key);

  // Installs or updates key -> index. Returns false when the probe window is
  // exhausted (capacity miss).
  bool Write(u64 key, u64 index);

  // Removes the binding for `key` if present.
  void Erase(u64 key);

  // SEU-style fault injection (emu-fault): flips one committed bit of one
  // bucket. Per-bucket layout: bit 0 = valid flag, bits [1, 65) = key. A
  // valid flip drops or resurrects a binding; a key flip makes lookups miss
  // — services must degrade (miss, NXDOMAIN, reject), never crash.
  void InjectBitFlip(u64 bit);
  // Bits addressable by InjectBitFlip, for SEU-target registration.
  u64 state_bits() const { return static_cast<u64>(table_.size()) * 65; }

 private:
  struct Bucket {
    bool valid = false;
    u64 key = 0;
    u64 index = 0;
  };

  usize Slot(u64 key, usize probe) const;

  std::vector<Bucket> table_;
  usize mask_;
  bool matched_ = false;
};

}  // namespace emu

#endif  // SRC_IP_HASH_CAM_H_
