#include "src/ip/hash_cam.h"

#include <cassert>

#include "src/ip/pearson_hash.h"

namespace emu {
namespace {

usize RoundUpPow2(usize v) {
  usize p = 1;
  while (p < v) {
    p <<= 1;
  }
  return p;
}

}  // namespace

HashCam::HashCam(Simulator& sim, std::string name, usize buckets)
    : Module(sim, std::move(name)), table_(RoundUpPow2(buckets)), mask_(table_.size() - 1) {
  assert(buckets > 0);
  // key + index + valid per bucket in BRAM; hash core + probe FSM in fabric.
  AddResources(BramResources(table_.size() * (64 + 64 + 1)) + ResourceUsage{320, 180, 1});
  sim.catalog().AddElement(this, elab::NodeKind::kHashCam, this->name());
}

usize HashCam::Slot(u64 key, usize probe) const {
  return (static_cast<usize>(PearsonHash64(key)) + probe) & mask_;
}

u64 HashCam::Read(u64 key) {
  for (usize probe = 0; probe < kProbeLimit; ++probe) {
    const Bucket& bucket = table_[Slot(key, probe)];
    if (bucket.valid && bucket.key == key) {
      matched_ = true;
      return bucket.index;
    }
  }
  matched_ = false;
  return 0;
}

bool HashCam::Write(u64 key, u64 index) {
  // HashCam is not Clocked: writes take effect immediately, so each mutation
  // announces itself to the wake-epoch protocol here instead of in Commit().
  // First pass: update in place if the key is already bound.
  for (usize probe = 0; probe < kProbeLimit; ++probe) {
    Bucket& bucket = table_[Slot(key, probe)];
    if (bucket.valid && bucket.key == key) {
      bucket.index = index;
      sim().NotifyWake();
      return true;
    }
  }
  for (usize probe = 0; probe < kProbeLimit; ++probe) {
    Bucket& bucket = table_[Slot(key, probe)];
    if (!bucket.valid) {
      bucket = Bucket{true, key, index};
      sim().NotifyWake();
      return true;
    }
  }
  return false;
}

void HashCam::InjectBitFlip(u64 bit) {
  const usize index = static_cast<usize>(bit / 65) % table_.size();
  const usize in_bucket = static_cast<usize>(bit % 65);
  Bucket& bucket = table_[index];
  if (in_bucket == 0) {
    bucket.valid = !bucket.valid;
  } else {
    bucket.key ^= u64{1} << (in_bucket - 1);
  }
  sim().NotifyWake();
}

void HashCam::Erase(u64 key) {
  for (usize probe = 0; probe < kProbeLimit; ++probe) {
    Bucket& bucket = table_[Slot(key, probe)];
    if (bucket.valid && bucket.key == key) {
      bucket.valid = false;
      sim().NotifyWake();
      return;
    }
  }
}

}  // namespace emu
