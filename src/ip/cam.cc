#include "src/ip/cam.h"

#include <cassert>

namespace emu {

Cam::Cam(Simulator& sim, std::string name, usize entries, usize key_bits, usize value_bits)
    : Module(sim, std::move(name)),
      key_bits_(key_bits),
      key_mask_(key_bits >= 64 ? ~u64{0} : (u64{1} << key_bits) - 1),
      slots_(entries) {
  assert(entries > 0);
  assert(key_bits > 0 && key_bits <= 64);
  AddResources(CamIpResources(entries, key_bits, value_bits));
  sim.RegisterClocked(this, /*self_announcing=*/true);
  // Register the CamInterface subobject address: designs that hold the CAM
  // behind a unique_ptr<CamInterface> declare IO with that pointer, which
  // differs numerically from `this` under multiple inheritance.
  sim.catalog().AddElement(static_cast<const CamInterface*>(this), elab::NodeKind::kCam,
                           this->name());
}

// See the lifetime rule in simulator.h: no unregistration on destruction.
Cam::~Cam() = default;

CamLookupResult Cam::Lookup(u64 key) const {
  const u64 masked = key & key_mask_;
  // A hardware CAM matches all entries in parallel and priority-encodes the
  // lowest index; the linear scan models exactly that selection rule.
  for (usize i = 0; i < slots_.size(); ++i) {
    if (slots_[i].valid && slots_[i].key == masked) {
      return CamLookupResult{true, slots_[i].value, i};
    }
  }
  return CamLookupResult{};
}

void Cam::Write(usize index, u64 key, u64 value) {
  assert(index < slots_.size());
  if (pending_.empty()) {
    sim().AnnounceDirty(this);
  }
  pending_.push_back(PendingWrite{index, Slot{true, key & key_mask_, value}});
}

void Cam::Invalidate(usize index) {
  assert(index < slots_.size());
  if (pending_.empty()) {
    sim().AnnounceDirty(this);
  }
  pending_.push_back(PendingWrite{index, Slot{}});
}

void Cam::InjectBitFlip(u64 bit) {
  const usize slot_bits = 1 + key_bits_;
  const usize index = static_cast<usize>(bit / slot_bits) % slots_.size();
  const usize in_slot = static_cast<usize>(bit % slot_bits);
  Slot& slot = slots_[index];
  if (in_slot == 0) {
    slot.valid = !slot.valid;
  } else {
    slot.key = (slot.key ^ (u64{1} << (in_slot - 1))) & key_mask_;
  }
  // Committed state changed out-of-band; wake parked Lookup predicates.
  sim().NotifyWake();
}

void Cam::Commit() {
  if (pending_.empty()) {
    return;
  }
  for (const PendingWrite& write : pending_) {
    slots_[write.index] = write.slot;
  }
  pending_.clear();
  // Lookup() results change at this edge; a process parked on a hit/miss
  // predicate must be re-evaluated. The wake identity is the CamInterface
  // subobject — the same address the catalog registered.
  sim().NotifyWakeFor(static_cast<const CamInterface*>(this));
}

}  // namespace emu
