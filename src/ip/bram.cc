#include "src/ip/bram.h"

#include <cassert>

namespace emu {

Bram::Bram(Simulator& sim, std::string name, usize words, usize word_bits)
    : Module(sim, std::move(name)),
      word_bits_(word_bits),
      word_mask_(word_bits >= 64 ? ~u64{0} : (u64{1} << word_bits) - 1),
      data_(words, 0) {
  assert(words > 0);
  assert(word_bits > 0 && word_bits <= 64);
  AddResources(BramResources(words * word_bits));
  sim.RegisterClocked(this, /*self_announcing=*/true);
  sim.catalog().AddElement(this, elab::NodeKind::kBram, this->name());
}

// See the lifetime rule in simulator.h: no unregistration on destruction.
Bram::~Bram() = default;

u64 Bram::Read(usize addr) const {
  assert(addr < data_.size());
  return data_[addr];
}

void Bram::Write(usize addr, u64 value) {
  assert(addr < data_.size());
  if (pending_.empty()) {
    sim().AnnounceDirty(this);
  }
  pending_.push_back(PendingWrite{addr, value & word_mask_});
}

void Bram::InjectBitFlip(u64 bit) {
  const usize addr = static_cast<usize>(bit / word_bits_) % data_.size();
  const usize in_word = static_cast<usize>(bit % word_bits_);
  data_[addr] = (data_[addr] ^ (u64{1} << in_word)) & word_mask_;
  // Committed state changed out-of-band; parked WaitUntil predicates that
  // read this word must be re-evaluated.
  sim().NotifyWake();
}

void Bram::Commit() {
  if (pending_.empty()) {
    return;
  }
  for (const PendingWrite& write : pending_) {
    data_[write.addr] = write.value;
  }
  pending_.clear();
  // A parked process may be waiting on Read(addr); the commit is the moment
  // the new contents become observable.
  sim().NotifyWakeFor(this);
}

}  // namespace emu
