// Content-addressable memory IP block.
//
// The paper's learning switch stores its MAC table in a vendor CAM IP block
// (§4.1); Emu's contribution is that C# code can drive such blocks directly.
// Cam models the IP block: write-by-address, search-by-content, single-cycle
// lookup on the committed (post-edge) contents, writes visible after the next
// edge. LogicCam (logic_cam.h) implements the identical interface with the
// resource/latency profile of a CAM synthesized from plain high-level code.
#ifndef SRC_IP_CAM_H_
#define SRC_IP_CAM_H_

#include <optional>
#include <vector>

#include "src/common/types.h"
#include "src/hdl/module.h"

namespace emu {

struct CamLookupResult {
  bool hit = false;
  u64 value = 0;
  usize index = 0;
};

// Interface shared by the IP CAM and the logic CAM so services can be
// parameterized over the variant (the §4.1 trade-off and its ablation bench).
class CamInterface {
 public:
  virtual ~CamInterface() = default;

  virtual usize entries() const = 0;
  // Cycles between presenting a key and the match result being valid.
  virtual Cycle lookup_latency() const = 0;

  // Searches committed contents by key.
  virtual CamLookupResult Lookup(u64 key) const = 0;
  // Writes an entry at `index`; visible after the next clock edge.
  virtual void Write(usize index, u64 key, u64 value) = 0;
  // Invalidates an entry; visible after the next clock edge.
  virtual void Invalidate(usize index) = 0;
};

class Cam : public Module, public CamInterface, public Clocked {
 public:
  static constexpr Cycle kLookupLatency = 1;

  Cam(Simulator& sim, std::string name, usize entries, usize key_bits, usize value_bits);
  ~Cam() override;

  usize entries() const override { return slots_.size(); }
  Cycle lookup_latency() const override { return kLookupLatency; }
  usize key_bits() const { return key_bits_; }

  CamLookupResult Lookup(u64 key) const override;
  void Write(usize index, u64 key, u64 value) override;
  void Invalidate(usize index) override;

  bool ValidAt(usize index) const { return slots_[index].valid; }

  // SEU-style fault injection (emu-fault): flips one committed bit of one
  // slot. Per-slot layout: bit 0 = valid flag, bits [1, 1+key_bits) = key;
  // `bit` indexes the whole array in (1 + key_bits)-bit slots. A flipped
  // valid bit drops (or resurrects) an entry; a flipped key bit makes
  // lookups miss — both realistic CAM upset modes.
  void InjectBitFlip(u64 bit);
  // Bits addressable by InjectBitFlip, for SEU-target registration.
  u64 state_bits() const { return static_cast<u64>(slots_.size()) * (1 + key_bits_); }

  void Commit() override;
  bool CommitPending() const override { return !pending_.empty(); }

 private:
  struct Slot {
    bool valid = false;
    u64 key = 0;
    u64 value = 0;
  };
  struct PendingWrite {
    usize index;
    Slot slot;
  };

  usize key_bits_;
  u64 key_mask_;
  std::vector<Slot> slots_;
  std::vector<PendingWrite> pending_;
};

}  // namespace emu

#endif  // SRC_IP_CAM_H_
