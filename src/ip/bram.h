// On-chip block RAM.
//
// Single-cycle, constant-latency storage — the "on-chip memory" option of
// §5.4 (NetFPGA SUME has 51 MB of it; low constant latency, limited size).
// Reads return committed contents; writes land after the next edge.
#ifndef SRC_IP_BRAM_H_
#define SRC_IP_BRAM_H_

#include <vector>

#include "src/common/types.h"
#include "src/hdl/module.h"

namespace emu {

class Bram : public Module, public Clocked {
 public:
  static constexpr Cycle kReadLatency = 1;

  Bram(Simulator& sim, std::string name, usize words, usize word_bits);
  ~Bram() override;

  usize words() const { return data_.size(); }
  usize word_bits() const { return word_bits_; }
  Cycle read_latency() const { return kReadLatency; }

  u64 Read(usize addr) const;
  void Write(usize addr, u64 value);

  // SEU-style fault injection (emu-fault): flips one committed bit. `bit`
  // indexes the whole array (addr = bit / word_bits, bit-in-word = bit %
  // word_bits), matching the bit_count an SEU target registers.
  void InjectBitFlip(u64 bit);

  void Commit() override;
  bool CommitPending() const override { return !pending_.empty(); }

 private:
  struct PendingWrite {
    usize addr;
    u64 value;
  };

  usize word_bits_;
  u64 word_mask_;
  std::vector<u64> data_;
  std::vector<PendingWrite> pending_;
};

}  // namespace emu

#endif  // SRC_IP_BRAM_H_
