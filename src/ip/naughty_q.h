// NaughtyQ: the recency queue behind the paper's LRU cache (Fig. 9).
//
// A fixed-capacity queue of values addressed by stable slot index:
//   - Enlist(value): allocate a slot at the back (most recent); if the queue
//     is full, the front (least recent) slot is evicted and reused, and the
//     caller learns which value fell out so it can invalidate its HashCAM
//     entry;
//   - Read(idx): fetch a slot's value;
//   - BackOfQ(idx): move a slot to the back (touch on cache hit).
// Implemented as a doubly-linked list threaded through a fixed array, which
// is also how the hardware block would be laid out in BRAM.
#ifndef SRC_IP_NAUGHTY_Q_H_
#define SRC_IP_NAUGHTY_Q_H_

#include <vector>

#include "src/common/types.h"
#include "src/hdl/module.h"

namespace emu {

class NaughtyQ : public Module {
 public:
  struct EnlistResult {
    usize index = 0;
    bool evicted = false;
    u64 evicted_value = 0;
  };

  NaughtyQ(Simulator& sim, std::string name, usize capacity);

  usize capacity() const { return slots_.size(); }
  usize size() const { return size_; }
  bool Full() const { return size_ == slots_.size(); }

  EnlistResult Enlist(u64 value);
  u64 Read(usize index) const;
  void BackOfQ(usize index);
  // Demotes a slot to the front (least recently used) so it is the next one
  // evicted — used to recycle erased entries.
  void FrontOfQ(usize index);

  // Index of the least-recently-used slot (front of queue); only valid when
  // the queue is non-empty.
  usize FrontIndex() const { return head_; }

 private:
  struct Slot {
    u64 value = 0;
    usize prev = kNil;
    usize next = kNil;
    bool in_use = false;
  };

  void Unlink(usize index);
  void PushBack(usize index);
  void PushFront(usize index);

  static constexpr usize kNil = static_cast<usize>(-1);

  std::vector<Slot> slots_;
  std::vector<usize> free_list_;
  usize head_ = kNil;  // least recently used
  usize tail_ = kNil;  // most recently used
  usize size_ = 0;
};

}  // namespace emu

#endif  // SRC_IP_NAUGHTY_Q_H_
