// Speck64/128 cipher IP block.
//
// §4 notes Emu use cases "can include bespoke features, e.g., encryption
// schemes" — this is that bespoke block: NSA's Speck lightweight cipher
// (64-bit block, 128-bit key, 27 rounds), a common choice for FPGA datapaths
// because each round is an add/rotate/xor pair. The block model offers raw
// block encryption plus a CTR keystream for packet payloads, with a
// pipelined cost of one round per cycle.
#ifndef SRC_IP_SPECK_CIPHER_H_
#define SRC_IP_SPECK_CIPHER_H_

#include <array>
#include <span>

#include "src/hdl/module.h"

namespace emu {

inline constexpr usize kSpeckRounds = 27;

class SpeckCipher : public Module {
 public:
  using Key = std::array<u32, 4>;  // K[0] = least-significant key word

  SpeckCipher(Simulator& sim, std::string name, const Key& key);

  // Raw 64-bit block encryption: (x, y) per the Speck reference ordering.
  void EncryptBlock(u32& x, u32& y) const;

  // CTR mode over a 64-bit (nonce, counter) pair: XORs `data` in place with
  // the keystream E(nonce, counter), E(nonce, counter+1), ...
  // Symmetric: applying it twice with the same nonce restores the input.
  void CtrCrypt(u64 nonce, std::span<u8> data) const;

  // Pipeline cost: one round per cycle plus the key-add, per 8-byte block.
  Cycle CyclesForBytes(usize bytes) const {
    return ((bytes + 7) / 8) + kSpeckRounds;  // blocks stream through the pipe
  }

 private:
  std::array<u32, kSpeckRounds> round_keys_{};
};

}  // namespace emu

#endif  // SRC_IP_SPECK_CIPHER_H_
