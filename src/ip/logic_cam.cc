#include "src/ip/logic_cam.h"

#include <cassert>

namespace emu {

LogicCam::LogicCam(Simulator& sim, std::string name, usize entries, usize key_bits,
                   usize value_bits)
    : Module(sim, std::move(name)),
      key_mask_(key_bits >= 64 ? ~u64{0} : (u64{1} << key_bits) - 1),
      slots_(entries) {
  assert(entries > 0);
  assert(key_bits > 0 && key_bits <= 64);
  AddResources(LogicCamResources(entries, key_bits, value_bits));
  sim.RegisterClocked(this, /*self_announcing=*/true);
  // CamInterface subobject address, for the same reason as Cam.
  sim.catalog().AddElement(static_cast<const CamInterface*>(this), elab::NodeKind::kCam,
                           this->name());
}

// See the lifetime rule in simulator.h: no unregistration on destruction.
LogicCam::~LogicCam() = default;

CamLookupResult LogicCam::Lookup(u64 key) const {
  const u64 masked = key & key_mask_;
  for (usize i = 0; i < slots_.size(); ++i) {
    if (slots_[i].valid && slots_[i].key == masked) {
      return CamLookupResult{true, slots_[i].value, i};
    }
  }
  return CamLookupResult{};
}

void LogicCam::Write(usize index, u64 key, u64 value) {
  assert(index < slots_.size());
  if (pending_.empty()) {
    sim().AnnounceDirty(this);
  }
  pending_.push_back(PendingWrite{index, Slot{true, key & key_mask_, value}});
}

void LogicCam::Invalidate(usize index) {
  assert(index < slots_.size());
  if (pending_.empty()) {
    sim().AnnounceDirty(this);
  }
  pending_.push_back(PendingWrite{index, Slot{}});
}

void LogicCam::Commit() {
  if (pending_.empty()) {
    return;
  }
  for (const PendingWrite& write : pending_) {
    slots_[write.index] = write.slot;
  }
  pending_.clear();
  // Same wake rule as the IP CAM: committed lookup results just changed.
  sim().NotifyWakeFor(static_cast<const CamInterface*>(this));
}

}  // namespace emu
