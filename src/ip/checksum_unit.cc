#include "src/ip/checksum_unit.h"

#include "src/fault/fault_registry.h"

namespace emu {

ChecksumUnit::ChecksumUnit(Simulator& sim, std::string name) : Module(sim, std::move(name)) {
  AddResources(ResourceUsage{180, 120, 0});
}

void ChecksumUnit::Reset() {
  sum_ = 0;
  high_byte_ = true;
}

void ChecksumUnit::AddByte(u8 byte) {
  if (high_byte_) {
    sum_ += static_cast<u64>(byte) << 8;
  } else {
    sum_ += byte;
  }
  high_byte_ = !high_byte_;
}

void ChecksumUnit::AddBytes(std::span<const u8> data) {
  for (u8 byte : data) {
    AddByte(byte);
  }
}

void ChecksumUnit::Add16(u16 value) {
  AddByte(static_cast<u8>(value >> 8));
  AddByte(static_cast<u8>(value));
}

void ChecksumUnit::Add32(u32 value) {
  Add16(static_cast<u16>(value >> 16));
  Add16(static_cast<u16>(value));
}

void ChecksumUnit::AttachFault(FaultRegistry& registry, const std::string& name) {
  fold_fault_ = registry.Register(name + ".fold", FaultClass::kChecksumFold);
}

u16 ChecksumUnit::Result() const {
  u64 sum = sum_;
  bool skip_fold = inject_fold_bug_;
  if (!skip_fold && fold_fault_ != nullptr && fold_fault_->armed()) {
    skip_fold = fold_fault_->Sample(sim().now());
  }
  if (skip_fold) {
    // The §5.5 bug: take the low 16 bits without folding the carries back
    // in. Correct for short payloads, wrong as soon as the sum overflows
    // 16 bits — exactly the kind of bug invisible in small simulations.
    return static_cast<u16>(~sum & 0xffff);
  }
  while (sum >> 16) {
    sum = (sum & 0xffff) + (sum >> 16);
  }
  return static_cast<u16>(~sum & 0xffff);
}

}  // namespace emu
