#include "src/ip/dram_model.h"

#include <cassert>

namespace emu {

DramModel::DramModel(Simulator& sim, std::string name, usize bytes, DramTiming timing)
    : Module(sim, std::move(name)),
      size_bytes_(bytes),
      timing_(timing),
      open_row_(timing.banks, kNoRow) {
  // The DRAM controller occupies fabric; the DRAM itself is off-chip and
  // contributes no BRAM.
  AddResources(ResourceUsage{1800, 2400, 4});
}

Cycle DramModel::AccessLatency(usize addr, Cycle now) {
  assert(addr < size_bytes_);
  Cycle latency = timing_.base_latency;

  const usize bank = BankOf(addr);
  const usize row = RowOf(addr);
  if (open_row_[bank] != row) {
    latency += timing_.row_miss_penalty;
    open_row_[bank] = row;
  }

  // If the access lands inside (or just before the end of) a refresh window,
  // it stalls until the window closes. This is the source of the latency
  // variance §5.4 warns about.
  const Cycle phase = now % timing_.refresh_interval;
  if (phase < timing_.refresh_duration) {
    latency += timing_.refresh_duration - phase;
  }
  return latency;
}

u64 DramModel::Read(usize addr) {
  assert(addr < size_bytes_);
  const auto it = contents_.find(addr);
  return it == contents_.end() ? 0 : it->second;
}

void DramModel::Write(usize addr, u64 value) {
  assert(addr < size_bytes_);
  contents_[addr] = value;
}

}  // namespace emu
