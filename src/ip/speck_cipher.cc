#include "src/ip/speck_cipher.h"

namespace emu {
namespace {

constexpr u32 Ror(u32 x, u32 r) { return (x >> r) | (x << (32 - r)); }
constexpr u32 Rol(u32 x, u32 r) { return (x << r) | (x >> (32 - r)); }

}  // namespace

SpeckCipher::SpeckCipher(Simulator& sim, std::string name, const Key& key)
    : Module(sim, std::move(name)) {
  // Key schedule (Speck64/128: m = 4 key words).
  u32 k = key[0];
  u32 l[kSpeckRounds + 2] = {key[1], key[2], key[3]};
  for (usize i = 0; i < kSpeckRounds; ++i) {
    round_keys_[i] = k;
    if (i + 1 < kSpeckRounds) {
      l[i + 3] = (k + Ror(l[i], 8)) ^ static_cast<u32>(i);
      k = Rol(k, 3) ^ l[i + 3];
    }
  }
  // 27 unrolled ARX rounds + round-key registers.
  AddResources(ResourceUsage{static_cast<u64>(kSpeckRounds) * 46,
                             static_cast<u64>(kSpeckRounds) * 64, 0});
}

void SpeckCipher::EncryptBlock(u32& x, u32& y) const {
  for (usize i = 0; i < kSpeckRounds; ++i) {
    x = (Ror(x, 8) + y) ^ round_keys_[i];
    y = Rol(y, 3) ^ x;
  }
}

void SpeckCipher::CtrCrypt(u64 nonce, std::span<u8> data) const {
  u64 counter = 0;
  for (usize offset = 0; offset < data.size(); offset += 8, ++counter) {
    const u64 block_in = nonce ^ (counter << 1) ^ (counter >> 63);
    u32 x = static_cast<u32>(block_in >> 32) ^ static_cast<u32>(counter);
    u32 y = static_cast<u32>(block_in);
    EncryptBlock(x, y);
    const u64 keystream = (static_cast<u64>(x) << 32) | y;
    const usize n = std::min<usize>(8, data.size() - offset);
    for (usize i = 0; i < n; ++i) {
      data[offset + i] ^= static_cast<u8>(keystream >> (8 * i));
    }
  }
}

}  // namespace emu
