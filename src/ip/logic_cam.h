// CAM synthesized from plain high-level code (the paper's "C# CAM", §4.1).
//
// Functionally identical to the vendor IP block but with the cost profile of
// HLS-generated compare trees: more fabric LUTs/registers, no BRAM, and a
// two-cycle lookup (compare tree + priority encode scheduled across two
// states). The learning switch can be built against either variant; the
// ablation bench compares them.
#ifndef SRC_IP_LOGIC_CAM_H_
#define SRC_IP_LOGIC_CAM_H_

#include <vector>

#include "src/ip/cam.h"

namespace emu {

class LogicCam : public Module, public CamInterface, public Clocked {
 public:
  static constexpr Cycle kLookupLatency = 2;

  LogicCam(Simulator& sim, std::string name, usize entries, usize key_bits, usize value_bits);
  ~LogicCam() override;

  usize entries() const override { return slots_.size(); }
  Cycle lookup_latency() const override { return kLookupLatency; }

  CamLookupResult Lookup(u64 key) const override;
  void Write(usize index, u64 key, u64 value) override;
  void Invalidate(usize index) override;

  void Commit() override;
  bool CommitPending() const override { return !pending_.empty(); }

 private:
  struct Slot {
    bool valid = false;
    u64 key = 0;
    u64 value = 0;
  };
  struct PendingWrite {
    usize index;
    Slot slot;
  };

  u64 key_mask_;
  std::vector<Slot> slots_;
  std::vector<PendingWrite> pending_;
};

}  // namespace emu

#endif  // SRC_IP_LOGIC_CAM_H_
