#include "src/ip/pearson_hash.h"

namespace emu {
namespace {

// A fixed permutation of 0..255, generated at compile time by a
// Fisher-Yates shuffle driven by a deterministic LCG so the table is a true
// permutation (tested) and identical on every build.
constexpr std::array<u8, 256> MakePermutation() {
  std::array<u8, 256> table{};
  for (usize i = 0; i < 256; ++i) {
    table[i] = static_cast<u8>(i);
  }
  u64 state = 0x9e3779b97f4a7c15ULL;
  for (usize i = 255; i > 0; --i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    const usize j = static_cast<usize>((state >> 33) % (i + 1));
    const u8 tmp = table[i];
    table[i] = table[j];
    table[j] = tmp;
  }
  return table;
}

constexpr std::array<u8, 256> kPermutation = MakePermutation();

u8 Lane(u8 state, u8 byte) { return kPermutation[static_cast<u8>(state ^ byte)]; }

u64 HashBytes(std::span<const u8> data) {
  if (data.empty()) {
    return 0;
  }
  u64 digest = 0;
  for (usize lane = 0; lane < 8; ++lane) {
    // Widening trick: lane i starts from a lane-specific permutation of the
    // first byte, then all lanes absorb the same stream.
    u8 h = kPermutation[static_cast<u8>(data[0] + lane)];
    for (usize i = 1; i < data.size(); ++i) {
      h = Lane(h, data[i]);
    }
    digest |= static_cast<u64>(h) << (8 * lane);
  }
  return digest;
}

}  // namespace

u64 PearsonHash64(std::span<const u8> data) { return HashBytes(data); }

std::span<const u8> PearsonTable() { return kPermutation; }

u64 PearsonHash64(u64 key, usize key_bytes) {
  u8 bytes[8];
  for (usize i = 0; i < key_bytes && i < 8; ++i) {
    bytes[i] = static_cast<u8>(key >> (8 * i));
  }
  return HashBytes(std::span<const u8>(bytes, key_bytes));
}

PearsonHashIp::PearsonHashIp(Simulator& sim, std::string name)
    : Module(sim, std::move(name)),
      ready_(sim, this->name() + ".init_hash_ready", false),
      enable_(sim, this->name() + ".init_hash_enable", false),
      data_in_(sim, this->name() + ".data_in", u8{0}),
      hash_out_(sim, this->name() + ".hash_out", u64{0}) {
  // Permutation table (256 x 8 bits, replicated per lane) in BRAM plus a
  // small control FSM.
  AddResources(ResourceUsage{210, 150, 1});
}

void PearsonHashIp::Clear() {
  lanes_ = {};
  seeded_ = false;
  hash_out_.Write(0);
}

HwProcess PearsonHashIp::MakeProcess() {
  ready_.Write(true);
  co_await Pause();
  for (;;) {
    if (ready_.Read() && enable_.Read()) {
      const u8 byte = data_in_.Read();
      if (!seeded_) {
        for (usize lane = 0; lane < 8; ++lane) {
          lanes_[lane] = kPermutation[static_cast<u8>(byte + lane)];
        }
        seeded_ = true;
      } else {
        for (usize lane = 0; lane < 8; ++lane) {
          lanes_[lane] = Lane(static_cast<u8>(lanes_[lane]), byte);
        }
      }
      u64 digest = 0;
      for (usize lane = 0; lane < 8; ++lane) {
        digest |= lanes_[lane] << (8 * lane);
      }
      hash_out_.Write(digest);
      // One busy cycle per byte: the absorb pipeline.
      ready_.Write(false);
      co_await Pause();
      ready_.Write(true);
    }
    co_await Pause();
  }
}

HwProcess PearsonHashIp::Seed(PearsonHashIp& core, u8 byte) {
  // Client half of the Fig. 5 handshake: wait for ready, present the byte
  // with enable pulsed for one cycle, then wait for the core to come ready
  // again before releasing the bus.
  while (!core.ready_.Read()) {
    co_await Pause();
  }
  core.data_in_.Write(byte);
  core.enable_.Write(true);
  co_await Pause();
  core.enable_.Write(false);
  while (!core.ready_.Read()) {
    co_await Pause();
  }
  co_await Pause();
}

}  // namespace emu
