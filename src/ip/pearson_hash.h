// Pearson hashing IP block with the paper's streaming/seed handshake.
//
// Fig. 5 shows the C# wrapper for seeding this core: two handshake signals
// (init_hash_ready / init_hash_enable) and an 8-bit data bus. The module here
// exposes exactly those signals as clocked registers, plus a byte-stream
// hashing path, so services interface with it the way the paper's code does.
// A pure software PearsonHash64() of the same function is provided for the
// CPU target and for checking hardware results in tests.
#ifndef SRC_IP_PEARSON_HASH_H_
#define SRC_IP_PEARSON_HASH_H_

#include <array>
#include <span>

#include "src/hdl/module.h"
#include "src/hdl/process.h"
#include "src/hdl/signal.h"

namespace emu {

// 64-bit Pearson hash: eight parallel 8-bit Pearson lanes, lane i seeded with
// (first_byte + i) as in Pearson's original widening construction.
u64 PearsonHash64(std::span<const u8> data);
u64 PearsonHash64(u64 key, usize key_bytes = 8);

// The core's 256-entry permutation table (exposed for tests).
std::span<const u8> PearsonTable();

class PearsonHashIp : public Module {
 public:
  PearsonHashIp(Simulator& sim, std::string name);

  // --- Raw core signals (Fig. 5 protocol) ---
  // High when the core can accept a byte this cycle.
  Reg<bool>& init_hash_ready() { return ready_; }
  // Pulsed high by the client for one cycle, with data_in valid.
  Reg<bool>& init_hash_enable() { return enable_; }
  Reg<u8>& data_in() { return data_in_; }
  // Running 64-bit digest of all bytes accepted since the last Clear().
  Reg<u64>& hash_out() { return hash_out_; }

  void Clear();

  // The core's internal process; the owner must add it to the simulator:
  //   sim.AddProcess(hash.MakeProcess(), "pearson");
  HwProcess MakeProcess();

  // Declares the core process's register IO (emu-lint): the client drives
  // enable/data_in; the core drives ready/hash_out.
  void DeclareIo(usize process_index) {
    elab::IoDecl(sim().catalog(), process_index)
        .Reads(&enable_)
        .Reads(&data_in_)
        .Writes(&ready_)
        .Writes(&hash_out_);
  }

  // Client-side helper implementing the Fig. 5 wrapper verbatim: waits for
  // ready, presents the byte, pulses enable, and waits for ready again. Runs
  // as (part of) a client process.
  static HwProcess Seed(PearsonHashIp& core, u8 byte);

 private:
  Reg<bool> ready_;
  Reg<bool> enable_;
  Reg<u8> data_in_;
  Reg<u64> hash_out_;
  std::array<u64, 8> lanes_{};
  bool seeded_ = false;
};

}  // namespace emu

#endif  // SRC_IP_PEARSON_HASH_H_
