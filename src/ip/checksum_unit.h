// Internet-checksum offload block (RFC 1071 one's-complement sum).
//
// Services push header/payload bytes through the unit and read the folded
// 16-bit checksum. §5.5 recounts finding a checksum bug in the Memcached
// service via direction packets: the hardware computed a different sum than
// the simulation. `InjectFoldBug(true)` reproduces that bug (it skips the
// final carry fold) so the debug example can re-enact the hunt.
#ifndef SRC_IP_CHECKSUM_UNIT_H_
#define SRC_IP_CHECKSUM_UNIT_H_

#include <span>
#include <string>

#include "src/common/types.h"
#include "src/hdl/module.h"

namespace emu {

class FaultPoint;
class FaultRegistry;

class ChecksumUnit : public Module {
 public:
  ChecksumUnit(Simulator& sim, std::string name);

  void Reset();
  void AddByte(u8 byte);
  void AddBytes(std::span<const u8> data);
  void Add16(u16 value);
  void Add32(u32 value);

  // Folded, complemented RFC 1071 checksum of everything added since Reset().
  u16 Result() const;

  // Cycles the hardware needs for the bytes absorbed since Reset(): the unit
  // folds 8 bytes per cycle plus one fold/complement cycle.
  Cycle CyclesForBytes(usize bytes) const { return bytes / 8 + 1; }

  void InjectFoldBug(bool enabled) { inject_fold_bug_ = enabled; }
  bool fold_bug_injected() const { return inject_fold_bug_; }

  // emu-fault generalisation of the §5.5 flag: registers `<name>.fold` in
  // the registry. While the point's schedule says fire, Result() computes
  // the buggy (unfolded) sum — same effect as InjectFoldBug(true), but
  // driven by a plan and logged with cycle + seed like any other fault.
  void AttachFault(FaultRegistry& registry, const std::string& name);

 private:
  u64 sum_ = 0;
  bool high_byte_ = true;  // big-endian byte pairing state
  bool inject_fold_bug_ = false;
  FaultPoint* fold_fault_ = nullptr;
};

}  // namespace emu

#endif  // SRC_IP_CHECKSUM_UNIT_H_
