#include "src/ip/naughty_q.h"

#include <cassert>

namespace emu {

NaughtyQ::NaughtyQ(Simulator& sim, std::string name, usize capacity)
    : Module(sim, std::move(name)), slots_(capacity) {
  assert(capacity > 0);
  free_list_.reserve(capacity);
  for (usize i = capacity; i-- > 0;) {
    free_list_.push_back(i);
  }
  // Value + prev/next pointer storage in BRAM, plus queue-control logic.
  AddResources(BramResources(capacity * (64 + 2 * 16)) + ResourceUsage{120, 96, 0});
}

NaughtyQ::EnlistResult NaughtyQ::Enlist(u64 value) {
  EnlistResult result;
  if (free_list_.empty()) {
    // Evict the least recently used slot and reuse it.
    assert(head_ != kNil);
    const usize victim = head_;
    result.evicted = true;
    result.evicted_value = slots_[victim].value;
    Unlink(victim);
    --size_;
    free_list_.push_back(victim);
  }
  const usize index = free_list_.back();
  free_list_.pop_back();
  slots_[index].value = value;
  slots_[index].in_use = true;
  PushBack(index);
  ++size_;
  result.index = index;
  return result;
}

u64 NaughtyQ::Read(usize index) const {
  assert(index < slots_.size() && slots_[index].in_use);
  return slots_[index].value;
}

void NaughtyQ::BackOfQ(usize index) {
  assert(index < slots_.size() && slots_[index].in_use);
  if (tail_ == index) {
    return;
  }
  Unlink(index);
  PushBack(index);
}

void NaughtyQ::FrontOfQ(usize index) {
  assert(index < slots_.size() && slots_[index].in_use);
  if (head_ == index) {
    return;
  }
  Unlink(index);
  PushFront(index);
}

void NaughtyQ::Unlink(usize index) {
  Slot& slot = slots_[index];
  if (slot.prev != kNil) {
    slots_[slot.prev].next = slot.next;
  } else {
    head_ = slot.next;
  }
  if (slot.next != kNil) {
    slots_[slot.next].prev = slot.prev;
  } else {
    tail_ = slot.prev;
  }
  slot.prev = kNil;
  slot.next = kNil;
  slot.in_use = false;
}

void NaughtyQ::PushBack(usize index) {
  Slot& slot = slots_[index];
  slot.prev = tail_;
  slot.next = kNil;
  slot.in_use = true;
  if (tail_ != kNil) {
    slots_[tail_].next = index;
  }
  tail_ = index;
  if (head_ == kNil) {
    head_ = index;
  }
}

void NaughtyQ::PushFront(usize index) {
  Slot& slot = slots_[index];
  slot.prev = kNil;
  slot.next = head_;
  slot.in_use = true;
  if (head_ != kNil) {
    slots_[head_].prev = index;
  }
  head_ = index;
  if (tail_ == kNil) {
    tail_ = index;
  }
}

}  // namespace emu
