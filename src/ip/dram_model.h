// On-board DRAM model.
//
// §5.4 contrasts memory options for scaling Memcached: on-board DDR3 has a
// size advantage "but the disadvantage of increased and variable latency
// (e.g., due to DRAM refreshes)". This model reproduces that behaviour:
//   - a fixed controller + CAS base latency,
//   - an extra row-activate penalty on row-buffer misses,
//   - a periodic refresh window (tREFI) during which accesses stall.
// Latency is a deterministic function of (address, cycle), so experiments
// replay identically.
#ifndef SRC_IP_DRAM_MODEL_H_
#define SRC_IP_DRAM_MODEL_H_

#include <unordered_map>
#include <vector>

#include "src/common/types.h"
#include "src/hdl/module.h"

namespace emu {

struct DramTiming {
  // All in cycles of the attached fabric clock (200 MHz -> 5 ns/cycle).
  Cycle base_latency = 10;        // controller queue + CAS for a row hit
  Cycle row_miss_penalty = 8;     // precharge + activate
  Cycle refresh_interval = 1560;  // tREFI: 7.8 us at 200 MHz
  Cycle refresh_duration = 52;    // tRFC: 260 ns at 200 MHz
  usize row_bytes = 2048;
  usize banks = 8;
};

class DramModel : public Module {
 public:
  DramModel(Simulator& sim, std::string name, usize bytes, DramTiming timing = DramTiming{});

  usize size_bytes() const { return size_bytes_; }

  // Latency of an access issued at `now` to byte address `addr` (updates the
  // per-bank open-row state, so call order matters, as in hardware).
  Cycle AccessLatency(usize addr, Cycle now);

  u64 Read(usize addr);
  void Write(usize addr, u64 value);

 private:
  usize BankOf(usize addr) const { return (addr / timing_.row_bytes) % timing_.banks; }
  usize RowOf(usize addr) const { return addr / (timing_.row_bytes * timing_.banks); }

  usize size_bytes_;
  DramTiming timing_;
  std::vector<usize> open_row_;  // per bank; kNoRow when closed
  std::unordered_map<usize, u64> contents_;

  static constexpr usize kNoRow = static_cast<usize>(-1);
};

}  // namespace emu

#endif  // SRC_IP_DRAM_MODEL_H_
