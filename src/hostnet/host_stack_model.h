// Host (Linux) network-stack latency and capacity model.
//
// Table 4's host column comes from real services on a 3.5 GHz Xeon behind an
// Intel 82599 NIC. We reproduce the mechanisms that shape those numbers:
//   - a fixed kernel path (NIC DMA, IRQ, softirq, socket wakeup, syscall
//     in/out) plus per-byte copy cost;
//   - right-skewed jitter (lognormal) from cache misses and softirq timing;
//   - occasional large spikes (scheduler preemption, IRQ coalescing
//     boundaries) that create the heavy 99th percentile the paper contrasts
//     with Emu's flat tail;
//   - a per-request CPU service time that caps throughput at
//     cores / service_time, which queueing pushes latency against.
// All sampling is from a deterministic seeded Rng.
#ifndef SRC_HOSTNET_HOST_STACK_MODEL_H_
#define SRC_HOSTNET_HOST_STACK_MODEL_H_

#include <vector>

#include "src/common/rng.h"
#include "src/common/types.h"

namespace emu {

struct HostStackParams {
  // One-way kernel path cost, microseconds (doubled for request+reply).
  double base_us = 4.0;
  // Copy/processing cost per payload byte, nanoseconds.
  double per_byte_ns = 2.0;
  // Application-level service time per request on one core, microseconds.
  // Also the throughput bound: max qps = cores / service_us.
  double service_us = 1.0;
  // Lognormal jitter scale (sigma) applied to the whole path.
  double jitter_sigma = 0.18;
  // Probability and scale of a scheduling/IRQ spike.
  double spike_probability = 0.008;
  double spike_scale_us = 40.0;
  // Worker cores serving requests (the paper reconfigures the host for max
  // throughput per test).
  u32 cores = 1;
};

// Pre-fitted parameter sets matching the Table 4 host rows.
HostStackParams HostIcmpEchoParams();
HostStackParams HostTcpPingParams();
HostStackParams HostDnsParams();
HostStackParams HostNatParams();
HostStackParams HostMemcachedParams();

class HostStackModel {
 public:
  HostStackModel(HostStackParams params, u64 seed);

  const HostStackParams& params() const { return params_; }

  // Latency of a single unloaded request/response exchange (the Table 4
  // latency methodology: pinned core, warm cache, one request at a time).
  Picoseconds SampleUnloadedRtt(usize request_bytes);

  // Full queueing path: a request arriving at `arrival` is served by the
  // next free worker; returns its departure time. Models saturation for the
  // throughput rate search.
  Picoseconds ServeRequest(Picoseconds arrival, usize request_bytes);

  void ResetQueue();

 private:
  double SampleStackUs(usize request_bytes);

  HostStackParams params_;
  Rng rng_;
  std::vector<Picoseconds> worker_free_at_;
};

}  // namespace emu

#endif  // SRC_HOSTNET_HOST_STACK_MODEL_H_
