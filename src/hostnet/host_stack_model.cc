#include "src/hostnet/host_stack_model.h"

#include <algorithm>

namespace emu {

// Parameter sets fitted to Table 4's host rows (average, 99th percentile,
// max queries/s). `base_us` is the one-way kernel path; the lognormal sigma
// sets the tail ratio; `cores / service_us` sets the throughput ceiling.
HostStackParams HostIcmpEchoParams() {
  HostStackParams p;
  p.base_us = 3.98;        // in-kernel ICMP reply path
  p.service_us = 3.745;    // -> 1.068 Mq/s on 4 cores
  p.jitter_sigma = 0.27;   // 99th/avg ~ 1.84
  p.cores = 4;
  return p;
}

HostStackParams HostTcpPingParams() {
  HostStackParams p;
  p.base_us = 7.45;       // SYN handling + listener wakeup
  p.service_us = 3.952;   // -> 1.012 Mq/s
  p.jitter_sigma = 0.52;  // 99th/avg ~ 2.98
  p.cores = 4;
  return p;
}

HostStackParams HostDnsParams() {
  HostStackParams p;
  p.base_us = 54.2;       // userspace resolver: two socket crossings + lookup
  p.service_us = 17.7;    // -> 0.226 Mq/s
  p.jitter_sigma = 0.037; // 99th/avg ~ 1.09
  p.cores = 4;
  return p;
}

HostStackParams HostNatParams() {
  HostStackParams p;
  p.base_us = 1112.0;     // conntrack gateway path with deep buffers
  p.service_us = 3.857;   // -> 1.037 Mq/s
  p.jitter_sigma = 0.43;  // 99th/avg ~ 2.53
  p.cores = 4;
  return p;
}

HostStackParams HostMemcachedParams() {
  HostStackParams p;
  p.base_us = 9.7;        // UDP socket + memcached event loop
  p.service_us = 4.566;   // -> 0.876 Mq/s on 4 threads
  p.jitter_sigma = 0.07;  // 99th/avg ~ 1.18
  p.cores = 4;
  return p;
}

HostStackModel::HostStackModel(HostStackParams params, u64 seed)
    : params_(params), rng_(seed), worker_free_at_(params.cores, 0) {}

double HostStackModel::SampleStackUs(usize request_bytes) {
  const double deterministic = 2.0 * params_.base_us +
                               static_cast<double>(request_bytes) * params_.per_byte_ns / 1000.0 +
                               params_.service_us;
  double total = deterministic * rng_.NextLognormal(0.0, params_.jitter_sigma);
  if (rng_.NextBool(params_.spike_probability)) {
    total += rng_.NextExponential(params_.spike_scale_us);
  }
  return total;
}

Picoseconds HostStackModel::SampleUnloadedRtt(usize request_bytes) {
  return static_cast<Picoseconds>(SampleStackUs(request_bytes) * kPicosPerMicro);
}

Picoseconds HostStackModel::ServeRequest(Picoseconds arrival, usize request_bytes) {
  // Pick the worker that frees up first (kernel spreads flows across cores).
  auto soonest = std::min_element(worker_free_at_.begin(), worker_free_at_.end());
  const Picoseconds start = std::max(arrival, *soonest);
  const Picoseconds busy =
      static_cast<Picoseconds>(params_.service_us * kPicosPerMicro *
                               rng_.NextLognormal(0.0, params_.jitter_sigma / 2));
  *soonest = start + busy;
  // Stack traversal latency rides on top of the queueing delay.
  const Picoseconds stack = static_cast<Picoseconds>(
      (SampleStackUs(request_bytes) - params_.service_us) * kPicosPerMicro);
  return start + busy + std::max<Picoseconds>(stack, 0);
}

void HostStackModel::ResetQueue() {
  std::fill(worker_free_at_.begin(), worker_free_at_.end(), 0);
}

}  // namespace emu
