// Host-software implementations of the Table 4 services.
//
// These are the "Linux native counterparts" (§5.4): straightforward software
// written against ordinary data structures (hash maps, list-based LRU),
// functionally equivalent to the Emu services but running behind the
// HostStackModel's kernel-path timing rather than the FPGA pipeline. Each
// exposes the same packet-in/packet-out shape so the benches can drive both
// sides with identical workloads.
#ifndef SRC_HOSTNET_HOST_SERVICES_H_
#define SRC_HOSTNET_HOST_SERVICES_H_

#include <list>
#include <optional>
#include <string>
#include <unordered_map>

#include "src/net/dns.h"
#include "src/net/mac_address.h"
#include "src/net/memcached.h"
#include "src/net/packet.h"

namespace emu {

// Shared shape: consume a request frame, produce at most one response frame.
class HostService {
 public:
  virtual ~HostService() = default;
  virtual std::optional<Packet> HandleRequest(const Packet& request) = 0;
};

class HostIcmpEcho : public HostService {
 public:
  HostIcmpEcho(MacAddress mac, Ipv4Address ip) : mac_(mac), ip_(ip) {}
  std::optional<Packet> HandleRequest(const Packet& request) override;

 private:
  MacAddress mac_;
  Ipv4Address ip_;
};

class HostTcpPing : public HostService {
 public:
  HostTcpPing(MacAddress mac, Ipv4Address ip, std::vector<u16> open_ports)
      : mac_(mac), ip_(ip), open_ports_(std::move(open_ports)) {}
  std::optional<Packet> HandleRequest(const Packet& request) override;

 private:
  MacAddress mac_;
  Ipv4Address ip_;
  std::vector<u16> open_ports_;
};

class HostDns : public HostService {
 public:
  HostDns(MacAddress mac, Ipv4Address ip) : mac_(mac), ip_(ip) {}
  void AddRecord(const std::string& name, Ipv4Address address) { zone_[name] = address; }
  std::optional<Packet> HandleRequest(const Packet& request) override;

 private:
  MacAddress mac_;
  Ipv4Address ip_;
  std::unordered_map<std::string, Ipv4Address> zone_;
};

class HostMemcached : public HostService {
 public:
  HostMemcached(MacAddress mac, Ipv4Address ip, McProtocol protocol, usize capacity)
      : mac_(mac), ip_(ip), protocol_(protocol), capacity_(capacity) {}
  std::optional<Packet> HandleRequest(const Packet& request) override;

  usize size() const { return store_.size(); }

 private:
  struct Entry {
    std::string value;
    u32 flags;
    std::list<std::string>::iterator lru_position;
  };

  void Touch(const std::string& key);

  MacAddress mac_;
  Ipv4Address ip_;
  McProtocol protocol_;
  usize capacity_;
  std::unordered_map<std::string, Entry> store_;
  std::list<std::string> lru_;  // front = most recent
};

class HostNat : public HostService {
 public:
  struct Config {
    Ipv4Address external_ip = Ipv4Address(203, 0, 113, 1);
    MacAddress external_mac = MacAddress::FromU48(0x02'00'00'00'bb'00);
    MacAddress external_gateway_mac = MacAddress::FromU48(0x02'ff'ff'ff'ff'01);
    Ipv4Address internal_subnet = Ipv4Address(192, 168, 1, 0);
    u32 internal_prefix = 24;
    u16 port_base = 40000;
  };

  explicit HostNat(Config config) : config_(config) {}
  std::optional<Packet> HandleRequest(const Packet& request) override;

  usize active_mappings() const { return out_map_.size(); }

 private:
  struct Mapping {
    Ipv4Address internal_ip;
    u16 internal_port;
    MacAddress internal_mac;
  };

  Config config_;
  std::unordered_map<u64, u16> out_map_;      // flow key -> external port
  std::unordered_map<u16, Mapping> in_map_;   // external port -> internal
  u16 next_port_ = 0;
};

}  // namespace emu

#endif  // SRC_HOSTNET_HOST_SERVICES_H_
