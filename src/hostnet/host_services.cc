#include "src/hostnet/host_services.h"

#include <algorithm>

#include "src/net/checksum.h"
#include "src/net/ethernet.h"
#include "src/net/icmp.h"
#include "src/net/ipv4.h"
#include "src/net/tcp.h"
#include "src/net/udp.h"
#include "src/services/reply_util.h"

namespace emu {
namespace {

// Builds a UDP reply frame by reversing `request` and replacing the payload.
Packet ReverseUdp(const Packet& request, std::span<const u8> payload) {
  Packet frame = request;
  SwapEthernetAddresses(frame);
  const usize udp_offset = Ipv4View(frame).payload_offset();
  frame.Resize(udp_offset + kUdpHeaderSize);
  frame.Append(payload);
  Ipv4View ip(frame);
  ip.set_total_length(static_cast<u16>(frame.size() - kEthernetHeaderSize));
  SwapIpv4Addresses(frame);
  UdpView udp(frame, udp_offset);
  SwapUdpPorts(frame);
  udp.set_length(static_cast<u16>(kUdpHeaderSize + payload.size()));
  udp.UpdateChecksum(ip);
  if (frame.size() < kEthernetMinFrame) {
    frame.Resize(kEthernetMinFrame);
  }
  frame.set_src_port(request.src_port());
  return frame;
}

}  // namespace

std::optional<Packet> HostIcmpEcho::HandleRequest(const Packet& request) {
  Packet frame = request;
  Ipv4View ip(frame);
  if (!ip.Valid() || !ip.ProtocolIs(IpProtocol::kIcmp) || ip.destination() != ip_) {
    return std::nullopt;
  }
  IcmpView icmp(frame, ip.payload_offset());
  if (!icmp.Valid() || !icmp.TypeIs(IcmpType::kEchoRequest)) {
    return std::nullopt;
  }
  const usize message_length = ip.total_length() - ip.HeaderBytes();
  if (!icmp.ChecksumValid(message_length)) {
    return std::nullopt;
  }
  SwapEthernetAddresses(frame);
  SwapIpv4Addresses(frame);
  icmp.set_type(IcmpType::kEchoReply);
  icmp.UpdateChecksum(message_length);
  frame.set_src_port(request.src_port());
  return frame;
}

std::optional<Packet> HostTcpPing::HandleRequest(const Packet& request) {
  Packet frame = request;
  Ipv4View ip(frame);
  if (!ip.Valid() || !ip.ProtocolIs(IpProtocol::kTcp) || ip.destination() != ip_) {
    return std::nullopt;
  }
  TcpView tcp(frame, ip.payload_offset());
  if (!tcp.Valid() || !tcp.HasFlag(TcpFlags::kSyn) || tcp.HasFlag(TcpFlags::kAck)) {
    return std::nullopt;
  }
  EthernetView eth(frame);
  const bool open = std::find(open_ports_.begin(), open_ports_.end(),
                              tcp.destination_port()) != open_ports_.end();
  TcpSegmentSpec spec;
  spec.eth_dst = eth.source();
  spec.eth_src = mac_;
  spec.ip_src = ip_;
  spec.ip_dst = ip.source();
  spec.src_port = tcp.destination_port();
  spec.dst_port = tcp.source_port();
  spec.ack = tcp.sequence() + 1;
  if (open) {
    spec.seq = 0x5a5a5a5a;
    spec.flags = TcpFlags::kSyn | TcpFlags::kAck;
  } else {
    spec.flags = TcpFlags::kRst | TcpFlags::kAck;
  }
  Packet reply = MakeTcpSegment(spec);
  reply.set_src_port(request.src_port());
  return reply;
}

std::optional<Packet> HostDns::HandleRequest(const Packet& request) {
  Packet frame = request;
  Ipv4View ip(frame);
  if (!ip.Valid() || !ip.ProtocolIs(IpProtocol::kUdp) || ip.destination() != ip_) {
    return std::nullopt;
  }
  UdpView udp(frame, ip.payload_offset());
  if (!udp.Valid() || udp.destination_port() != kDnsPort) {
    return std::nullopt;
  }
  auto query = ParseDnsQuery(udp.Payload());
  if (!query.ok()) {
    return std::nullopt;
  }
  std::vector<u8> payload;
  const auto it = zone_.find(query->question.name);
  if (query->question.qtype == kDnsTypeA && it != zone_.end()) {
    payload = BuildDnsResponse(*query, it->second);
  } else {
    payload = BuildDnsError(*query, DnsRcode::kNxDomain);
  }
  return ReverseUdp(request, payload);
}

void HostMemcached::Touch(const std::string& key) {
  auto it = store_.find(key);
  lru_.erase(it->second.lru_position);
  lru_.push_front(key);
  it->second.lru_position = lru_.begin();
}

std::optional<Packet> HostMemcached::HandleRequest(const Packet& request) {
  Packet frame = request;
  Ipv4View ip(frame);
  if (!ip.Valid() || !ip.ProtocolIs(IpProtocol::kUdp) || ip.destination() != ip_) {
    return std::nullopt;
  }
  UdpView udp(frame, ip.payload_offset());
  if (!udp.Valid() || udp.destination_port() != kMemcachedPort) {
    return std::nullopt;
  }
  auto parsed = ParseMcRequest(udp.Payload(), protocol_);
  if (!parsed.ok()) {
    return std::nullopt;
  }

  McResponse response;
  response.protocol = protocol_;
  response.op = parsed->op;
  response.key = parsed->key;
  response.opaque = parsed->opaque;
  switch (parsed->op) {
    case McOpcode::kGet: {
      const auto it = store_.find(parsed->key);
      if (it != store_.end()) {
        response.status = McStatus::kNoError;
        response.value = it->second.value;
        response.flags = it->second.flags;
        Touch(parsed->key);
      } else {
        response.status = McStatus::kKeyNotFound;
      }
      break;
    }
    case McOpcode::kSet: {
      auto it = store_.find(parsed->key);
      if (it != store_.end()) {
        it->second.value = parsed->value;
        it->second.flags = parsed->flags;
        Touch(parsed->key);
      } else {
        if (store_.size() >= capacity_ && !lru_.empty()) {
          store_.erase(lru_.back());
          lru_.pop_back();
        }
        lru_.push_front(parsed->key);
        store_[parsed->key] = Entry{parsed->value, parsed->flags, lru_.begin()};
      }
      response.status = McStatus::kNoError;
      break;
    }
    case McOpcode::kDelete: {
      auto it = store_.find(parsed->key);
      if (it != store_.end()) {
        lru_.erase(it->second.lru_position);
        store_.erase(it);
        response.status = McStatus::kNoError;
      } else {
        response.status = McStatus::kKeyNotFound;
      }
      break;
    }
  }
  return ReverseUdp(request, BuildMcResponse(response));
}

std::optional<Packet> HostNat::HandleRequest(const Packet& request) {
  Packet frame = request;
  Ipv4View ip(frame);
  if (!ip.Valid() ||
      (!ip.ProtocolIs(IpProtocol::kUdp) && !ip.ProtocolIs(IpProtocol::kTcp))) {
    return std::nullopt;
  }
  const bool is_udp = ip.ProtocolIs(IpProtocol::kUdp);
  const usize l4 = ip.payload_offset();
  const usize segment_length = ip.total_length() - ip.HeaderBytes();
  EthernetView eth(frame);

  u16 src_port = 0;
  u16 dst_port = 0;
  if (is_udp) {
    UdpView udp(frame, l4);
    src_port = udp.source_port();
    dst_port = udp.destination_port();
  } else {
    TcpView tcp(frame, l4);
    src_port = tcp.source_port();
    dst_port = tcp.destination_port();
  }

  bool rewritten = false;
  if (ip.source().InSubnet(config_.internal_subnet, config_.internal_prefix)) {
    // Outbound.
    const u64 key = (static_cast<u64>(is_udp) << 63) |
                    (static_cast<u64>(ip.source().value()) << 16) | src_port;
    auto it = out_map_.find(key);
    u16 ext_port;
    if (it != out_map_.end()) {
      ext_port = it->second;
    } else {
      ext_port = static_cast<u16>(config_.port_base + next_port_++);
      out_map_[key] = ext_port;
      in_map_[ext_port] = Mapping{ip.source(), src_port, eth.source()};
    }
    ip.set_source(config_.external_ip);
    if (is_udp) {
      UdpView udp(frame, l4);
      udp.set_source_port(ext_port);
    } else {
      TcpView tcp(frame, l4);
      tcp.set_source_port(ext_port);
    }
    eth.set_source(config_.external_mac);
    eth.set_destination(config_.external_gateway_mac);
    rewritten = true;
  } else if (ip.destination() == config_.external_ip) {
    const auto it = in_map_.find(dst_port);
    if (it == in_map_.end()) {
      return std::nullopt;
    }
    ip.set_destination(it->second.internal_ip);
    if (is_udp) {
      UdpView udp(frame, l4);
      udp.set_destination_port(it->second.internal_port);
    } else {
      TcpView tcp(frame, l4);
      tcp.set_destination_port(it->second.internal_port);
    }
    eth.set_destination(it->second.internal_mac);
    rewritten = true;
  }
  if (!rewritten) {
    return std::nullopt;
  }
  ip.set_ttl(ip.ttl() > 0 ? ip.ttl() - 1 : 0);
  ip.UpdateChecksum();
  if (is_udp) {
    UdpView udp(frame, l4);
    udp.UpdateChecksum(ip);
  } else {
    TcpView tcp(frame, l4);
    tcp.UpdateChecksum(ip, segment_length);
  }
  return frame;
}

}  // namespace emu
