// Elaboration catalog: the HDL layer's passive record of design structure.
//
// Every Reg/Wire/SyncFifo/Bram/Cam/HashCam registers itself here at
// construction time (one push per element, nothing per access), and design
// code declares each HwProcess's read/write sets through IoDecl right after
// Simulator::AddProcess. The catalog is pure bookkeeping — it enforces
// nothing. The static half of emu-check (src/analysis/elab) reads it to
// materialize a whole-design IR *before* a single cycle runs: that is what
// makes elaboration-time lint and schedule inference possible, where the
// HazardMonitor only ever sees the edges a workload happens to exercise.
//
// Identity: elements are keyed by object address (the same convention the
// HazardMonitor uses). IO declarations may also reference elements by their
// constructed name ("mac_cam"), which matters when the design only holds an
// interface pointer whose address differs from the registered subobject.
#ifndef SRC_HDL_ELAB_CATALOG_H_
#define SRC_HDL_ELAB_CATALOG_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/types.h"

namespace emu::elab {

enum class NodeKind : u8 {
  kReg = 0,
  kWire,
  kFifo,
  kBram,
  kCam,
  kHashCam,
};

inline const char* NodeKindName(NodeKind kind) {
  switch (kind) {
    case NodeKind::kReg: return "reg";
    case NodeKind::kWire: return "wire";
    case NodeKind::kFifo: return "fifo";
    case NodeKind::kBram: return "bram";
    case NodeKind::kCam: return "cam";
    case NodeKind::kHashCam: return "hashcam";
  }
  return "?";
}

struct ElementDecl {
  const void* id = nullptr;
  NodeKind kind = NodeKind::kReg;
  std::string name;      // may be empty (anonymous element)
  bool no_init = false;  // constructed with emu::no_init
  usize depth = 0;       // FIFO capacity; 0 for non-FIFOs
  // Fed or drained from outside any process (testbench injection, port wire
  // delivery): exempt from dead-signal / dead-process reasoning.
  bool external = false;
};

// One role's references: by element address and/or by element name, resolved
// against the catalog when the ElabGraph is built.
struct IoRefs {
  std::vector<const void*> ids;
  std::vector<std::string> names;

  bool empty() const { return ids.empty() && names.empty(); }
};

// Declared read/write sets of one HwProcess. `declared` distinguishes "this
// process touches nothing" (declared, all sets empty) from "nobody told us"
// (undeclared) — the static checks that need whole-design knowledge only run
// when every process is declared.
struct ProcessIo {
  bool declared = false;
  IoRefs reads;   // Reg/Wire/Bram/Cam reads (combinational inputs)
  IoRefs writes;  // Reg/Wire/Bram/Cam writes
  IoRefs pops;    // SyncFifo consumer side
  IoRefs pushes;  // SyncFifo producer side
};

class Catalog {
 public:
  // Registers (or refreshes, on address reuse) element `id`.
  void AddElement(const void* id, NodeKind kind, std::string name, bool no_init = false,
                  usize depth = 0) {
    auto [it, inserted] = index_.try_emplace(id, elements_.size());
    if (inserted) {
      elements_.push_back(ElementDecl{id, kind, std::move(name), no_init, depth, false});
      return;
    }
    elements_[it->second] = ElementDecl{id, kind, std::move(name), no_init, depth, false};
  }

  // Marks `id` as externally fed/drained (testbench injection point).
  void MarkExternal(const void* id) {
    auto it = index_.find(id);
    if (it != index_.end()) {
      elements_[it->second].external = true;
    }
  }

  ProcessIo& Io(usize process_index) {
    if (process_index >= io_.size()) {
      io_.resize(process_index + 1);
    }
    return io_[process_index];
  }

  const std::vector<ElementDecl>& elements() const { return elements_; }
  const std::vector<ProcessIo>& io() const { return io_; }

  const ElementDecl* Find(const void* id) const {
    auto it = index_.find(id);
    return it == index_.end() ? nullptr : &elements_[it->second];
  }

 private:
  std::vector<ElementDecl> elements_;
  std::unordered_map<const void*, usize> index_;
  std::vector<ProcessIo> io_;  // indexed by process registration index
};

// Fluent declaration helper:
//
//   const usize p = sim.AddProcess(LookupStage(), "switch_lookup");
//   elab::IoDecl(sim.catalog(), p)
//       .Pops(dp.rx).Pushes(fifo.get()).Reads("mac_cam");
//
// Overloads take the element object itself (address identity) or its
// constructed name (for polymorphic members held by interface pointer).
class IoDecl {
 public:
  IoDecl(Catalog& catalog, usize process_index) : io_(catalog.Io(process_index)) {
    io_.declared = true;
  }

  IoDecl& Reads(const void* id) { io_.reads.ids.push_back(id); return *this; }
  IoDecl& Reads(const std::string& name) { io_.reads.names.push_back(name); return *this; }
  IoDecl& Writes(const void* id) { io_.writes.ids.push_back(id); return *this; }
  IoDecl& Writes(const std::string& name) { io_.writes.names.push_back(name); return *this; }
  IoDecl& Pops(const void* id) { io_.pops.ids.push_back(id); return *this; }
  IoDecl& Pops(const std::string& name) { io_.pops.names.push_back(name); return *this; }
  IoDecl& Pushes(const void* id) { io_.pushes.ids.push_back(id); return *this; }
  IoDecl& Pushes(const std::string& name) { io_.pushes.names.push_back(name); return *this; }

 private:
  ProcessIo& io_;
};

}  // namespace emu::elab

#endif  // SRC_HDL_ELAB_CATALOG_H_
