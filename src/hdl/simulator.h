// Cycle-accurate single-clock-domain simulator.
//
// Each Step() models one rising clock edge:
//   1. every live HwProcess is resumed once, in registration order
//      (processes observe only pre-edge values of clocked state);
//   2. every registered Clocked element commits its next-state
//      (non-blocking-assignment update).
// This is the substrate the Emu FPGA target runs on; the clock rate (200 MHz
// for NetFPGA SUME, 250 MHz for the P4FPGA baseline, §5.3) converts cycle
// counts to wall-clock latency.
#ifndef SRC_HDL_SIMULATOR_H_
#define SRC_HDL_SIMULATOR_H_

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/common/types.h"
#include "src/hdl/process.h"

namespace emu {

class HazardMonitor;
class Simulator;

// Anything with per-edge commit semantics (Reg, SyncFifo, CAM write ports...).
//
// In analysis builds (EMU_ANALYSIS) a Clocked element carries a back-pointer
// to its Simulator so its destructor can tombstone the registration slot:
// a later Step() then produces a hard POSTMORTEMSTEP diagnostic instead of
// the silent use-after-free the lifetime rule below would otherwise permit.
class Clocked {
 public:
  virtual ~Clocked();
  virtual void Commit() = 0;

#ifdef EMU_ANALYSIS
 private:
  friend class Simulator;
  Simulator* analysis_owner_ = nullptr;
#endif
};

class Simulator {
 public:
  static constexpr u64 kNetFpgaClockHz = 200'000'000;  // NetFPGA SUME native rate (§5.1)

  explicit Simulator(u64 clock_hz = kNetFpgaClockHz);
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  u64 clock_hz() const { return clock_hz_; }
  Picoseconds cycle_period_ps() const { return cycle_period_ps_; }

  Cycle now() const { return now_; }
  Picoseconds NowPs() const { return static_cast<Picoseconds>(now_) * cycle_period_ps_; }

  // Registers a process; it first runs on the next clock edge.
  void AddProcess(HwProcess process, std::string name);

  // Clocked elements register themselves on construction.
  //
  // LIFETIME RULE: a Clocked element and its Simulator may be destroyed in
  // either order, but Step() must never run after any registered element has
  // died (element destructors deliberately do not unregister, so a design
  // and its simulator can be torn down together in any member order).
  // UnregisterClocked exists for dynamic reconfiguration of a live design.
  void RegisterClocked(Clocked* element);
  void UnregisterClocked(Clocked* element);

  // Advances one clock edge.
  void Step();

  void Run(Cycle cycles);

  // Steps until `done()` is true (checked after each edge). Returns false if
  // `limit` edges elapse first.
  bool RunUntil(const std::function<bool()>& done, Cycle limit);

  usize live_process_count() const;

  usize process_count() const { return processes_.size(); }
  const std::string& process_name(usize index) const { return processes_[index].name; }

  // --- Analysis layer (src/analysis) ---
  // Attaches a HazardMonitor (nullptr detaches). The monitor only receives
  // events when the library is built with EMU_ANALYSIS; otherwise the kernel
  // contains no hooks and an attached monitor simply observes nothing.
  void AttachMonitor(HazardMonitor* monitor) { monitor_ = monitor; }
  HazardMonitor* monitor() const { return monitor_; }

  // Index of the process currently being resumed by Step(), or -1 between
  // processes / outside Step() (i.e. testbench context). Only maintained
  // while a monitor is attached.
  isize current_process_index() const { return current_process_; }

  // Graphviz dump of the process/signal dependency graph observed by the
  // attached monitor (process list only when no monitor is attached).
  void DumpDependencyGraph(std::ostream& os) const;

 private:
  friend class Clocked;

  // Called from ~Clocked in analysis builds: tombstones the registration
  // slot so the next Step() can diagnose instead of dereferencing a dead
  // element.
  void NotifyClockedDestroyed(Clocked* element);

#ifdef EMU_ANALYSIS
  // Step() with a monitor attached (or tombstoned elements to diagnose):
  // per-process bookkeeping lives here so the common path stays unchanged.
  void StepInstrumented();
#endif

  struct NamedProcess {
    HwProcess process;
    std::string name;
  };

  u64 clock_hz_;
  Picoseconds cycle_period_ps_;
  Cycle now_ = 0;
  std::vector<NamedProcess> processes_;
  std::vector<Clocked*> clocked_;
  HazardMonitor* monitor_ = nullptr;
  isize current_process_ = -1;
  usize dead_clocked_ = 0;
};

}  // namespace emu

#endif  // SRC_HDL_SIMULATOR_H_
