// Cycle-accurate single-clock-domain simulator.
//
// Each Step() models one rising clock edge:
//   1. every live HwProcess is resumed once, in registration order
//      (processes observe only pre-edge values of clocked state);
//   2. every registered Clocked element commits its next-state
//      (non-blocking-assignment update).
// This is the substrate the Emu FPGA target runs on; the clock rate (200 MHz
// for NetFPGA SUME, 250 MHz for the P4FPGA baseline, §5.3) converts cycle
// counts to wall-clock latency.
//
// --- Busy-path kernel (emu-speed) ---
//
// The per-edge loop is organized around three structures that keep the busy
// path (saturated load, fast-forward never fires) out of pointer-chasing:
//
//   * Scheduling state lives in a struct-of-arrays Slot table owned by the
//     Simulator, not in each coroutine's promise. A process's promise fields
//     are only an announcement channel: awaiters write them at suspension and
//     Reclassify() moves them into the Slot right after Resume() returns, so
//     the sweep touches one contiguous array instead of one coroutine frame
//     per process per edge. Sleeps are absolute wake cycles (no per-edge
//     decrement), which also makes FastForward O(1).
//
//   * Commits are demand-driven. Elements whose mutators announce themselves
//     (SyncFifo, Reg, Bram, Cam — RegisterClocked(self_announcing=true))
//     are committed only on edges where they actually buffered something
//     (AnnounceDirty → dirty queue); a clean element's Commit() is an
//     idempotent no-op by kernel invariant, so skipping it is invisible.
//     Elements that never announce stay on the unconditional commit list.
//
//   * Coroutine frames bump-allocate from the Simulator's arena when design
//     construction is wrapped in a CoroFrameArenaScope (NetFpgaPipeline does
//     this), packing a pipeline's frames contiguously.
//
// EnableFlatSchedule() pre-elaborates a static design (every process IO-
// declared, ElabGraph::StaticSchedule succeeds) into a flat scheduled edge
// loop: Run/RunUntil then execute RunFlatSpan — the same sweep/commit pair
// without the per-edge dispatch overhead — and wake notifications route to
// the declared watcher set of the mutated element (NotifyWakeFor) instead of
// invalidating every parked predicate. Anything that demands per-edge
// observation (EdgeObservers, HazardMonitor, SetFastPath(false)) falls back
// to dynamic dispatch, including mid-run attachment.
//
// --- Quiescence-aware fast path ---
//
// Run()/RunUntil() additionally fast-forward over *quiescent windows*:
// spans of cycles in which every live process is either sleeping off a
// PauseFor or parked on a WaitUntil predicate that provably cannot have
// changed. During such a window no process body runs, so no next-state is
// written, and every Commit() in the kernel is idempotent on clean state —
// skipping the edges entirely (processes, commits and all) is therefore
// invisible: now() advances in one jump and every observable (egress,
// digests, hazard reports, VCD, fault logs) is bit-identical to stepping
// edge by edge. The window is clamped by
//   - the earliest PauseFor expiry (min over slot wake cycles),
//   - forced wakes (RequestWakeAt: FIFO stall expiries),
//   - the next tick an attached FaultRegistry must sample (armed
//     callback targets, see FaultRegistry::NextTickDemand),
//   - the next pending event of an attached sim::EventScheduler.
// Anything that demands per-edge observation disables fast-forward
// entirely: an attached HazardMonitor (EMU_ANALYSIS), attached
// EdgeObservers (VCD tracers), or SetFastPath(false).
//
// Parked predicates are re-evaluated lazily via a wake epoch: every
// mutation of wake-tracked state (SyncFifo push-commits/pops/stalls,
// explicit NotifyWake calls) bumps the epoch, and a parked process whose
// predicate was last evaluated at the current epoch is skipped without
// re-evaluation. With wake routing active a mutation instead marks only the
// element's declared watchers stale — extra marks cost a predicate poll,
// never a missed resume, because watcher sets come from the same IO
// declarations the equivalence suite validates. With the fast path off (or
// a monitor attached) predicates are evaluated on every edge — the
// reference semantics the equivalence suite (tests/kernel_equiv_test.cc)
// checks the fast path against.
#ifndef SRC_HDL_SIMULATOR_H_
#define SRC_HDL_SIMULATOR_H_

#include <functional>
#include <iosfwd>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/types.h"
#include "src/core/arena.h"
#include "src/hdl/elab_catalog.h"
#include "src/hdl/process.h"

namespace emu {

class EventScheduler;
class FaultRegistry;
class HazardMonitor;
class MetricsRegistry;
class Simulator;

namespace elab {
class Elaboration;
}  // namespace elab

// Anything with per-edge commit semantics (Reg, SyncFifo, CAM write ports...).
//
// In analysis builds (EMU_ANALYSIS) a Clocked element carries a back-pointer
// to its Simulator so its destructor can tombstone the registration slot:
// a later Step() then produces a hard POSTMORTEMSTEP diagnostic instead of
// the silent use-after-free the lifetime rule below would otherwise permit.
class Clocked {
 public:
  virtual ~Clocked();
  virtual void Commit() = 0;

  // True when the next Commit() would apply buffered state (a written Reg, a
  // pending FIFO push, a buffered BRAM/CAM write, ...). The scheduler only
  // fast-forwards across a quiescent window when every registered element
  // reports no pending commit; the conservative default pins subclasses that
  // do not implement the query to exact per-edge stepping.
  virtual bool CommitPending() const { return true; }

 private:
  friend class Simulator;
  // Set while the element sits on its Simulator's dirty commit queue
  // (AnnounceDirty), so repeated mutations in one edge enqueue it once.
  bool commit_enqueued_ = false;
#ifdef EMU_ANALYSIS
  Simulator* analysis_owner_ = nullptr;
#endif
};

// Per-edge observer (VcdTracer and friends): OnEdge(now) runs after the
// commits of every executed edge with now() already advanced past it —
// exactly what the classic `Step(); Sample();` testbench loop observed.
// While any observer is attached every cycle is executed (no fast-forward),
// so observers see a gapless cycle stream.
class EdgeObserver {
 public:
  virtual ~EdgeObserver() = default;
  virtual void OnEdge(Cycle now) = 0;
};

// Scheduler statistics for one process (see Simulator::ProfileReport).
struct ProcessProfile {
  std::string name;
  u64 resumes = 0;       // coroutine resumptions (edges the body actually ran)
  u64 cycles_awake = 0;  // edges the scheduler did work for it (resume or poll)
  u64 polls = 0;         // parked-predicate evaluations
  // Wall time inside resumes. Exact under ProfilingMode::kFull; under
  // kSampled only resumes on timed edges carry the clock pair, so this is a
  // 1-in-stride sample of the true total (scale by sample_stride for an
  // estimate). Zero when profiling is off.
  u64 wall_ns = 0;
};

// Wall-clock attribution granularity (see Simulator::SetProfilingMode).
enum class ProfilingMode : u8 {
  kOff = 0,      // counts only, no clock reads (the default)
  kSampled = 1,  // 1-in-stride edges timed: cheap enough to leave on in soaks
  kFull = 2,     // every edge and every resume timed (two clock reads each)
};

// Wall time attributed to one kernel phase while profiling was active.
// `calls` counts every entry into the phase; `timed_calls` counts the subset
// that carried a steady_clock pair (all of them under kFull, 1-in-stride
// under kSampled), and `wall_ns` is the time inside those timed entries.
struct PhaseProfile {
  u64 calls = 0;
  u64 timed_calls = 0;
  u64 wall_ns = 0;
  // Sample-scaled estimate of the phase's true total wall time.
  double EstimatedTotalNs() const {
    if (timed_calls == 0) {
      return 0.0;
    }
    return static_cast<double>(wall_ns) * static_cast<double>(calls) /
           static_cast<double>(timed_calls);
  }
};

struct SimProfile {
  // Whether wall-clock attribution was active when the report was taken.
  // The scalar counters below (edges_run, ...) are always valid; phase and
  // per-process wall numbers are only meaningful when `populated()`.
  bool profiling_enabled = false;
  ProfilingMode mode = ProfilingMode::kOff;
  u64 sample_stride = 1;          // 1 under kFull; the 1-in-N stride under kSampled
  u64 edges_run = 0;              // edges actually executed
  u64 cycles_fast_forwarded = 0;  // cycles skipped by quiescence jumps
  u64 jumps = 0;                  // number of fast-forward jumps
  u64 edges_timed = 0;            // executed edges that carried phase clock pairs
  // Kernel phases (src/obs/pulse.h exports these as JSON):
  PhaseProfile resume_dispatch;   // SweepProcesses: resume + parked-poll sweep
  PhaseProfile commit_sweep;      // CommitEdge: unconditional list + dirty queue
  PhaseProfile quiescence_scan;   // QuiescentWindow calls from Run/RunUntil
  PhaseProfile fast_forward;      // FastForward jumps (always timed when enabled)
  PhaseProfile flat_span;         // RunFlatSpan bodies, inclusive of their sweeps/commits
  std::vector<ProcessProfile> processes;
  // True when the report carries actual wall-clock phase data (profiling was
  // on AND at least one phase was timed) — callers printing a phase table
  // should check this instead of printing all-zero rows.
  bool populated() const {
    return profiling_enabled &&
           (edges_timed > 0 || quiescence_scan.timed_calls > 0 ||
            fast_forward.timed_calls > 0 || flat_span.timed_calls > 0);
  }
};

class Simulator {
 public:
  static constexpr u64 kNetFpgaClockHz = 200'000'000;  // NetFPGA SUME native rate (§5.1)

  explicit Simulator(u64 clock_hz = kNetFpgaClockHz);
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  u64 clock_hz() const { return clock_hz_; }
  Picoseconds cycle_period_ps() const { return cycle_period_ps_; }

  Cycle now() const { return now_; }
  Picoseconds NowPs() const { return static_cast<Picoseconds>(now_) * cycle_period_ps_; }

  // Registers a process; it first runs on the next clock edge. Returns the
  // process's registration index — the handle elab::IoDecl uses to declare
  // its read/write sets.
  usize AddProcess(HwProcess process, std::string name);

  // Clocked elements register themselves on construction. `self_announcing`
  // elements promise that every mutation that can leave them with a pending
  // commit calls AnnounceDirty(); the scheduler then commits them only on
  // dirty edges. Elements registered without the promise are committed on
  // every executed edge (the conservative default).
  //
  // LIFETIME RULE: a Clocked element and its Simulator may be destroyed in
  // either order, but Step() must never run after any registered element has
  // died (element destructors deliberately do not unregister, so a design
  // and its simulator can be torn down together in any member order).
  // UnregisterClocked exists for dynamic reconfiguration of a live design.
  void RegisterClocked(Clocked* element, bool self_announcing = false);
  void UnregisterClocked(Clocked* element);

  // Enqueues a self-announcing element for commit on the current edge.
  // Idempotent per edge; called by the element's mutators on the clean→dirty
  // transition.
  void AnnounceDirty(Clocked* element) {
    if (!element->commit_enqueued_) {
      element->commit_enqueued_ = true;
      dirty_.push_back(element);
    }
  }

  // Advances one clock edge (always executed exactly; fast-forwarding only
  // happens inside Run/RunUntil).
  void Step();

  void Run(Cycle cycles);

  // Steps until `done()` is true (checked before each edge). Returns false
  // if `limit` edges elapse first. So that the fast path can skip quiescent
  // windows without missing the stop condition, `done` must be a pure
  // function of simulation state (FIFO occupancy, collected egress, ...) —
  // not of now(); bound time with `limit` instead.
  bool RunUntil(const std::function<bool()>& done, Cycle limit);

  usize live_process_count() const;

  usize process_count() const { return processes_.size(); }
  const std::string& process_name(usize index) const { return processes_[index].name; }

  // --- Quiescence control ---

  // Announces a mutation of wake-tracked state: every parked WaitUntil
  // predicate becomes eligible for re-evaluation. Call this form when the
  // mutated state has no cataloged identity (or from testbench context);
  // element mutators use NotifyWakeFor so routed mode can scope the wake.
  void NotifyWake() { ++wake_epoch_; }
  u64 wake_epoch() const { return wake_epoch_; }

  // Announces a mutation of element `element` (its catalog identity — the
  // address it registered under, e.g. `this` for a SyncFifo, the
  // CamInterface subobject for a Cam). With wake routing active only the
  // processes that declared IO on that element are marked for predicate
  // re-evaluation; otherwise (routing off, or an identity the route table
  // has never seen) this degrades to a global NotifyWake.
  void NotifyWakeFor(const void* element) {
    if (!wake_routes_active_) {
      ++wake_epoch_;
      return;
    }
    auto it = wake_routes_.find(element);
    if (it == wake_routes_.end()) {
      ++wake_epoch_;
      return;
    }
    for (u32 watcher : it->second) {
      sched_[watcher].routed_stale = true;
    }
  }

  // Schedules a wake at `cycle` for time-dependent state changes that no
  // process announces (a FIFO stall expiring): the scheduler will execute
  // that edge and re-evaluate parked predicates there.
  void RequestWakeAt(Cycle cycle) { forced_wakes_.insert(cycle); }

  // Toggles the quiescence fast path (default on). With it off Run/RunUntil
  // execute every edge and evaluate every parked predicate per edge — the
  // reference semantics the equivalence suite compares against. Also
  // disables the flat-scheduled loop (which is lazy by construction).
  void SetFastPath(bool enabled) { fast_path_ = enabled; }
  bool fast_path() const { return fast_path_; }

  // Attaches a FaultRegistry: Step() then samples its armed callback targets
  // once per edge (registry->Tick(now)) before processes run, and the fast
  // path consults NextTickDemand/NoteSkippedTicks so replay logs and
  // opportunity counts stay bit-identical to per-edge ticking. Also hands the
  // registry this clock's tick->ps scale so fault firings land on the trace
  // timeline (emu-scope). nullptr detaches. The registry must outlive the
  // attachment.
  void AttachFaultRegistry(FaultRegistry* registry);
  FaultRegistry* fault_registry() const { return fault_registry_; }

  // Attaches an EventScheduler whose pending events gate fast-forwarding:
  // the simulator never jumps past the fabric cycle of the next pending
  // event, so a testbench interleaving the two clock domains observes the
  // same interleaving with the fast path on or off. nullptr detaches.
  void AttachEventScheduler(EventScheduler* scheduler) { event_scheduler_ = scheduler; }

  // --- Per-edge observers (VCD tracers, ...) ---
  void AttachEdgeObserver(EdgeObserver* observer);
  void DetachEdgeObserver(EdgeObserver* observer);

  // --- Profiler ---
  // Resume/poll counts are always collected (they are a handful of
  // increments per edge); wall-clock attribution is off by default because
  // kFull adds two steady_clock reads per resume. kSampled times one edge in
  // `sample_stride` (phases and per-resume attribution alike), amortizing
  // the clock reads to ~3/stride per edge — cheap enough to leave on for
  // soak runs (bench/microbench_kernel --profile-overhead gates it ≤5%).
  void SetProfilingMode(ProfilingMode mode, u64 sample_stride = kDefaultProfilingStride) {
    profiling_mode_ = mode;
    sample_stride_ = mode == ProfilingMode::kFull ? 1 : (sample_stride == 0 ? 1 : sample_stride);
  }
  ProfilingMode profiling_mode() const { return profiling_mode_; }
  // Back-compat sugar: EnableProfiling(true) is the historical full mode.
  void EnableProfiling(bool enabled) {
    SetProfilingMode(enabled ? ProfilingMode::kFull : ProfilingMode::kOff);
  }
  SimProfile ProfileReport() const;

  static constexpr u64 kDefaultProfilingStride = 64;

  // Registers the kernel's scheduler statistics (the scalar SimProfile
  // fields) under `prefix` (e.g. "sim"): edges_run / cycles_fast_forwarded /
  // jumps counters plus a live_processes gauge.
  void RegisterMetrics(MetricsRegistry& metrics, const std::string& prefix) const;

  // --- Elaboration catalog (src/hdl/elab_catalog.h) ---
  // Construction-time record of the design: elements self-register here and
  // design code declares per-process IO. Read by the static analysis pass
  // (src/analysis/elab); never consulted by Step() itself.
  elab::Catalog& catalog() { return catalog_; }
  const elab::Catalog& catalog() const { return catalog_; }

  // Attaches a pre-flight elaboration (nullptr detaches): its PreFlight()
  // runs once, at the first Step()/Run() after attachment, against the
  // fully-constructed design. The elaboration object decides what to do with
  // findings (collect for a test, echo, abort on errors) and must outlive
  // the attachment.
  void AttachElaboration(elab::Elaboration* elaboration) {
    elaboration_ = elaboration;
    preflight_done_ = false;
  }
  elab::Elaboration* elaboration() const { return elaboration_; }

  // Adopts a static process execution order: Step() resumes processes in
  // `order` (a permutation of current registration indices) instead of
  // registration order. Produced by ElabGraph::StaticSchedule(); the
  // equivalence suite proves adoption is bit-exact for race-free designs.
  // Processes registered after adoption append to the end of the order.
  void AdoptSchedule(std::vector<usize> order);
  void ClearSchedule() {
    order_.clear();
    flat_schedule_ = false;
    DisableWakeRouting();
  }
  bool has_schedule() const { return !order_.empty(); }

  // Pre-elaborates the constructed design into the flat scheduled edge loop:
  // requires every process IO-declared (fully_declared) and an acyclic
  // declared comb graph (StaticSchedule().ok). On success adopts the static
  // order, builds the element→watcher wake route table, and arms the flat
  // span for Run/RunUntil. Returns false (leaving dynamic dispatch in place)
  // when the design does not qualify. Registering a process afterwards
  // conservatively disables wake routing (its IO is undeclared); attaching
  // an EdgeObserver or HazardMonitor falls back per-edge without disabling.
  bool EnableFlatSchedule();
  bool flat_schedule() const { return flat_schedule_; }
  bool wake_routing_active() const { return wake_routes_active_; }

  // Arena backing the design's coroutine frames; wrap process construction
  // in CoroFrameArenaScope(sim.frame_arena()) to pack frames contiguously
  // and tie their storage to the Simulator's lifetime.
  BumpArena& frame_arena() { return frame_arena_; }

  // --- Analysis layer (src/analysis) ---
  // Attaches a HazardMonitor (nullptr detaches). The monitor only receives
  // events when the library is built with EMU_ANALYSIS; otherwise the kernel
  // contains no hooks and an attached monitor simply observes nothing.
  void AttachMonitor(HazardMonitor* monitor) { monitor_ = monitor; }
  HazardMonitor* monitor() const { return monitor_; }

  // Index of the process currently being resumed by Step(), or -1 between
  // processes / outside Step() (i.e. testbench context). Only maintained
  // while a monitor is attached.
  isize current_process_index() const { return current_process_; }

  // Graphviz dump of the process/signal dependency graph observed by the
  // attached monitor (process list only when no monitor is attached).
  void DumpDependencyGraph(std::ostream& os) const;

 private:
  friend class Clocked;

  // Called from ~Clocked in analysis builds: tombstones the registration
  // slot so the next Step() can diagnose instead of dereferencing a dead
  // element.
  void NotifyClockedDestroyed(Clocked* element);

#ifdef EMU_ANALYSIS
  // Step() with a monitor attached (or tombstoned elements to diagnose):
  // per-process bookkeeping lives here so the common path stays unchanged.
  void StepInstrumented();
#endif

  // Scheduling state for one process, struct-of-arrays style: the per-edge
  // sweep walks this table and only touches a coroutine frame to actually
  // resume it. Kept in sync with the promise announcement channel by
  // Reclassify().
  struct Slot {
    enum State : u8 {
      kRunnable = 0,  // resume on the next executed edge
      kSleeping,      // resume on the edge at wake_at
      kParked,        // resume on the first edge where wait_pred holds
      kDone,          // coroutine ran to completion
    };
    State state = kRunnable;
    // Routed-wake mark: a watched element mutated since the last predicate
    // evaluation (only meaningful while parked).
    bool routed_stale = false;
    Cycle wake_at = 0;
    bool (*wait_pred)(void*) = nullptr;
    void* wait_ctx = nullptr;
    u64 wait_epoch = kWaitEpochStale;
  };

  // Moves process `index`'s post-resume suspension announcement (promise
  // sleep/park fields) into its Slot and clears the promise.
  void Reclassify(usize index);

  // Resumes/polls every due process once (one edge's worth of process work).
  // `lazy` enables epoch/route-based parked-predicate skipping; `timed`
  // wraps each resume in a steady_clock pair (per-process wall attribution).
  // Returns the number of resumes + predicate polls performed (0 = the edge
  // was quiescent).
  u64 SweepProcesses(bool lazy, bool timed);

  // Commits the unconditional list then drains the dirty queue.
  void CommitEdge();

  // One edge's sweep + commit with phase accounting (profiling_mode_ !=
  // kOff): counts every edge, times one in sample_stride_. Returns the
  // sweep's activity count.
  u64 ProfiledSweepAndCommit(bool lazy);

  // QuiescentWindow with phase accounting; falls through to the plain scan
  // when profiling is off.
  Cycle ProfiledQuiescentWindow(Cycle budget);

  // True when Run/RunUntil may enter the flat scheduled span.
  bool FlatSpanEligible() const {
    if (!flat_schedule_ || !fast_path_ || !edge_observers_.empty()) {
      return false;
    }
#ifdef EMU_ANALYSIS
    if (monitor_ != nullptr || dead_clocked_ > 0) {
      return false;
    }
#endif
    return true;
  }

  // Executes edges back-to-back (no per-edge Run dispatch) until `end`,
  // `done` (when non-null), a quiescent edge (activity == 0 — the caller
  // then re-consults QuiescentWindow), or a mid-span fallback trigger
  // (observer/monitor attached during an edge).
  void RunFlatSpan(Cycle end, const std::function<bool()>* done);

  // Drops the wake route table and forces a global re-evaluation epoch.
  void DisableWakeRouting() {
    if (wake_routes_active_) {
      wake_routes_active_ = false;
      ++wake_epoch_;
    }
  }

  // Length of the quiescent window starting at now_ (0 = the next edge must
  // be executed), capped at `budget`.
  Cycle QuiescentWindow(Cycle budget);

  // Skips `cycles` edges in one jump (caller has proven the window
  // quiescent via QuiescentWindow).
  void FastForward(Cycle cycles);

  // Consumes forced wakes that have come due and bumps the wake epoch.
  void ConsumeForcedWakes() {
    bool any = false;
    while (!forced_wakes_.empty() && *forced_wakes_.begin() <= now_) {
      forced_wakes_.erase(forced_wakes_.begin());
      any = true;
    }
    if (any) {
      NotifyWake();
    }
  }

  struct NamedProcess {
    HwProcess process;
    std::string name;
  };

  struct ProcessStats {
    u64 resumes = 0;
    u64 cycles_awake = 0;
    u64 polls = 0;
    u64 wall_ns = 0;
  };

  // Runs the attached elaboration exactly once before the first edge.
  void RunPreFlight();

  // Declared first so it is destroyed last: coroutine frames allocated from
  // the arena are destroyed (handle.destroy()) when processes_ dies, which
  // must happen while their storage is still alive.
  BumpArena frame_arena_;

  u64 clock_hz_;
  Picoseconds cycle_period_ps_;
  Cycle now_ = 0;
  std::vector<NamedProcess> processes_;
  std::vector<Slot> sched_;   // parallel to processes_
  std::vector<usize> order_;  // adopted schedule; empty = registration order
  elab::Catalog catalog_;
  elab::Elaboration* elaboration_ = nullptr;
  bool preflight_done_ = false;
  std::vector<Clocked*> clocked_;         // every registered element (master list)
  std::vector<Clocked*> always_commit_;   // subset committed on every edge
  std::vector<Clocked*> dirty_;           // self-announcing elements pending commit
  HazardMonitor* monitor_ = nullptr;
  isize current_process_ = -1;
  usize dead_clocked_ = 0;

  // Quiescence state.
  bool fast_path_ = true;
  u64 wake_epoch_ = 0;
  std::multiset<Cycle> forced_wakes_;
  FaultRegistry* fault_registry_ = nullptr;
  EventScheduler* event_scheduler_ = nullptr;
  std::vector<EdgeObserver*> edge_observers_;

  // Flat schedule state.
  bool flat_schedule_ = false;
  bool wake_routes_active_ = false;
  std::unordered_map<const void*, std::vector<u32>> wake_routes_;

  // Profiler state. Counters (edges_run_ &c.) are always maintained; the
  // phase accumulators only move while profiling_mode_ != kOff.
  ProfilingMode profiling_mode_ = ProfilingMode::kOff;
  u64 sample_stride_ = kDefaultProfilingStride;
  u64 edge_tick_ = 0;  // sampled-mode stride counters (edges / scans)
  u64 scan_tick_ = 0;
  u64 edges_timed_ = 0;
  PhaseProfile phase_resume_;
  PhaseProfile phase_commit_;
  PhaseProfile phase_scan_;
  PhaseProfile phase_fast_forward_;
  PhaseProfile phase_flat_;
  std::vector<ProcessStats> stats_;
  u64 edges_run_ = 0;
  u64 cycles_fast_forwarded_ = 0;
  u64 jumps_ = 0;
};

}  // namespace emu

#endif  // SRC_HDL_SIMULATOR_H_
