// Cycle-accurate single-clock-domain simulator.
//
// Each Step() models one rising clock edge:
//   1. every live HwProcess is resumed once, in registration order
//      (processes observe only pre-edge values of clocked state);
//   2. every registered Clocked element commits its next-state
//      (non-blocking-assignment update).
// This is the substrate the Emu FPGA target runs on; the clock rate (200 MHz
// for NetFPGA SUME, 250 MHz for the P4FPGA baseline, §5.3) converts cycle
// counts to wall-clock latency.
#ifndef SRC_HDL_SIMULATOR_H_
#define SRC_HDL_SIMULATOR_H_

#include <functional>
#include <string>
#include <vector>

#include "src/common/types.h"
#include "src/hdl/process.h"

namespace emu {

// Anything with per-edge commit semantics (Reg, SyncFifo, CAM write ports...).
class Clocked {
 public:
  virtual ~Clocked() = default;
  virtual void Commit() = 0;
};

class Simulator {
 public:
  static constexpr u64 kNetFpgaClockHz = 200'000'000;  // NetFPGA SUME native rate (§5.1)

  explicit Simulator(u64 clock_hz = kNetFpgaClockHz);

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  u64 clock_hz() const { return clock_hz_; }
  Picoseconds cycle_period_ps() const { return cycle_period_ps_; }

  Cycle now() const { return now_; }
  Picoseconds NowPs() const { return static_cast<Picoseconds>(now_) * cycle_period_ps_; }

  // Registers a process; it first runs on the next clock edge.
  void AddProcess(HwProcess process, std::string name);

  // Clocked elements register themselves on construction.
  //
  // LIFETIME RULE: a Clocked element and its Simulator may be destroyed in
  // either order, but Step() must never run after any registered element has
  // died (element destructors deliberately do not unregister, so a design
  // and its simulator can be torn down together in any member order).
  // UnregisterClocked exists for dynamic reconfiguration of a live design.
  void RegisterClocked(Clocked* element);
  void UnregisterClocked(Clocked* element);

  // Advances one clock edge.
  void Step();

  void Run(Cycle cycles);

  // Steps until `done()` is true (checked after each edge). Returns false if
  // `limit` edges elapse first.
  bool RunUntil(const std::function<bool()>& done, Cycle limit);

  usize live_process_count() const;

 private:
  struct NamedProcess {
    HwProcess process;
    std::string name;
  };

  u64 clock_hz_;
  Picoseconds cycle_period_ps_;
  Cycle now_ = 0;
  std::vector<NamedProcess> processes_;
  std::vector<Clocked*> clocked_;
};

}  // namespace emu

#endif  // SRC_HDL_SIMULATOR_H_
