#include "src/hdl/vcd_tracer.h"

#include <fstream>

namespace emu {
namespace {

// VCD identifiers: printable ASCII starting at '!'.
std::string IdFor(usize index) {
  std::string id;
  do {
    id += static_cast<char>('!' + index % 94);
    index /= 94;
  } while (index > 0);
  return id;
}

std::string Binary(u64 value, usize width) {
  std::string out(width, '0');
  for (usize i = 0; i < width; ++i) {
    if ((value >> i) & 1u) {
      out[width - 1 - i] = '1';
    }
  }
  return out;
}

}  // namespace

VcdTracer::VcdTracer(Simulator& sim) : sim_(sim) {}

VcdTracer::~VcdTracer() { Detach(); }

void VcdTracer::Attach() {
  if (!attached_) {
    sim_.AttachEdgeObserver(this);
    attached_ = true;
  }
}

void VcdTracer::Detach() {
  if (attached_) {
    sim_.DetachEdgeObserver(this);
    attached_ = false;
  }
}

void VcdTracer::OnEdge(Cycle /*now*/) { Sample(); }

void VcdTracer::AddSignal(const std::string& name, usize width, std::function<u64()> getter) {
  Signal signal;
  signal.name = name;
  signal.width = width;
  signal.getter = std::move(getter);
  signal.id = IdFor(signals_.size());
  signals_.push_back(std::move(signal));
}

void VcdTracer::AddFlag(const std::string& name, std::function<bool()> getter) {
  AddSignal(name, 1, [g = std::move(getter)] { return g() ? u64{1} : u64{0}; });
}

void VcdTracer::Sample() {
  for (usize i = 0; i < signals_.size(); ++i) {
    Signal& signal = signals_[i];
    const u64 value = signal.getter();
    if (!signal.has_last || value != signal.last) {
      log_.push_back(Change{sim_.now(), i, value});
      signal.last = value;
      signal.has_last = true;
      ++changes_;
    }
  }
}

void VcdTracer::RunAndSample(Cycle cycles) {
  if (attached_) {
    // Attached tracers already sample per edge from OnEdge.
    sim_.Run(cycles);
    return;
  }
  for (Cycle i = 0; i < cycles; ++i) {
    sim_.Step();
    Sample();
  }
}

std::string VcdTracer::Render() const {
  std::string out;
  out += "$date emu-cpp simulation $end\n";
  out += "$timescale " + std::to_string(sim_.cycle_period_ps()) + " ps $end\n";
  out += "$scope module emu $end\n";
  for (const Signal& signal : signals_) {
    out += "$var wire " + std::to_string(signal.width) + " " + signal.id + " " + signal.name +
           " $end\n";
  }
  out += "$upscope $end\n$enddefinitions $end\n";

  Cycle current_time = static_cast<Cycle>(-1);
  for (const Change& change : log_) {
    if (change.time != current_time) {
      out += "#" + std::to_string(change.time) + "\n";
      current_time = change.time;
    }
    const Signal& signal = signals_[change.signal];
    if (signal.width == 1) {
      out += (change.value ? "1" : "0") + signal.id + "\n";
    } else {
      out += "b" + Binary(change.value, signal.width) + " " + signal.id + "\n";
    }
  }
  return out;
}

bool VcdTracer::WriteToFile(const std::string& path) const {
  std::ofstream file(path);
  if (!file) {
    return false;
  }
  file << Render();
  return static_cast<bool>(file);
}

}  // namespace emu
