#include "src/hdl/simulator.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ostream>

#include "src/analysis/elab/elab_graph.h"
#include "src/analysis/elab/elaboration.h"
#include "src/analysis/hazard_monitor.h"
#include "src/core/metrics.h"
#include "src/fault/fault_registry.h"
#include "src/obs/trace_hooks.h"
#include "src/sim/event_scheduler.h"

namespace emu {

Clocked::~Clocked() {
#ifdef EMU_ANALYSIS
  if (analysis_owner_ != nullptr) {
    analysis_owner_->NotifyClockedDestroyed(this);
  }
#endif
}

Simulator::Simulator(u64 clock_hz) : clock_hz_(clock_hz) {
  assert(clock_hz > 0);
  cycle_period_ps_ = kPicosPerSecond / static_cast<Picoseconds>(clock_hz);
}

Simulator::~Simulator() {
#ifdef EMU_ANALYSIS
  // Surviving elements may be destroyed after us (lifetime rule): sever the
  // back-pointers so their destructors do not call into a dead Simulator.
  for (Clocked* element : clocked_) {
    if (element != nullptr) {
      element->analysis_owner_ = nullptr;
    }
  }
#endif
}

usize Simulator::AddProcess(HwProcess process, std::string name) {
  assert(process.Valid());
  const usize index = processes_.size();
  processes_.push_back(NamedProcess{std::move(process), std::move(name)});
  sched_.push_back(Slot{});
  stats_.push_back(ProcessStats{});
  if (!order_.empty()) {
    // A schedule was already adopted: late registrations run after it, in
    // their own registration order.
    order_.push_back(index);
  }
  // A process registered now has (by definition) no IO declaration the route
  // table was built from: routed wakes can no longer prove watcher
  // completeness, so fall back to global wake epochs. The flat span itself
  // stays armed — it is bit-exact either way.
  DisableWakeRouting();
  return index;
}

void Simulator::AdoptSchedule(std::vector<usize> order) {
  assert(order.size() == processes_.size());
#ifndef NDEBUG
  // Must be a permutation of the registration indices.
  std::vector<bool> seen(processes_.size(), false);
  for (usize index : order) {
    assert(index < processes_.size() && !seen[index]);
    seen[index] = true;
  }
#endif
  order_ = std::move(order);
}

bool Simulator::EnableFlatSchedule() {
  const elab::ElabGraph graph = elab::ElabGraph::FromSimulator(*this);
  if (!graph.fully_declared()) {
    return false;
  }
  elab::ScheduleResult schedule = graph.StaticSchedule();
  if (!schedule.ok) {
    return false;
  }
  AdoptSchedule(std::move(schedule.order));
  // Element -> watcher processes: the union of every declared role. Any
  // process that reads, writes, pushes or pops an element may have a parked
  // predicate over its state, so a mutation marks them all; over-marking
  // costs a predicate poll, never a missed resume.
  wake_routes_.clear();
  wake_routes_.reserve(graph.nodes().size());
  for (const elab::ElabNode& node : graph.nodes()) {
    if (node.id == nullptr) {
      continue;  // name-only implicit node: no address identity to route
    }
    std::vector<u32>& watchers = wake_routes_[node.id];
    auto add_role = [&watchers](const std::vector<usize>& role) {
      for (usize process : role) {
        const u32 index = static_cast<u32>(process);
        if (std::find(watchers.begin(), watchers.end(), index) == watchers.end()) {
          watchers.push_back(index);
        }
      }
    };
    add_role(node.readers);
    add_role(node.writers);
    add_role(node.poppers);
    add_role(node.pushers);
  }
  flat_schedule_ = true;
  wake_routes_active_ = true;
  // Force one global re-evaluation so predicates parked before adoption are
  // not skipped on a stale epoch under the new routing regime.
  ++wake_epoch_;
  return true;
}

void Simulator::RunPreFlight() {
  preflight_done_ = true;  // set first: PreFlight may Step() via helpers
  elaboration_->PreFlight(*this);
}

void Simulator::RegisterClocked(Clocked* element, bool self_announcing) {
  assert(element != nullptr);
#ifdef EMU_ANALYSIS
  element->analysis_owner_ = this;
#endif
  clocked_.push_back(element);
  if (!self_announcing) {
    always_commit_.push_back(element);
  }
}

void Simulator::UnregisterClocked(Clocked* element) {
#ifdef EMU_ANALYSIS
  if (element != nullptr) {
    element->analysis_owner_ = nullptr;
  }
#endif
  auto drop = [element](std::vector<Clocked*>& list) {
    list.erase(std::remove(list.begin(), list.end(), element), list.end());
  };
  drop(clocked_);
  drop(always_commit_);
  drop(dirty_);
  if (element != nullptr) {
    element->commit_enqueued_ = false;
  }
}

void Simulator::NotifyClockedDestroyed(Clocked* element) {
  for (Clocked*& slot : clocked_) {
    if (slot == element) {
      slot = nullptr;
      ++dead_clocked_;
    }
  }
  // The commit lists are walked without null checks on the fast path; a
  // dying element must leave them immediately.
  always_commit_.erase(std::remove(always_commit_.begin(), always_commit_.end(), element),
                       always_commit_.end());
  dirty_.erase(std::remove(dirty_.begin(), dirty_.end(), element), dirty_.end());
}

void Simulator::AttachEdgeObserver(EdgeObserver* observer) {
  assert(observer != nullptr);
  edge_observers_.push_back(observer);
}

void Simulator::DetachEdgeObserver(EdgeObserver* observer) {
  edge_observers_.erase(std::remove(edge_observers_.begin(), edge_observers_.end(), observer),
                        edge_observers_.end());
}

void Simulator::Reclassify(usize index) {
  Slot& slot = sched_[index];
  HwProcess& process = processes_[index].process;
  if (process.Done()) {
    slot.state = Slot::kDone;
    return;
  }
  auto& promise = process.promise();
  if (promise.wait_pred != nullptr) {
    slot.state = Slot::kParked;
    slot.wait_pred = promise.wait_pred;
    slot.wait_ctx = promise.wait_ctx;
    slot.wait_epoch = kWaitEpochStale;   // force at least one evaluation
    slot.routed_stale = true;
    promise.wait_pred = nullptr;
    promise.wait_ctx = nullptr;
    return;
  }
  if (promise.sleep_cycles > 0) {
    // Suspended during the edge at now_; the old per-edge decrement resumed
    // it sleep_cycles edges after the next one.
    slot.state = Slot::kSleeping;
    slot.wake_at = now_ + 1 + promise.sleep_cycles;
    promise.sleep_cycles = 0;
    return;
  }
  slot.state = Slot::kRunnable;
}

namespace {

inline u64 ElapsedNs(std::chrono::steady_clock::time_point start,
                     std::chrono::steady_clock::time_point stop) {
  return static_cast<u64>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start).count());
}

}  // namespace

u64 Simulator::SweepProcesses(bool lazy, bool timed) {
  u64 activity = 0;
  const usize count = processes_.size();
  const usize* order = order_.empty() ? nullptr : order_.data();
  for (usize pos = 0; pos < count; ++pos) {
    const usize i = order != nullptr ? order[pos] : pos;
    Slot& slot = sched_[i];
    if (slot.state == Slot::kDone) {
      continue;
    }
    if (slot.state == Slot::kSleeping) {
      if (slot.wake_at > now_) {
        continue;
      }
    } else if (slot.state == Slot::kParked) {
      if (lazy && !slot.routed_stale && slot.wait_epoch == wake_epoch_) {
        continue;  // no watched (or, routing off, any) state changed since the last evaluation
      }
      ProcessStats& stats = stats_[i];
      ++stats.polls;
      ++activity;
      if (!slot.wait_pred(slot.wait_ctx)) {
        slot.wait_epoch = wake_epoch_;
        slot.routed_stale = false;
        ++stats.cycles_awake;
        continue;
      }
    }
    ProcessStats& stats = stats_[i];
    ++stats.resumes;
    ++stats.cycles_awake;
    ++activity;
    HwProcess& process = processes_[i].process;
    if (timed) [[unlikely]] {
      const auto start = std::chrono::steady_clock::now();
      process.Resume();
      stats.wall_ns += ElapsedNs(start, std::chrono::steady_clock::now());
    } else {
      process.Resume();
    }
    Reclassify(i);
  }
  return activity;
}

u64 Simulator::ProfiledSweepAndCommit(bool lazy) {
  ++phase_resume_.calls;
  ++phase_commit_.calls;
  const bool timed =
      profiling_mode_ == ProfilingMode::kFull || (++edge_tick_ % sample_stride_) == 0;
  if (!timed) {
    const u64 activity = SweepProcesses(lazy, /*timed=*/false);
    CommitEdge();
    return activity;
  }
  const auto t0 = std::chrono::steady_clock::now();
  const u64 activity = SweepProcesses(lazy, /*timed=*/true);
  const auto t1 = std::chrono::steady_clock::now();
  CommitEdge();
  const auto t2 = std::chrono::steady_clock::now();
  ++phase_resume_.timed_calls;
  phase_resume_.wall_ns += ElapsedNs(t0, t1);
  ++phase_commit_.timed_calls;
  phase_commit_.wall_ns += ElapsedNs(t1, t2);
  ++edges_timed_;
  return activity;
}

void Simulator::CommitEdge() {
  for (Clocked* element : always_commit_) {
    element->Commit();
  }
  // Index loop: a Commit() that re-announces (none in the kernel do, but the
  // contract allows it) grows the queue mid-walk.
  for (usize i = 0; i < dirty_.size(); ++i) {
    Clocked* element = dirty_[i];
    element->commit_enqueued_ = false;
    element->Commit();
  }
  dirty_.clear();
}

void Simulator::Step() {
  if (elaboration_ != nullptr && !preflight_done_) [[unlikely]] {
    RunPreFlight();
  }
  // Armed fault callback targets sample once per edge, before processes run
  // (the tick at `now_` precedes the edge at `now_`, matching the chaos
  // harness's historical `registry.Tick(now); Run(1);` order).
  if (fault_registry_ != nullptr) [[unlikely]] {
    fault_registry_->Tick(now_);
  }
  if (!forced_wakes_.empty()) [[unlikely]] {
    ConsumeForcedWakes();
  }
#ifdef EMU_ANALYSIS
  // Keep the uninstrumented path identical to the non-analysis build: with
  // no monitor attached (and no tombstoned elements) there is exactly one
  // extra branch per Step(), not one per process.
  if (monitor_ != nullptr || dead_clocked_ > 0) [[unlikely]] {
    StepInstrumented();
    return;
  }
#endif
  // Epoch-lazy parked-predicate evaluation is only an optimization shortcut;
  // with the fast path off every parked predicate is evaluated on every
  // edge, which is the reference semantics.
  if (profiling_mode_ != ProfilingMode::kOff) [[unlikely]] {
    ProfiledSweepAndCommit(/*lazy=*/fast_path_);
  } else {
    SweepProcesses(/*lazy=*/fast_path_, /*timed=*/false);
    CommitEdge();
  }
  ++now_;
  ++edges_run_;
  if (!edge_observers_.empty()) [[unlikely]] {
    for (EdgeObserver* observer : edge_observers_) {
      observer->OnEdge(now_);
    }
  }
}

#ifdef EMU_ANALYSIS
void Simulator::StepInstrumented() {
  if (dead_clocked_ > 0) {
    // The lifetime rule (see the header) was violated: a registered element
    // died and Step() ran anyway. With a monitor this is a report; without
    // one it is a hard stop — the non-analysis build would be corrupting
    // freed memory right here.
    if (monitor_ != nullptr) {
      monitor_->OnPostMortemStep(dead_clocked_);
    } else {
      std::fprintf(stderr,
                   "emu: fatal: Simulator::Step() after %zu registered Clocked element(s) "
                   "were destroyed (lifetime rule in src/hdl/simulator.h)\n",
                   dead_clocked_);
      std::abort();
    }
  }
  const usize* order = order_.empty() ? nullptr : order_.data();
  for (usize pos = 0; pos < processes_.size(); ++pos) {
    const usize i = order != nullptr ? order[pos] : pos;
    current_process_ = static_cast<isize>(i);
    if (monitor_ != nullptr) {
      monitor_->OnProcessResume(i, processes_[i].name);
    }
    // Exact semantics, no scheduler bookkeeping: parked predicates are
    // evaluated on every edge (without freshening the lazy-skip epoch — the
    // instrumented path never converts monitor observation into fast-path
    // state), so the monitor observes everything a per-edge testbench would.
    Slot& slot = sched_[i];
    if (slot.state == Slot::kDone) {
      continue;
    }
    if (slot.state == Slot::kSleeping) {
      if (slot.wake_at > now_) {
        continue;
      }
    } else if (slot.state == Slot::kParked) {
      if (!slot.wait_pred(slot.wait_ctx)) {
        continue;
      }
    }
    processes_[i].process.Resume();
    Reclassify(i);
  }
  current_process_ = -1;
  // Commit everything registered (null-checked: slots may be tombstoned),
  // in registration order — the dirty queue is a fast-path optimization the
  // instrumented path subsumes.
  for (Clocked* element : clocked_) {
    if (element != nullptr) {
      element->Commit();
    }
  }
  for (Clocked* element : dirty_) {
    element->commit_enqueued_ = false;
  }
  dirty_.clear();
  ++now_;
  ++edges_run_;
  if (!edge_observers_.empty()) [[unlikely]] {
    for (EdgeObserver* observer : edge_observers_) {
      observer->OnEdge(now_);
    }
  }
}
#endif

Cycle Simulator::QuiescentWindow(Cycle budget) {
  if (!fast_path_ || !edge_observers_.empty()) {
    return 0;
  }
#ifdef EMU_ANALYSIS
  if (monitor_ != nullptr || dead_clocked_ > 0) {
    return 0;
  }
#endif
  if (fault_registry_ != nullptr) {
    const u64 demand = fault_registry_->NextTickDemand(now_);
    if (demand <= now_) {
      return 0;
    }
    if (demand != FaultRegistry::kNeverDemands) {
      budget = std::min(budget, static_cast<Cycle>(demand - now_));
    }
  }
  if (!forced_wakes_.empty()) {
    const Cycle first = *forced_wakes_.begin();
    if (first <= now_) {
      return 0;
    }
    budget = std::min(budget, first - now_);
  }
  if (event_scheduler_ != nullptr && !event_scheduler_->Empty()) {
    const Cycle event_cycle =
        static_cast<Cycle>(event_scheduler_->NextEventTime() / cycle_period_ps_);
    if (event_cycle <= now_) {
      return 0;
    }
    budget = std::min(budget, event_cycle - now_);
  }
  Cycle window = budget;
  for (const Slot& slot : sched_) {
    switch (slot.state) {
      case Slot::kDone:
        continue;
      case Slot::kSleeping:
        if (slot.wake_at <= now_) {
          return 0;  // due: the next edge must execute
        }
        window = std::min(window, slot.wake_at - now_);
        continue;
      case Slot::kParked:
        if (!slot.routed_stale && slot.wait_epoch == wake_epoch_) {
          continue;  // predicate provably unchanged: sleeps through any window
        }
        return 0;  // parked with a stale predicate that needs evaluation
      case Slot::kRunnable:
        return 0;
    }
  }
  if (window > 0) {
    // Buffered writes (testbench code mutating a Reg/FIFO/BRAM between Run
    // calls, or a process's writes from the edge it went to sleep on) need a
    // real edge to commit before time may jump.
    if (!dirty_.empty()) {
      return 0;
    }
    for (const Clocked* element : clocked_) {
      if (element->CommitPending()) {
        return 0;
      }
    }
  }
  return window;
}

Cycle Simulator::ProfiledQuiescentWindow(Cycle budget) {
  if (profiling_mode_ == ProfilingMode::kOff) [[likely]] {
    return QuiescentWindow(budget);
  }
  ++phase_scan_.calls;
  const bool timed =
      profiling_mode_ == ProfilingMode::kFull || (++scan_tick_ % sample_stride_) == 0;
  if (!timed) {
    return QuiescentWindow(budget);
  }
  const auto t0 = std::chrono::steady_clock::now();
  const Cycle window = QuiescentWindow(budget);
  ++phase_scan_.timed_calls;
  phase_scan_.wall_ns += ElapsedNs(t0, std::chrono::steady_clock::now());
  return window;
}

void Simulator::AttachFaultRegistry(FaultRegistry* registry) {
  fault_registry_ = registry;
  if (registry != nullptr) {
    registry->set_trace_tick_period_ps(cycle_period_ps_);
  }
}

void Simulator::FastForward(Cycle cycles) {
  assert(cycles > 0);
  if (profiling_mode_ != ProfilingMode::kOff) [[unlikely]] {
    // Jumps are rare relative to edges: always time them when profiling.
    const auto t0 = std::chrono::steady_clock::now();
    if (obs::TraceBuffer* tb = obs::ActiveBuffer()) {
      obs::EmitComplete(tb, "sim.quiescent", NowPs(),
                        static_cast<Picoseconds>(cycles) * cycle_period_ps_);
    }
    now_ += cycles;
    cycles_fast_forwarded_ += cycles;
    ++jumps_;
    if (fault_registry_ != nullptr) {
      fault_registry_->NoteSkippedTicks(cycles);
    }
    ++phase_fast_forward_.calls;
    ++phase_fast_forward_.timed_calls;
    phase_fast_forward_.wall_ns += ElapsedNs(t0, std::chrono::steady_clock::now());
    return;
  }
  // The jump itself is an observable worth tracing: a complete span covering
  // the skipped window shows exactly where the run was quiescent.
  if (obs::TraceBuffer* tb = obs::ActiveBuffer()) {
    obs::EmitComplete(tb, "sim.quiescent", NowPs(),
                      static_cast<Picoseconds>(cycles) * cycle_period_ps_);
  }
  // Sleep wake-ups are absolute cycles, so the jump is O(1): QuiescentWindow
  // bounded it by the earliest wake_at, and no slot state needs touching.
  now_ += cycles;
  cycles_fast_forwarded_ += cycles;
  ++jumps_;
  if (fault_registry_ != nullptr) {
    // Armed callback targets that allowed the jump still saw one injection
    // opportunity per skipped tick; keep their books identical to per-edge
    // sampling.
    fault_registry_->NoteSkippedTicks(cycles);
  }
}

void Simulator::RunFlatSpan(Cycle end, const std::function<bool()>* done) {
  // Phase attribution: the whole span is timed as one flat_span entry
  // (inclusive of the sweeps/commits inside it), so the flat loop's dispatch
  // saving shows up as flat_span.wall minus the inner phases.
  struct SpanTimer {
    PhaseProfile* phase;
    std::chrono::steady_clock::time_point start;
    explicit SpanTimer(PhaseProfile* p)
        : phase(p), start(p != nullptr ? std::chrono::steady_clock::now()
                                       : std::chrono::steady_clock::time_point{}) {}
    ~SpanTimer() {
      if (phase != nullptr) {
        ++phase->calls;
        ++phase->timed_calls;
        phase->wall_ns += ElapsedNs(start, std::chrono::steady_clock::now());
      }
    }
  };
  SpanTimer span_timer(profiling_mode_ != ProfilingMode::kOff ? &phase_flat_ : nullptr);
  while (now_ < end) {
    if (fault_registry_ != nullptr) [[unlikely]] {
      fault_registry_->Tick(now_);
    }
    if (!forced_wakes_.empty()) [[unlikely]] {
      ConsumeForcedWakes();
    }
    u64 activity;
    if (profiling_mode_ != ProfilingMode::kOff) [[unlikely]] {
      activity = ProfiledSweepAndCommit(/*lazy=*/true);
    } else {
      activity = SweepProcesses(/*lazy=*/true, /*timed=*/false);
      CommitEdge();
    }
    ++now_;
    ++edges_run_;
    if (!edge_observers_.empty()) [[unlikely]] {
      // Attached mid-span (e.g. by a fault callback): this edge ran with the
      // observer live, so it sees the edge, and the caller's loop falls back
      // to dynamic per-edge dispatch for the rest of the run.
      for (EdgeObserver* observer : edge_observers_) {
        observer->OnEdge(now_);
      }
      return;
    }
#ifdef EMU_ANALYSIS
    if (monitor_ != nullptr || dead_clocked_ > 0) [[unlikely]] {
      return;  // fall back to StepInstrumented dispatch
    }
#endif
    if (done != nullptr && (*done)()) {
      return;
    }
    if (activity == 0) {
      // Quiescent edge: hand control back so Run can fast-forward the rest
      // of the window instead of idling through it edge by edge.
      return;
    }
  }
}

void Simulator::Run(Cycle cycles) {
  if (elaboration_ != nullptr && !preflight_done_) [[unlikely]] {
    RunPreFlight();
  }
  const Cycle end = now_ + cycles;
  while (now_ < end) {
    const Cycle window = ProfiledQuiescentWindow(end - now_);
    if (window > 0) {
      FastForward(window);
    } else if (FlatSpanEligible()) {
      RunFlatSpan(end, nullptr);
    } else {
      Step();
    }
  }
}

bool Simulator::RunUntil(const std::function<bool()>& done, Cycle limit) {
  if (elaboration_ != nullptr && !preflight_done_) [[unlikely]] {
    RunPreFlight();
  }
  const Cycle end = now_ + limit;
  while (now_ < end) {
    if (done()) {
      return true;
    }
    // `done` is a pure function of simulation state (header contract), so it
    // cannot flip inside a quiescent window: checking once per executed edge
    // or jump is exactly equivalent to checking every cycle.
    const Cycle window = ProfiledQuiescentWindow(end - now_);
    if (window > 0) {
      FastForward(window);
    } else if (FlatSpanEligible()) {
      RunFlatSpan(end, &done);
    } else {
      Step();
    }
  }
  return done();
}

usize Simulator::live_process_count() const {
  usize count = 0;
  for (const auto& entry : processes_) {
    if (!entry.process.Done()) {
      ++count;
    }
  }
  return count;
}

SimProfile Simulator::ProfileReport() const {
  SimProfile profile;
  profile.profiling_enabled = profiling_mode_ != ProfilingMode::kOff;
  profile.mode = profiling_mode_;
  profile.sample_stride = sample_stride_;
  profile.edges_run = edges_run_;
  profile.cycles_fast_forwarded = cycles_fast_forwarded_;
  profile.jumps = jumps_;
  profile.edges_timed = edges_timed_;
  profile.resume_dispatch = phase_resume_;
  profile.commit_sweep = phase_commit_;
  profile.quiescence_scan = phase_scan_;
  profile.fast_forward = phase_fast_forward_;
  profile.flat_span = phase_flat_;
  profile.processes.reserve(processes_.size());
  for (usize i = 0; i < processes_.size(); ++i) {
    ProcessProfile entry;
    entry.name = processes_[i].name;
    entry.resumes = stats_[i].resumes;
    entry.cycles_awake = stats_[i].cycles_awake;
    entry.polls = stats_[i].polls;
    entry.wall_ns = stats_[i].wall_ns;
    profile.processes.push_back(std::move(entry));
  }
  return profile;
}

void Simulator::RegisterMetrics(MetricsRegistry& metrics, const std::string& prefix) const {
  metrics.Register(prefix + ".edges_run", &edges_run_);
  metrics.Register(prefix + ".cycles_fast_forwarded", &cycles_fast_forwarded_);
  metrics.Register(prefix + ".jumps", &jumps_);
  metrics.RegisterGauge(prefix + ".live_processes",
                        [this] { return static_cast<u64>(live_process_count()); });
}

void Simulator::DumpDependencyGraph(std::ostream& os) const {
  if (monitor_ != nullptr) {
    monitor_->DumpDot(os);
    return;
  }
  os << "digraph emu_design {\n  rankdir=LR;\n";
  for (usize i = 0; i < processes_.size(); ++i) {
    os << "  p" << i << " [shape=box,label=\"" << processes_[i].name << "\"];\n";
  }
  os << "}\n";
}

}  // namespace emu
