#include "src/hdl/simulator.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <ostream>

#include "src/analysis/hazard_monitor.h"

namespace emu {

Clocked::~Clocked() {
#ifdef EMU_ANALYSIS
  if (analysis_owner_ != nullptr) {
    analysis_owner_->NotifyClockedDestroyed(this);
  }
#endif
}

Simulator::Simulator(u64 clock_hz) : clock_hz_(clock_hz) {
  assert(clock_hz > 0);
  cycle_period_ps_ = kPicosPerSecond / static_cast<Picoseconds>(clock_hz);
}

Simulator::~Simulator() {
#ifdef EMU_ANALYSIS
  // Surviving elements may be destroyed after us (lifetime rule): sever the
  // back-pointers so their destructors do not call into a dead Simulator.
  for (Clocked* element : clocked_) {
    if (element != nullptr) {
      element->analysis_owner_ = nullptr;
    }
  }
#endif
}

void Simulator::AddProcess(HwProcess process, std::string name) {
  assert(process.Valid());
  processes_.push_back(NamedProcess{std::move(process), std::move(name)});
}

void Simulator::RegisterClocked(Clocked* element) {
  assert(element != nullptr);
#ifdef EMU_ANALYSIS
  element->analysis_owner_ = this;
#endif
  clocked_.push_back(element);
}

void Simulator::UnregisterClocked(Clocked* element) {
#ifdef EMU_ANALYSIS
  if (element != nullptr) {
    element->analysis_owner_ = nullptr;
  }
#endif
  clocked_.erase(std::remove(clocked_.begin(), clocked_.end(), element), clocked_.end());
}

void Simulator::NotifyClockedDestroyed(Clocked* element) {
  for (Clocked*& slot : clocked_) {
    if (slot == element) {
      slot = nullptr;
      ++dead_clocked_;
    }
  }
}

void Simulator::Step() {
#ifdef EMU_ANALYSIS
  // Keep the uninstrumented path identical to the non-analysis build: with
  // no monitor attached (and no tombstoned elements) there is exactly one
  // extra branch per Step(), not one per process.
  if (monitor_ != nullptr || dead_clocked_ > 0) [[unlikely]] {
    StepInstrumented();
    return;
  }
#endif
  for (auto& entry : processes_) {
    entry.process.Tick();
  }
  for (Clocked* element : clocked_) {
    element->Commit();
  }
  ++now_;
}

#ifdef EMU_ANALYSIS
void Simulator::StepInstrumented() {
  if (dead_clocked_ > 0) {
    // The lifetime rule (see the header) was violated: a registered element
    // died and Step() ran anyway. With a monitor this is a report; without
    // one it is a hard stop — the non-analysis build would be corrupting
    // freed memory right here.
    if (monitor_ != nullptr) {
      monitor_->OnPostMortemStep(dead_clocked_);
    } else {
      std::fprintf(stderr,
                   "emu: fatal: Simulator::Step() after %zu registered Clocked element(s) "
                   "were destroyed (lifetime rule in src/hdl/simulator.h)\n",
                   dead_clocked_);
      std::abort();
    }
  }
  for (usize i = 0; i < processes_.size(); ++i) {
    current_process_ = static_cast<isize>(i);
    if (monitor_ != nullptr) {
      monitor_->OnProcessResume(i, processes_[i].name);
    }
    processes_[i].process.Tick();
  }
  current_process_ = -1;
  for (Clocked* element : clocked_) {
    if (element != nullptr) {
      element->Commit();
    }
  }
  ++now_;
}
#endif

void Simulator::Run(Cycle cycles) {
  for (Cycle i = 0; i < cycles; ++i) {
    Step();
  }
}

bool Simulator::RunUntil(const std::function<bool()>& done, Cycle limit) {
  for (Cycle i = 0; i < limit; ++i) {
    if (done()) {
      return true;
    }
    Step();
  }
  return done();
}

usize Simulator::live_process_count() const {
  usize count = 0;
  for (const auto& entry : processes_) {
    if (!entry.process.Done()) {
      ++count;
    }
  }
  return count;
}

void Simulator::DumpDependencyGraph(std::ostream& os) const {
  if (monitor_ != nullptr) {
    monitor_->DumpDot(os);
    return;
  }
  os << "digraph emu_design {\n  rankdir=LR;\n";
  for (usize i = 0; i < processes_.size(); ++i) {
    os << "  p" << i << " [shape=box,label=\"" << processes_[i].name << "\"];\n";
  }
  os << "}\n";
}

}  // namespace emu
