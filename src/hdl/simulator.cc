#include "src/hdl/simulator.h"

#include <algorithm>
#include <cassert>

namespace emu {

Simulator::Simulator(u64 clock_hz) : clock_hz_(clock_hz) {
  assert(clock_hz > 0);
  cycle_period_ps_ = kPicosPerSecond / static_cast<Picoseconds>(clock_hz);
}

void Simulator::AddProcess(HwProcess process, std::string name) {
  assert(process.Valid());
  processes_.push_back(NamedProcess{std::move(process), std::move(name)});
}

void Simulator::RegisterClocked(Clocked* element) {
  assert(element != nullptr);
  clocked_.push_back(element);
}

void Simulator::UnregisterClocked(Clocked* element) {
  clocked_.erase(std::remove(clocked_.begin(), clocked_.end(), element), clocked_.end());
}

void Simulator::Step() {
  for (auto& entry : processes_) {
    entry.process.Tick();
  }
  for (Clocked* element : clocked_) {
    element->Commit();
  }
  ++now_;
}

void Simulator::Run(Cycle cycles) {
  for (Cycle i = 0; i < cycles; ++i) {
    Step();
  }
}

bool Simulator::RunUntil(const std::function<bool()>& done, Cycle limit) {
  for (Cycle i = 0; i < limit; ++i) {
    if (done()) {
      return true;
    }
    Step();
  }
  return done();
}

usize Simulator::live_process_count() const {
  usize count = 0;
  for (const auto& entry : processes_) {
    if (!entry.process.Done()) {
      ++count;
    }
  }
  return count;
}

}  // namespace emu
