#include "src/hdl/simulator.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ostream>

#include "src/analysis/elab/elaboration.h"
#include "src/analysis/hazard_monitor.h"
#include "src/core/metrics.h"
#include "src/fault/fault_registry.h"
#include "src/obs/trace_hooks.h"
#include "src/sim/event_scheduler.h"

namespace emu {

Clocked::~Clocked() {
#ifdef EMU_ANALYSIS
  if (analysis_owner_ != nullptr) {
    analysis_owner_->NotifyClockedDestroyed(this);
  }
#endif
}

Simulator::Simulator(u64 clock_hz) : clock_hz_(clock_hz) {
  assert(clock_hz > 0);
  cycle_period_ps_ = kPicosPerSecond / static_cast<Picoseconds>(clock_hz);
}

Simulator::~Simulator() {
#ifdef EMU_ANALYSIS
  // Surviving elements may be destroyed after us (lifetime rule): sever the
  // back-pointers so their destructors do not call into a dead Simulator.
  for (Clocked* element : clocked_) {
    if (element != nullptr) {
      element->analysis_owner_ = nullptr;
    }
  }
#endif
}

usize Simulator::AddProcess(HwProcess process, std::string name) {
  assert(process.Valid());
  const usize index = processes_.size();
  processes_.push_back(NamedProcess{std::move(process), std::move(name)});
  stats_.push_back(ProcessStats{});
  if (!order_.empty()) {
    // A schedule was already adopted: late registrations run after it, in
    // their own registration order.
    order_.push_back(index);
  }
  return index;
}

void Simulator::AdoptSchedule(std::vector<usize> order) {
  assert(order.size() == processes_.size());
#ifndef NDEBUG
  // Must be a permutation of the registration indices.
  std::vector<bool> seen(processes_.size(), false);
  for (usize index : order) {
    assert(index < processes_.size() && !seen[index]);
    seen[index] = true;
  }
#endif
  order_ = std::move(order);
}

void Simulator::RunPreFlight() {
  preflight_done_ = true;  // set first: PreFlight may Step() via helpers
  elaboration_->PreFlight(*this);
}

void Simulator::RegisterClocked(Clocked* element) {
  assert(element != nullptr);
#ifdef EMU_ANALYSIS
  element->analysis_owner_ = this;
#endif
  clocked_.push_back(element);
}

void Simulator::UnregisterClocked(Clocked* element) {
#ifdef EMU_ANALYSIS
  if (element != nullptr) {
    element->analysis_owner_ = nullptr;
  }
#endif
  clocked_.erase(std::remove(clocked_.begin(), clocked_.end(), element), clocked_.end());
}

void Simulator::NotifyClockedDestroyed(Clocked* element) {
  for (Clocked*& slot : clocked_) {
    if (slot == element) {
      slot = nullptr;
      ++dead_clocked_;
    }
  }
}

void Simulator::AttachEdgeObserver(EdgeObserver* observer) {
  assert(observer != nullptr);
  edge_observers_.push_back(observer);
}

void Simulator::DetachEdgeObserver(EdgeObserver* observer) {
  edge_observers_.erase(std::remove(edge_observers_.begin(), edge_observers_.end(), observer),
                        edge_observers_.end());
}

void Simulator::Step() {
  if (elaboration_ != nullptr && !preflight_done_) [[unlikely]] {
    RunPreFlight();
  }
  // Armed fault callback targets sample once per edge, before processes run
  // (the tick at `now_` precedes the edge at `now_`, matching the chaos
  // harness's historical `registry.Tick(now); Run(1);` order).
  if (fault_registry_ != nullptr) [[unlikely]] {
    fault_registry_->Tick(now_);
  }
  if (!forced_wakes_.empty()) [[unlikely]] {
    ConsumeForcedWakes();
  }
#ifdef EMU_ANALYSIS
  // Keep the uninstrumented path identical to the non-analysis build: with
  // no monitor attached (and no tombstoned elements) there is exactly one
  // extra branch per Step(), not one per process.
  if (monitor_ != nullptr || dead_clocked_ > 0) [[unlikely]] {
    StepInstrumented();
    return;
  }
#endif
  // Epoch-lazy parked-predicate evaluation is only an optimization shortcut;
  // with the fast path off every parked predicate is evaluated on every
  // edge, which is the reference semantics.
  const bool lazy = fast_path_;
  const usize* order = order_.empty() ? nullptr : order_.data();
  for (usize slot = 0; slot < processes_.size(); ++slot) {
    const usize i = order != nullptr ? order[slot] : slot;
    HwProcess& process = processes_[i].process;
    if (process.Done()) {
      continue;
    }
    auto& promise = process.promise();
    if (promise.sleep_cycles > 0) {
      --promise.sleep_cycles;
      continue;
    }
    ProcessStats& stats = stats_[i];
    if (promise.wait_pred != nullptr) {
      if (lazy && promise.wait_epoch == wake_epoch_) {
        continue;  // no wake-tracked state changed since the last evaluation
      }
      ++stats.polls;
      if (!promise.wait_pred(promise.wait_ctx)) {
        promise.wait_epoch = wake_epoch_;
        ++stats.cycles_awake;
        continue;
      }
      promise.wait_pred = nullptr;
    }
    ++stats.resumes;
    ++stats.cycles_awake;
    if (profiling_) [[unlikely]] {
      const auto start = std::chrono::steady_clock::now();
      process.Resume();
      stats.wall_ns += static_cast<u64>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                            std::chrono::steady_clock::now() - start)
                                            .count());
    } else {
      process.Resume();
    }
  }
  for (Clocked* element : clocked_) {
    element->Commit();
  }
  ++now_;
  ++edges_run_;
  if (!edge_observers_.empty()) [[unlikely]] {
    for (EdgeObserver* observer : edge_observers_) {
      observer->OnEdge(now_);
    }
  }
}

#ifdef EMU_ANALYSIS
void Simulator::StepInstrumented() {
  if (dead_clocked_ > 0) {
    // The lifetime rule (see the header) was violated: a registered element
    // died and Step() ran anyway. With a monitor this is a report; without
    // one it is a hard stop — the non-analysis build would be corrupting
    // freed memory right here.
    if (monitor_ != nullptr) {
      monitor_->OnPostMortemStep(dead_clocked_);
    } else {
      std::fprintf(stderr,
                   "emu: fatal: Simulator::Step() after %zu registered Clocked element(s) "
                   "were destroyed (lifetime rule in src/hdl/simulator.h)\n",
                   dead_clocked_);
      std::abort();
    }
  }
  const usize* order = order_.empty() ? nullptr : order_.data();
  for (usize slot = 0; slot < processes_.size(); ++slot) {
    const usize i = order != nullptr ? order[slot] : slot;
    current_process_ = static_cast<isize>(i);
    if (monitor_ != nullptr) {
      monitor_->OnProcessResume(i, processes_[i].name);
    }
    // Tick() evaluates parked predicates on every edge (exact semantics):
    // the instrumented path never skips work the monitor might observe.
    processes_[i].process.Tick();
  }
  current_process_ = -1;
  for (Clocked* element : clocked_) {
    if (element != nullptr) {
      element->Commit();
    }
  }
  ++now_;
  ++edges_run_;
  if (!edge_observers_.empty()) [[unlikely]] {
    for (EdgeObserver* observer : edge_observers_) {
      observer->OnEdge(now_);
    }
  }
}
#endif

Cycle Simulator::QuiescentWindow(Cycle budget) {
  if (!fast_path_ || !edge_observers_.empty()) {
    return 0;
  }
#ifdef EMU_ANALYSIS
  if (monitor_ != nullptr || dead_clocked_ > 0) {
    return 0;
  }
#endif
  if (fault_registry_ != nullptr) {
    const u64 demand = fault_registry_->NextTickDemand(now_);
    if (demand <= now_) {
      return 0;
    }
    if (demand != FaultRegistry::kNeverDemands) {
      budget = std::min(budget, static_cast<Cycle>(demand - now_));
    }
  }
  if (!forced_wakes_.empty()) {
    const Cycle first = *forced_wakes_.begin();
    if (first <= now_) {
      return 0;
    }
    budget = std::min(budget, first - now_);
  }
  if (event_scheduler_ != nullptr && !event_scheduler_->Empty()) {
    const Cycle event_cycle =
        static_cast<Cycle>(event_scheduler_->NextEventTime() / cycle_period_ps_);
    if (event_cycle <= now_) {
      return 0;
    }
    budget = std::min(budget, event_cycle - now_);
  }
  Cycle window = budget;
  for (const auto& entry : processes_) {
    const HwProcess& process = entry.process;
    if (process.Done()) {
      continue;
    }
    const auto& promise = process.promise();
    if (promise.sleep_cycles > 0) {
      window = std::min(window, static_cast<Cycle>(promise.sleep_cycles));
      continue;
    }
    if (promise.wait_pred != nullptr && promise.wait_epoch == wake_epoch_) {
      continue;  // parked, predicate provably unchanged: sleeps through any window
    }
    return 0;  // runnable, or parked with a stale predicate that needs evaluation
  }
  if (window > 0) {
    // Buffered writes (testbench code mutating a Reg/FIFO/BRAM between Run
    // calls, or a process's writes from the edge it went to sleep on) need a
    // real edge to commit before time may jump.
    for (const Clocked* element : clocked_) {
      if (element->CommitPending()) {
        return 0;
      }
    }
  }
  return window;
}

void Simulator::AttachFaultRegistry(FaultRegistry* registry) {
  fault_registry_ = registry;
  if (registry != nullptr) {
    registry->set_trace_tick_period_ps(cycle_period_ps_);
  }
}

void Simulator::FastForward(Cycle cycles) {
  assert(cycles > 0);
  // The jump itself is an observable worth tracing: a complete span covering
  // the skipped window shows exactly where the run was quiescent.
  if (obs::TraceBuffer* tb = obs::ActiveBuffer()) {
    obs::EmitComplete(tb, "sim.quiescent", NowPs(),
                      static_cast<Picoseconds>(cycles) * cycle_period_ps_);
  }
  for (auto& entry : processes_) {
    if (entry.process.Done()) {
      continue;
    }
    auto& promise = entry.process.promise();
    if (promise.sleep_cycles > 0) {
      // QuiescentWindow bounded the jump by the minimum sleep, so no sleeper
      // is skipped past its wake-up edge.
      assert(promise.sleep_cycles >= cycles);
      promise.sleep_cycles -= cycles;
    }
  }
  now_ += cycles;
  cycles_fast_forwarded_ += cycles;
  ++jumps_;
  if (fault_registry_ != nullptr) {
    // Armed callback targets that allowed the jump still saw one injection
    // opportunity per skipped tick; keep their books identical to per-edge
    // sampling.
    fault_registry_->NoteSkippedTicks(cycles);
  }
}

void Simulator::Run(Cycle cycles) {
  if (elaboration_ != nullptr && !preflight_done_) [[unlikely]] {
    RunPreFlight();
  }
  const Cycle end = now_ + cycles;
  while (now_ < end) {
    const Cycle window = QuiescentWindow(end - now_);
    if (window > 0) {
      FastForward(window);
    } else {
      Step();
    }
  }
}

bool Simulator::RunUntil(const std::function<bool()>& done, Cycle limit) {
  if (elaboration_ != nullptr && !preflight_done_) [[unlikely]] {
    RunPreFlight();
  }
  const Cycle end = now_ + limit;
  while (now_ < end) {
    if (done()) {
      return true;
    }
    // `done` is a pure function of simulation state (header contract), so it
    // cannot flip inside a quiescent window: checking once per executed edge
    // or jump is exactly equivalent to checking every cycle.
    const Cycle window = QuiescentWindow(end - now_);
    if (window > 0) {
      FastForward(window);
    } else {
      Step();
    }
  }
  return done();
}

usize Simulator::live_process_count() const {
  usize count = 0;
  for (const auto& entry : processes_) {
    if (!entry.process.Done()) {
      ++count;
    }
  }
  return count;
}

SimProfile Simulator::ProfileReport() const {
  SimProfile profile;
  profile.edges_run = edges_run_;
  profile.cycles_fast_forwarded = cycles_fast_forwarded_;
  profile.jumps = jumps_;
  profile.processes.reserve(processes_.size());
  for (usize i = 0; i < processes_.size(); ++i) {
    ProcessProfile entry;
    entry.name = processes_[i].name;
    entry.resumes = stats_[i].resumes;
    entry.cycles_awake = stats_[i].cycles_awake;
    entry.polls = stats_[i].polls;
    entry.wall_ns = stats_[i].wall_ns;
    profile.processes.push_back(std::move(entry));
  }
  return profile;
}

void Simulator::RegisterMetrics(MetricsRegistry& metrics, const std::string& prefix) const {
  metrics.Register(prefix + ".edges_run", &edges_run_);
  metrics.Register(prefix + ".cycles_fast_forwarded", &cycles_fast_forwarded_);
  metrics.Register(prefix + ".jumps", &jumps_);
  metrics.RegisterGauge(prefix + ".live_processes",
                        [this] { return static_cast<u64>(live_process_count()); });
}

void Simulator::DumpDependencyGraph(std::ostream& os) const {
  if (monitor_ != nullptr) {
    monitor_->DumpDot(os);
    return;
  }
  os << "digraph emu_design {\n  rankdir=LR;\n";
  for (usize i = 0; i < processes_.size(); ++i) {
    os << "  p" << i << " [shape=box,label=\"" << processes_[i].name << "\"];\n";
  }
  os << "}\n";
}

}  // namespace emu
