// Synchronous FIFO with RTL timing semantics.
//
// Within a cycle, Pop() returns the pre-edge head and Push() enqueues a value
// that becomes visible only after the edge commits, so a producer and a
// consumer touching the same FIFO in the same cycle behave like two RTL
// modules sharing a BRAM FIFO. Depth is enforced against committed occupancy
// plus same-cycle pushes.
//
// Design rule (enforced by emu-check in analysis builds): consult CanPush()
// before Push() in the same cycle. A Push() that returns false without a
// same-cycle CanPush() query is the LOSTBACKPRESSURE hazard — silently
// dropped data.
#ifndef SRC_HDL_FIFO_H_
#define SRC_HDL_FIFO_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <string>
#include <vector>

#include "src/hdl/resource_model.h"
#include "src/hdl/simulator.h"
#include "src/obs/trace_hooks.h"

#ifdef EMU_ANALYSIS
#include "src/analysis/hazard_monitor.h"
#endif

namespace emu {

template <typename T>
class SyncFifo : public Clocked {
 public:
  // `word_bits` feeds the resource model (a FIFO of 512 x 256-bit words costs
  // more BRAM than one of 16 x 8-bit words).
  SyncFifo(Simulator& sim, usize depth, usize word_bits)
      : SyncFifo(sim, std::string(), depth, word_bits) {}

  SyncFifo(Simulator& sim, std::string name, usize depth, usize word_bits)
      : sim_(sim),
        name_(std::move(name)),
        depth_(depth),
        resources_(FifoResources(depth, word_bits)) {
    if (depth == 0) {
      Fatal("constructed with depth 0");
    }
    // Self-announcing: Push/Pop call AnnounceDirty on the clean→dirty
    // transition, so the scheduler commits this FIFO only on edges where a
    // port was actually used.
    sim_.RegisterClocked(this, /*self_announcing=*/true);
    sim_.catalog().AddElement(this, elab::NodeKind::kFifo, name_, /*no_init=*/false, depth);
  }

  SyncFifo(const SyncFifo&) = delete;
  SyncFifo& operator=(const SyncFifo&) = delete;

  // Intentionally does NOT unregister: see the lifetime rule in simulator.h
  // (a Clocked element and its Simulator may be torn down in either order,
  // provided Step() is never called after the element dies).
  ~SyncFifo() override = default;

  const std::string& name() const { return name_; }
  usize depth() const { return depth_; }
  const ResourceUsage& resources() const { return resources_; }

  // Committed occupancy minus same-cycle pops (what the consumer side sees).
  // A stalled FIFO reads as empty: the consumer port is frozen.
  usize Size() const { return Stalled() ? 0 : items_.size() - pop_count_; }
  bool Empty() const { return Size() == 0; }

  // Fault injection (emu-fault): freezes both ports for `cycles` cycles —
  // producers see full, consumers see empty; contents are preserved. A
  // CanPush()-honouring producer backpressures through the stall; one that
  // pushes blind surfaces as LOSTBACKPRESSURE in analysis builds.
  void InjectStall(Cycle cycles) {
    stall_until_ = std::max(stall_until_, sim_.now() + static_cast<Cycle>(cycles));
    // The stall ends by the clock, not by any process's action: schedule a
    // forced wake so parked consumers/producers re-evaluate at expiry.
    sim_.RequestWakeAt(stall_until_);
    // Only predicates over this FIFO's occupancy can observe the stall
    // (expiry re-wakes globally via the forced wake above).
    sim_.NotifyWakeFor(this);
  }
  bool Stalled() const { return sim_.now() < stall_until_; }

  bool CanPush() const {
#ifdef EMU_ANALYSIS
    if (HazardMonitor* m = sim_.monitor()) {
      m->OnFifoCanPush(this, name_);
    }
#endif
    return CanPushRaw();
  }

  // CanPush() without the emu-check observation hook, for WaitUntil wake
  // predicates: a parked producer polling for space is not "consulting
  // backpressure before a push" and must not register as such. Use CanPush()
  // on the cycle you actually push.
  bool PollCanPush() const { return CanPushRaw(); }

  // Returns false (and drops nothing) when full, mirroring backpressure.
  bool Push(T value) {
    const bool accepted = CanPushRaw();
    if (accepted) {
      // Packet flight recorder: a traced frame entering a named FIFO opens a
      // residency span (closed by the Pop that drains it).
      if (obs::TraceBuffer* tb = obs::ActiveBuffer()) {
        const u64 flight = obs::FrameTraceId(value);
        if (flight != 0 && !name_.empty()) {
          obs::EmitAsyncBegin(tb, name_, sim_.NowPs(), flight);
        }
      }
      if (pending_push_.empty()) {
        sim_.AnnounceDirty(this);
      }
      pending_push_.push_back(std::move(value));
    }
#ifdef EMU_ANALYSIS
    if (HazardMonitor* m = sim_.monitor()) {
      m->OnFifoPush(this, name_, accepted);
    }
#endif
    return accepted;
  }

  const T& Front() const {
    if (Empty()) [[unlikely]] {
      Fatal("Front() on empty FIFO (underflow)");
    }
#ifdef EMU_ANALYSIS
    if (HazardMonitor* m = sim_.monitor()) {
      m->OnFifoPop(this, name_);
    }
#endif
    return items_[pop_count_];
  }

  T Pop() {
    if (Empty()) [[unlikely]] {
      Fatal("Pop() on empty FIFO (underflow)");
    }
#ifdef EMU_ANALYSIS
    if (HazardMonitor* m = sim_.monitor()) {
      m->OnFifoPop(this, name_);
    }
#endif
    T value = std::move(items_[pop_count_]);
    ++pop_count_;
    if (pop_count_ == 1) {
      // Deferring the commit-time erase is state-neutral (see CommitPending),
      // but an uncommitted pop backlog would grow without bound; enqueue a
      // commit so popped storage is reclaimed at this edge.
      sim_.AnnounceDirty(this);
    }
    if (obs::TraceBuffer* tb = obs::ActiveBuffer()) {
      const u64 flight = obs::FrameTraceId(value);
      if (flight != 0 && !name_.empty()) {
        obs::EmitAsyncEnd(tb, name_, sim_.NowPs(), flight);
      }
    }
    // Space freed by a pop is visible to CanPush in the same cycle: a parked
    // producer registered after this consumer must re-evaluate this edge.
    sim_.NotifyWakeFor(this);
    return value;
  }

  void Commit() override {
    items_.erase(items_.begin(), items_.begin() + static_cast<std::ptrdiff_t>(pop_count_));
    pop_count_ = 0;
    if (!pending_push_.empty()) {
      // Pushed items become visible to consumers at this edge's commit; wake
      // parked consumers for the next edge. (Pops need no commit-time wake:
      // Size/CanPush already accounted for them at Pop() time.)
      sim_.NotifyWakeFor(this);
    }
    for (auto& value : pending_push_) {
      items_.push_back(std::move(value));
    }
    pending_push_.clear();
  }

  // Pending pops are not "pending" here: their erase above is state-neutral
  // (Size/CanPush/Front already index past them), so deferring it across a
  // quiescent window changes nothing observable.
  bool CommitPending() const override { return !pending_push_.empty(); }

 private:
  bool CanPushRaw() const {
    return !Stalled() && items_.size() - pop_count_ + pending_push_.size() < depth_;
  }

  // Underflow/misuse is UB in RTL terms; stop with an attributable message
  // (the bare assert() this replaces vanished in NDEBUG builds and named no
  // element when it did fire).
  [[noreturn]] void Fatal(const char* what) const {
    std::fprintf(stderr, "emu: fatal: SyncFifo '%s': %s\n",
                 name_.empty() ? "<anonymous>" : name_.c_str(), what);
    std::abort();
  }

  Simulator& sim_;
  std::string name_;
  usize depth_;
  ResourceUsage resources_;
  std::deque<T> items_;
  std::vector<T> pending_push_;
  usize pop_count_ = 0;
  Cycle stall_until_ = 0;
};

}  // namespace emu

#endif  // SRC_HDL_FIFO_H_
