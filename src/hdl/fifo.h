// Synchronous FIFO with RTL timing semantics.
//
// Within a cycle, Pop() returns the pre-edge head and Push() enqueues a value
// that becomes visible only after the edge commits, so a producer and a
// consumer touching the same FIFO in the same cycle behave like two RTL
// modules sharing a BRAM FIFO. Depth is enforced against committed occupancy
// plus same-cycle pushes.
#ifndef SRC_HDL_FIFO_H_
#define SRC_HDL_FIFO_H_

#include <cassert>
#include <deque>
#include <vector>

#include "src/hdl/resource_model.h"
#include "src/hdl/simulator.h"

namespace emu {

template <typename T>
class SyncFifo : public Clocked {
 public:
  // `word_bits` feeds the resource model (a FIFO of 512 x 256-bit words costs
  // more BRAM than one of 16 x 8-bit words).
  SyncFifo(Simulator& sim, usize depth, usize word_bits)
      : sim_(sim), depth_(depth), resources_(FifoResources(depth, word_bits)) {
    assert(depth > 0);
    sim_.RegisterClocked(this);
  }

  SyncFifo(const SyncFifo&) = delete;
  SyncFifo& operator=(const SyncFifo&) = delete;

  // Intentionally does NOT unregister: see the lifetime rule in simulator.h
  // (a Clocked element and its Simulator may be torn down in either order,
  // provided Step() is never called after the element dies).
  ~SyncFifo() override = default;

  usize depth() const { return depth_; }
  const ResourceUsage& resources() const { return resources_; }

  // Committed occupancy minus same-cycle pops (what the consumer side sees).
  usize Size() const { return items_.size() - pop_count_; }
  bool Empty() const { return Size() == 0; }

  bool CanPush() const { return items_.size() - pop_count_ + pending_push_.size() < depth_; }

  // Returns false (and drops nothing) when full, mirroring backpressure.
  bool Push(T value) {
    if (!CanPush()) {
      return false;
    }
    pending_push_.push_back(std::move(value));
    return true;
  }

  const T& Front() const {
    assert(!Empty());
    return items_[pop_count_];
  }

  T Pop() {
    assert(!Empty());
    T value = std::move(items_[pop_count_]);
    ++pop_count_;
    return value;
  }

  void Commit() override {
    items_.erase(items_.begin(), items_.begin() + static_cast<std::ptrdiff_t>(pop_count_));
    pop_count_ = 0;
    for (auto& value : pending_push_) {
      items_.push_back(std::move(value));
    }
    pending_push_.clear();
  }

 private:
  Simulator& sim_;
  usize depth_;
  ResourceUsage resources_;
  std::deque<T> items_;
  std::vector<T> pending_push_;
  usize pop_count_ = 0;
};

}  // namespace emu

#endif  // SRC_HDL_FIFO_H_
