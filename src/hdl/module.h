// Module: a named hardware block with a resource bill.
//
// Designs (testbenches, the NetFPGA pipeline, benchmark harnesses) sum module
// resources to produce the utilization rows of Tables 3 and 5. Modules are
// owned by whoever builds the design; the Design registry holds non-owning
// pointers and must not outlive its modules.
#ifndef SRC_HDL_MODULE_H_
#define SRC_HDL_MODULE_H_

#include <string>
#include <vector>

#include "src/hdl/resource_model.h"
#include "src/hdl/simulator.h"

namespace emu {

class Module {
 public:
  Module(Simulator& sim, std::string name) : sim_(sim), name_(std::move(name)) {}

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  virtual ~Module() = default;

  const std::string& name() const { return name_; }
  Simulator& sim() const { return sim_; }

  const ResourceUsage& resources() const { return resources_; }

 protected:
  void AddResources(const ResourceUsage& usage) { resources_ += usage; }

 private:
  Simulator& sim_;
  std::string name_;
  ResourceUsage resources_;
};

// Aggregates the resource bills of a set of modules (e.g. "the main logical
// core" whose utilization Table 3 reports).
class Design {
 public:
  void Add(const Module& module) { modules_.push_back(&module); }

  ResourceUsage TotalResources() const {
    ResourceUsage total;
    for (const Module* module : modules_) {
      total += module->resources();
    }
    return total;
  }

  std::vector<std::pair<std::string, ResourceUsage>> PerModule() const {
    std::vector<std::pair<std::string, ResourceUsage>> out;
    out.reserve(modules_.size());
    for (const Module* module : modules_) {
      out.emplace_back(module->name(), module->resources());
    }
    return out;
  }

 private:
  std::vector<const Module*> modules_;
};

}  // namespace emu

#endif  // SRC_HDL_MODULE_H_
