// SyncFifo is a header-only template; see fifo.h.
#include "src/hdl/fifo.h"
