// VCD waveform tracing.
//
// Table 1's footnote notes RTL simulators are "accessible on the HDL level
// to all solutions"; this is that access for the simulation substrate: named
// signals sampled once per clock edge into a standard Value Change Dump file
// that GTKWave (or any VCD viewer) opens. Signals are registered as polled
// getters so anything — a Reg<T>, a FIFO depth, a service counter — can be
// traced without plumbing.
//
// The tracer is an EdgeObserver: while Attach()ed it samples after every
// committed edge, regardless of who advances the clock, and its presence
// pins the kernel to exact per-edge stepping (no quiescence fast-forward) so
// the dump is gapless. Detach() to stop tracing and release the kernel.
#ifndef SRC_HDL_VCD_TRACER_H_
#define SRC_HDL_VCD_TRACER_H_

#include <functional>
#include <string>
#include <vector>

#include "src/hdl/simulator.h"

namespace emu {

class VcdTracer : public EdgeObserver {
 public:
  // `timescale_ps` should be the simulator's cycle period.
  explicit VcdTracer(Simulator& sim);
  ~VcdTracer() override;

  // Registers a signal: `width` bits, value polled from `getter` each Sample.
  void AddSignal(const std::string& name, usize width, std::function<u64()> getter);

  // Convenience for booleans.
  void AddFlag(const std::string& name, std::function<bool()> getter);

  // Records the current value of every signal at the current cycle (only
  // changes are stored, as VCD semantics want).
  void Sample();

  // Starts/stops per-edge sampling driven by the simulator itself. While
  // attached, every sim.Run()/Step() edge is sampled.
  void Attach();
  void Detach();
  bool attached() const { return attached_; }

  // EdgeObserver: called by the simulator after each committed edge.
  void OnEdge(Cycle now) override;

  // Compatibility wrapper: runs the simulator `cycles` edges, sampling after
  // every edge (whether or not the tracer is attached).
  void RunAndSample(Cycle cycles);

  usize change_count() const { return changes_; }

  // Renders the complete VCD document.
  std::string Render() const;
  bool WriteToFile(const std::string& path) const;

 private:
  struct Signal {
    std::string name;
    usize width;
    std::function<u64()> getter;
    std::string id;     // VCD short identifier
    u64 last = 0;
    bool has_last = false;
  };
  struct Change {
    Cycle time;
    usize signal;
    u64 value;
  };

  Simulator& sim_;
  std::vector<Signal> signals_;
  std::vector<Change> log_;
  usize changes_ = 0;
  bool attached_ = false;
};

}  // namespace emu

#endif  // SRC_HDL_VCD_TRACER_H_
