// Clocked registers and combinational wires.
//
// Reg<T> has Verilog non-blocking-assignment semantics: Write() stores a
// next-state value that becomes visible through Read() only after the
// simulator commits the current clock edge. Wire<T> is an immediate
// (combinational) value whose intra-cycle visibility follows process
// registration order; use it only between a producer process registered
// before its consumer, exactly like a combinational path that settles within
// the cycle.
//
// Both carry an optional name and both emit emu-check hooks in analysis
// builds (EMU_ANALYSIS): multi-driver detection on Reg, registration-order
// race detection on Wire, and read-before-write detection on elements
// constructed with the emu::no_init tag (the X-propagation hazard). See
// src/analysis/hazard.h for the full taxonomy.
//
// Both are wake-tracked for the quiescence scheduler: a committed Reg write
// and an immediate Wire write (when the wire knows its simulator) bump the
// wake epoch, so `co_await WaitUntil(pred)` predicates may read them.
#ifndef SRC_HDL_SIGNAL_H_
#define SRC_HDL_SIGNAL_H_

#include <string>
#include <type_traits>

#include "src/hdl/simulator.h"

#ifdef EMU_ANALYSIS
#include "src/analysis/hazard_monitor.h"
#endif

namespace emu {

// Tag marking a signal as having no meaningful reset value: reading it
// before the first write is the UNINITREAD hazard in analysis builds.
struct NoInit {};
inline constexpr NoInit no_init{};

template <typename T>
class Reg : public Clocked {
 public:
  Reg(Simulator& sim, T initial = T{}) : Reg(sim, std::string(), std::move(initial)) {}

  Reg(Simulator& sim, std::string name, T initial = T{})
      : sim_(sim), name_(std::move(name)), current_(initial), next_(std::move(initial)) {
    // Self-announcing: Write() calls AnnounceDirty, so clean registers are
    // never touched by the per-edge commit sweep.
    sim_.RegisterClocked(this, /*self_announcing=*/true);
    sim_.catalog().AddElement(this, elab::NodeKind::kReg, name_);
  }

  Reg(Simulator& sim, std::string name, NoInit)
      : sim_(sim), name_(std::move(name)), no_default_(true) {
    sim_.RegisterClocked(this, /*self_announcing=*/true);
    sim_.catalog().AddElement(this, elab::NodeKind::kReg, name_, /*no_init=*/true);
  }

  Reg(const Reg&) = delete;
  Reg& operator=(const Reg&) = delete;

  // See the lifetime rule in simulator.h: no unregistration on destruction
  // (analysis builds tombstone the registration instead).
  ~Reg() override = default;

  const std::string& name() const { return name_; }

  const T& Read() const {
#ifdef EMU_ANALYSIS
    if (HazardMonitor* m = sim_.monitor()) {
      m->OnRegRead(this, name_, no_default_ && !written_);
    }
#endif
    return current_;
  }

  void Write(T value) {
#ifdef EMU_ANALYSIS
    if (HazardMonitor* m = sim_.monitor()) {
      m->OnRegWrite(this, name_);
    }
#endif
    written_ = true;
    if (!dirty_) {
      dirty_ = true;
      sim_.AnnounceDirty(this);
    }
    next_ = std::move(value);
  }

  // Read of the pending next-state; occasionally needed by testbenches.
  // Deliberately unhooked: it is a simulation artifact, not a design signal.
  const T& Pending() const { return next_; }

  // SEU-style fault injection (emu-fault): flips one bit of the stored
  // value. Both current and pending state flip — Commit() copies next_ over
  // current_ unconditionally, so flipping only current_ would self-heal on
  // the very next edge instead of persisting like a real upset. Integral T
  // only; `bit` is taken modulo the value width.
  void InjectBitFlip(usize bit)
    requires std::is_integral_v<T>
  {
    const T mask = static_cast<T>(T{1} << (bit % (sizeof(T) * 8)));
    current_ = static_cast<T>(current_ ^ mask);
    next_ = static_cast<T>(next_ ^ mask);
  }

  void Commit() override {
    if (dirty_) {
      // The committed value may differ from what a parked WaitUntil
      // predicate last observed: make it re-evaluate (see Simulator::
      // NotifyWake). Registers a quiescent design never writes stay clean,
      // so idle windows remain fast-forwardable.
      dirty_ = false;
      sim_.NotifyWakeFor(this);
    }
    current_ = next_;
  }

  // A clean register has current_ == next_ (InjectBitFlip flips both), so
  // skipping its Commit() across a quiescent window is a no-op.
  bool CommitPending() const override { return dirty_; }

 private:
  Simulator& sim_;
  std::string name_;
  T current_{};
  T next_{};
  bool no_default_ = false;
  bool written_ = false;
  bool dirty_ = false;
};

template <typename T>
class Wire {
 public:
  explicit Wire(T initial = T{}) : value_(std::move(initial)) {}

  // Named wires participate in emu-check: combinational-ordering analysis
  // needs to know who reads and writes them.
  Wire(Simulator& sim, std::string name, T initial = T{})
      : sim_(&sim), name_(std::move(name)), value_(std::move(initial)) {
    sim.catalog().AddElement(this, elab::NodeKind::kWire, name_);
  }

  Wire(Simulator& sim, std::string name, NoInit)
      : sim_(&sim), name_(std::move(name)), no_default_(true) {
    sim.catalog().AddElement(this, elab::NodeKind::kWire, name_, /*no_init=*/true);
  }

  const std::string& name() const { return name_; }

  const T& Read() const {
#ifdef EMU_ANALYSIS
    if (sim_ != nullptr) {
      if (HazardMonitor* m = sim_->monitor()) {
        m->OnWireRead(this, name_, no_default_ && !written_);
      }
    }
#endif
    return value_;
  }

  void Write(T value) {
#ifdef EMU_ANALYSIS
    if (sim_ != nullptr) {
      if (HazardMonitor* m = sim_->monitor()) {
        m->OnWireWrite(this, name_);
      }
    }
#endif
    written_ = true;
    value_ = std::move(value);
    if (sim_ != nullptr) {
      // Combinational value changed within the cycle: parked predicates of
      // later-registered processes must observe it this edge.
      sim_->NotifyWakeFor(this);
    }
  }

 private:
  Simulator* sim_ = nullptr;
  std::string name_;
  T value_{};
  bool no_default_ = false;
  bool written_ = false;
};

}  // namespace emu

#endif  // SRC_HDL_SIGNAL_H_
