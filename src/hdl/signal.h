// Clocked registers and combinational wires.
//
// Reg<T> has Verilog non-blocking-assignment semantics: Write() stores a
// next-state value that becomes visible through Read() only after the
// simulator commits the current clock edge. Wire<T> is an immediate
// (combinational) value whose intra-cycle visibility follows process
// registration order; use it only between a producer process registered
// before its consumer, exactly like a combinational path that settles within
// the cycle.
#ifndef SRC_HDL_SIGNAL_H_
#define SRC_HDL_SIGNAL_H_

#include "src/hdl/simulator.h"

namespace emu {

template <typename T>
class Reg : public Clocked {
 public:
  Reg(Simulator& sim, T initial = T{})
      : sim_(sim), current_(initial), next_(initial) {
    sim_.RegisterClocked(this);
  }

  Reg(const Reg&) = delete;
  Reg& operator=(const Reg&) = delete;

  // See the lifetime rule in simulator.h: no unregistration on destruction.
  ~Reg() override = default;

  const T& Read() const { return current_; }
  void Write(T value) { next_ = std::move(value); }

  // Read of the pending next-state; occasionally needed by testbenches.
  const T& Pending() const { return next_; }

  void Commit() override { current_ = next_; }

 private:
  Simulator& sim_;
  T current_;
  T next_;
};

template <typename T>
class Wire {
 public:
  explicit Wire(T initial = T{}) : value_(std::move(initial)) {}

  const T& Read() const { return value_; }
  void Write(T value) { value_ = std::move(value); }

 private:
  T value_;
};

}  // namespace emu

#endif  // SRC_HDL_SIGNAL_H_
