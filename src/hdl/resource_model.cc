#include "src/hdl/resource_model.h"

#include <cmath>
#include <cstdio>

namespace emu {
namespace {

u64 Ceil(double v) { return static_cast<u64>(std::ceil(v)); }

}  // namespace

std::string ResourceUsage::ToString() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "luts=%llu regs=%llu bram=%llu",
                static_cast<unsigned long long>(luts), static_cast<unsigned long long>(regs),
                static_cast<unsigned long long>(bram_units));
  return buf;
}

ResourceUsage CamIpResources(usize entries, usize key_bits, usize value_bits) {
  const double key_storage_bits = static_cast<double>(entries * key_bits);
  const double value_storage_bits = static_cast<double>(entries * value_bits);
  ResourceUsage r;
  r.luts = Ceil(key_storage_bits * kCamLutsPerBit);
  r.regs = Ceil(key_storage_bits * kCamRegsPerBit);
  r.bram_units = Ceil((key_storage_bits + value_storage_bits) / kCamBramBitsPerUnit);
  return r;
}

ResourceUsage LogicCamResources(usize entries, usize key_bits, usize value_bits) {
  const double key_storage_bits = static_cast<double>(entries * key_bits);
  ResourceUsage r;
  r.luts = Ceil(key_storage_bits * kLogicCamLutsPerBit);
  r.regs = Ceil(key_storage_bits * kLogicCamRegsPerBit +
                static_cast<double>(entries * value_bits));
  // All storage in fabric registers: no BRAM at all, which is exactly the
  // trade the paper describes for the pure-C# CAM.
  r.bram_units = 0;
  return r;
}

ResourceUsage BramResources(usize bits) {
  ResourceUsage r;
  r.bram_units = Ceil(static_cast<double>(bits) / kBramBitsPerUnit);
  // Address decode / output mux glue.
  r.luts = 8 + bits / 2048;
  return r;
}

ResourceUsage FifoResources(usize depth, usize word_bits) {
  ResourceUsage r = BramResources(depth * word_bits);
  r.luts += kFifoControlLuts;
  r.regs += kFifoControlRegs;
  return r;
}

ResourceUsage HlsControlResources(usize states, usize datapath_bits) {
  ResourceUsage r;
  r.luts = Ceil(static_cast<double>(states) * static_cast<double>(datapath_bits) *
                kHlsLutsPerStatePerDatapathBit);
  r.regs = Ceil(static_cast<double>(states) * kHlsRegsPerState) + datapath_bits;
  return r;
}

ResourceUsage RtlControlResources(usize states, usize datapath_bits) {
  ResourceUsage r;
  r.luts = Ceil(static_cast<double>(states) * static_cast<double>(datapath_bits) *
                kRtlLutsPerStatePerDatapathBit);
  r.regs = Ceil(static_cast<double>(states) * kRtlRegsPerState) + datapath_bits;
  return r;
}

}  // namespace emu
