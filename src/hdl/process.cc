// HwProcess is header-only; this translation unit exists so the build has a
// home for future out-of-line process machinery and to keep one .cc per
// header in the module list.
#include "src/hdl/process.h"
