// Coroutine hardware processes.
//
// A HwProcess is the C++ rendering of a Kiwi hardware thread: a sequential
// body whose `co_await Pause()` points become clock-cycle scheduling barriers
// (the paper's Kiwi.Pause(), Fig. 2 line 11 and Fig. 5). The Simulator
// resumes every live process exactly once per rising clock edge, in
// registration order, then commits all clocked state (see signal.h), which
// reproduces Verilog non-blocking-assignment semantics: everything a process
// reads during a cycle is the pre-edge value.
//
// Besides Pause/PauseFor, a process may block on a condition with
// `co_await WaitUntil(pred)`. Semantically this is identical to the classic
// idle spin
//
//   while (!pred()) co_await Pause();
//
// — the predicate is evaluated at the process's registration slot on every
// edge, and the body continues on the first edge where it holds — but it
// also declares the process *parked* to the scheduler, which lets the
// quiescence-aware fast path (simulator.h) skip whole windows in which no
// parked predicate can have changed. For that to be sound the predicate must
// be a pure function of wake-tracked dataplane state: SyncFifo occupancy
// (Empty/Size/PollCanPush/Stalled) of FIFOs on the same simulator, or state
// whose mutations are announced via Simulator::NotifyWake(). It must not
// read the clock — time-based waiting is what PauseFor is for.
#ifndef SRC_HDL_PROCESS_H_
#define SRC_HDL_PROCESS_H_

#include <coroutine>
#include <cstdlib>
#include <utility>

#include "src/common/types.h"
#include "src/core/arena.h"

namespace emu {

// Sentinel wake-epoch value guaranteeing the scheduler evaluates a freshly
// parked predicate at least once (the simulator's epoch counter starts at 0
// and only increments).
inline constexpr u64 kWaitEpochStale = ~u64{0};

class HwProcess {
 public:
  struct promise_type {
    // Cycles the process still wants to sleep before its coroutine is
    // actually resumed; lets PauseFor(n) avoid n real suspensions.
    u64 sleep_cycles = 0;

    // Park state for `co_await WaitUntil(pred)`. While wait_pred is non-null
    // the process is parked: the scheduler evaluates wait_pred(wait_ctx)
    // instead of resuming, and resumes (clearing the park) on the first edge
    // where it returns true. wait_epoch records the simulator's wake epoch
    // at the last false evaluation so the fast path can prove re-evaluation
    // is pointless (see Simulator::NotifyWake).
    bool (*wait_pred)(void*) = nullptr;
    void* wait_ctx = nullptr;
    u64 wait_epoch = kWaitEpochStale;

    HwProcess get_return_object() {
      return HwProcess(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() { std::abort(); }

    // Coroutine frames allocate from the active CoroFrameArenaScope when one
    // is live (design construction wraps itself in one so a pipeline's
    // frames pack contiguously and die with the Simulator's arena), falling
    // back to the global heap otherwise. A header word in front of the frame
    // records which path allocated it; arena frames are reclaimed wholesale
    // by the arena, so their operator delete is a no-op.
    static void* operator new(std::size_t size) {
      if (BumpArena* arena = CoroFrameArenaScope::current()) {
        void* base = arena->Allocate(size + kFrameHeaderBytes, alignof(std::max_align_t));
        *static_cast<u64*>(base) = 1;
        return static_cast<std::byte*>(base) + kFrameHeaderBytes;
      }
      void* base = ::operator new(size + kFrameHeaderBytes);
      *static_cast<u64*>(base) = 0;
      return static_cast<std::byte*>(base) + kFrameHeaderBytes;
    }
    static void operator delete(void* ptr) {
      std::byte* base = static_cast<std::byte*>(ptr) - kFrameHeaderBytes;
      if (*reinterpret_cast<u64*>(base) == 0) {
        ::operator delete(base);
      }
    }

   private:
    // Big enough for the tag, sized to preserve max_align_t alignment of the
    // frame that follows it.
    static constexpr std::size_t kFrameHeaderBytes = alignof(std::max_align_t);
  };

  HwProcess() = default;
  explicit HwProcess(std::coroutine_handle<promise_type> handle) : handle_(handle) {}

  HwProcess(const HwProcess&) = delete;
  HwProcess& operator=(const HwProcess&) = delete;

  HwProcess(HwProcess&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  HwProcess& operator=(HwProcess&& other) noexcept {
    if (this != &other) {
      Destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }

  ~HwProcess() { Destroy(); }

  bool Valid() const { return handle_ != nullptr; }
  bool Done() const { return !handle_ || handle_.done(); }

  // Scheduler access to the sleep/park state; only valid while Valid().
  promise_type& promise() { return handle_.promise(); }
  const promise_type& promise() const { return handle_.promise(); }

  // Resumes the coroutine unconditionally (the caller has already dealt with
  // sleep/park state). Returns false once the process has run to completion.
  //
  // The promise's sleep/park fields are an ANNOUNCEMENT channel: an awaiter
  // writes them at suspension and the scheduler consumes them right after
  // Resume() returns (Simulator::Reclassify moves them into its contiguous
  // scheduling arrays and clears them), so between edges the promise fields
  // of a registered process are always zero/null.
  bool Resume() {
    handle_.resume();
    return !handle_.done();
  }

 private:
  void Destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

// `co_await Pause()`: suspend until the next rising clock edge.
struct Pause {
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<>) const noexcept {}
  void await_resume() const noexcept {}
};

// `co_await PauseFor(n)`: suspend for n clock edges (n == 0 is a no-op).
struct PauseFor {
  u64 cycles;

  explicit PauseFor(u64 n) : cycles(n) {}

  bool await_ready() const noexcept { return cycles == 0; }
  void await_suspend(std::coroutine_handle<HwProcess::promise_type> handle) const noexcept {
    handle.promise().sleep_cycles = cycles - 1;
  }
  void await_resume() const noexcept {}
};

// `co_await WaitUntil(pred)`: continue immediately if pred() already holds
// (no cycle is consumed, matching `if (cond) { work }`), otherwise park until
// the first edge where it does. The predicate object lives in the coroutine
// frame for the duration of the wait; the promise stores only a thunk and a
// pointer to it, so parking allocates nothing.
template <typename Pred>
struct WaitUntil {
  Pred pred;

  explicit WaitUntil(Pred p) : pred(std::move(p)) {}

  bool await_ready() { return pred(); }
  void await_suspend(std::coroutine_handle<HwProcess::promise_type> handle) {
    auto& promise = handle.promise();
    promise.wait_pred = [](void* ctx) { return (*static_cast<Pred*>(ctx))(); };
    promise.wait_ctx = &pred;
    promise.wait_epoch = kWaitEpochStale;
  }
  void await_resume() const noexcept {}
};

template <typename Pred>
WaitUntil(Pred) -> WaitUntil<Pred>;

}  // namespace emu

#endif  // SRC_HDL_PROCESS_H_
