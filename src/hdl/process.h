// Coroutine hardware processes.
//
// A HwProcess is the C++ rendering of a Kiwi hardware thread: a sequential
// body whose `co_await Pause()` points become clock-cycle scheduling barriers
// (the paper's Kiwi.Pause(), Fig. 2 line 11 and Fig. 5). The Simulator
// resumes every live process exactly once per rising clock edge, in
// registration order, then commits all clocked state (see signal.h), which
// reproduces Verilog non-blocking-assignment semantics: everything a process
// reads during a cycle is the pre-edge value.
#ifndef SRC_HDL_PROCESS_H_
#define SRC_HDL_PROCESS_H_

#include <coroutine>
#include <cstdlib>
#include <utility>

#include "src/common/types.h"

namespace emu {

class HwProcess {
 public:
  struct promise_type {
    // Cycles the process still wants to sleep before its coroutine is
    // actually resumed; lets PauseFor(n) avoid n real suspensions.
    u64 sleep_cycles = 0;

    HwProcess get_return_object() {
      return HwProcess(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() { std::abort(); }
  };

  HwProcess() = default;
  explicit HwProcess(std::coroutine_handle<promise_type> handle) : handle_(handle) {}

  HwProcess(const HwProcess&) = delete;
  HwProcess& operator=(const HwProcess&) = delete;

  HwProcess(HwProcess&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  HwProcess& operator=(HwProcess&& other) noexcept {
    if (this != &other) {
      Destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }

  ~HwProcess() { Destroy(); }

  bool Valid() const { return handle_ != nullptr; }
  bool Done() const { return !handle_ || handle_.done(); }

  // One clock edge: wake the coroutine unless it is still sleeping off a
  // PauseFor. Returns false once the process has run to completion.
  bool Tick() {
    if (Done()) {
      return false;
    }
    auto& promise = handle_.promise();
    if (promise.sleep_cycles > 0) {
      --promise.sleep_cycles;
      return true;
    }
    handle_.resume();
    return !handle_.done();
  }

 private:
  void Destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

// `co_await Pause()`: suspend until the next rising clock edge.
struct Pause {
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<>) const noexcept {}
  void await_resume() const noexcept {}
};

// `co_await PauseFor(n)`: suspend for n clock edges (n == 0 is a no-op).
struct PauseFor {
  u64 cycles;

  explicit PauseFor(u64 n) : cycles(n) {}

  bool await_ready() const noexcept { return cycles == 0; }
  void await_suspend(std::coroutine_handle<HwProcess::promise_type> handle) const noexcept {
    handle.promise().sleep_cycles = cycles - 1;
  }
  void await_resume() const noexcept {}
};

}  // namespace emu

#endif  // SRC_HDL_PROCESS_H_
