// FPGA resource accounting.
//
// The paper reports post-place-and-route utilization from Vivado (Table 3 and
// Table 5). Without a board or the Xilinx toolchain we model resources
// structurally: every hdl module declares a ResourceUsage computed from its
// parameters (table entries x key width, FIFO depth x word width, number of
// scheduler states x datapath width, ...). The calibration constants below
// were fitted once against the paper's Table 3 so that the *relative* shape
// holds (Emu switch slightly above the hand-written reference, P4-style
// pipeline roughly an order of magnitude above both); they are not Vivado
// ground truth and EXPERIMENTS.md says so.
#ifndef SRC_HDL_RESOURCE_MODEL_H_
#define SRC_HDL_RESOURCE_MODEL_H_

#include <string>

#include "src/common/types.h"

namespace emu {

// LUT / flip-flop / block-RAM equivalents. "Logic" in the paper's tables maps
// to `luts`, "Memory" to `bram_units` (one unit ~ one RAMB18-style primitive).
struct ResourceUsage {
  u64 luts = 0;
  u64 regs = 0;
  u64 bram_units = 0;

  ResourceUsage& operator+=(const ResourceUsage& other) {
    luts += other.luts;
    regs += other.regs;
    bram_units += other.bram_units;
    return *this;
  }

  friend ResourceUsage operator+(ResourceUsage a, const ResourceUsage& b) { return a += b; }
  friend bool operator==(const ResourceUsage&, const ResourceUsage&) = default;

  std::string ToString() const;
};

// --- Calibration constants (fitted to Table 3; see header comment) ---------

// Binary CAM implemented as a vendor IP block: match logic per stored bit.
// 256 entries x 48-bit keys -> ~2980 LUTs, i.e. ~85% of the Emu switch's
// logic, matching the paper's breakdown ("85% are used by the CAM").
inline constexpr double kCamLutsPerBit = 0.2425;
// CAM entry storage + priority encoder state.
inline constexpr double kCamRegsPerBit = 1.0;
// CAM result/valid RAM: one unit per 4K key-value bits.
inline constexpr double kCamBramBitsPerUnit = 4096.0;

// A CAM synthesized from plain high-level code (the paper's "C# CAM", §4.1)
// burns more fabric per bit because every entry gets compare+mux trees
// scheduled by the HLS tool instead of hand-packed match lines.
inline constexpr double kLogicCamLutsPerBit = 0.62;
inline constexpr double kLogicCamRegsPerBit = 1.35;

// Kiwi-style HLS control: each scheduler state (one per Pause() barrier)
// costs control-mux LUTs proportional to the datapath width it steers.
inline constexpr double kHlsLutsPerStatePerDatapathBit = 0.155;
inline constexpr double kHlsRegsPerState = 24.0;

// Hand-written RTL control for the same function: a human packs the state
// machine tighter (the reference switch's 2836 vs Emu's 3509).
inline constexpr double kRtlLutsPerStatePerDatapathBit = 0.118;
inline constexpr double kRtlRegsPerState = 18.0;

// Match-action pipelines (P4FPGA-style baseline): per-stage parser/deparser
// and table-access logic. P4FPGA instantiates a parser per port.
inline constexpr double kMaParserLutsPerHeaderBit = 8.9;
inline constexpr double kMaActionLutsPerStage = 2300.0;
inline constexpr double kMaDeparserLuts = 2600.0;

// Block RAM: one unit per 18 Kbit, as on Virtex-7.
inline constexpr double kBramBitsPerUnit = 18432.0;

// FIFO control overhead (pointers, full/empty logic).
inline constexpr u64 kFifoControlLuts = 48;
inline constexpr u64 kFifoControlRegs = 32;

// --- Structural cost helpers ------------------------------------------------

ResourceUsage CamIpResources(usize entries, usize key_bits, usize value_bits);
ResourceUsage LogicCamResources(usize entries, usize key_bits, usize value_bits);
ResourceUsage BramResources(usize bits);
ResourceUsage FifoResources(usize depth, usize word_bits);
// HLS-scheduled control logic: `states` scheduler states over a
// `datapath_bits`-wide datapath (states ~ number of Pause() barriers).
ResourceUsage HlsControlResources(usize states, usize datapath_bits);
// Equivalent hand-written RTL control.
ResourceUsage RtlControlResources(usize states, usize datapath_bits);

}  // namespace emu

#endif  // SRC_HDL_RESOURCE_MODEL_H_
