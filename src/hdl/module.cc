// Module/Design are header-only; see module.h.
#include "src/hdl/module.h"
