#include "src/common/bit_util.h"

#include <cassert>

namespace emu {
namespace {

u64 GetBE(std::span<const u8> buf, usize offset, usize nbytes) {
  assert(offset + nbytes <= buf.size());
  u64 v = 0;
  for (usize i = 0; i < nbytes; ++i) {
    v = (v << 8) | buf[offset + i];
  }
  return v;
}

void SetBE(std::span<u8> buf, usize offset, usize nbytes, u64 value) {
  assert(offset + nbytes <= buf.size());
  for (usize i = 0; i < nbytes; ++i) {
    buf[offset + i] = static_cast<u8>(value >> (8 * (nbytes - 1 - i)));
  }
}

}  // namespace

u8 BitUtil::Get8(std::span<const u8> buf, usize offset) {
  return static_cast<u8>(GetBE(buf, offset, 1));
}

u16 BitUtil::Get16(std::span<const u8> buf, usize offset) {
  return static_cast<u16>(GetBE(buf, offset, 2));
}

u32 BitUtil::Get32(std::span<const u8> buf, usize offset) {
  return static_cast<u32>(GetBE(buf, offset, 4));
}

u64 BitUtil::Get48(std::span<const u8> buf, usize offset) { return GetBE(buf, offset, 6); }

u64 BitUtil::Get64(std::span<const u8> buf, usize offset) { return GetBE(buf, offset, 8); }

void BitUtil::Set8(std::span<u8> buf, usize offset, u8 value) { SetBE(buf, offset, 1, value); }

void BitUtil::Set16(std::span<u8> buf, usize offset, u16 value) { SetBE(buf, offset, 2, value); }

void BitUtil::Set32(std::span<u8> buf, usize offset, u32 value) { SetBE(buf, offset, 4, value); }

void BitUtil::Set48(std::span<u8> buf, usize offset, u64 value) { SetBE(buf, offset, 6, value); }

void BitUtil::Set64(std::span<u8> buf, usize offset, u64 value) { SetBE(buf, offset, 8, value); }

u32 BitUtil::GetBits(std::span<const u8> buf, usize byte_offset, usize bit_offset, usize width) {
  assert(width > 0 && width <= 32);
  u32 out = 0;
  for (usize i = 0; i < width; ++i) {
    const usize abs_bit = byte_offset * 8 + bit_offset + i;
    const usize byte = abs_bit / 8;
    const usize bit_in_byte = abs_bit % 8;  // 0 = MSB
    assert(byte < buf.size());
    const u32 bit = (buf[byte] >> (7 - bit_in_byte)) & 1u;
    out = (out << 1) | bit;
  }
  return out;
}

void BitUtil::SetBits(std::span<u8> buf, usize byte_offset, usize bit_offset, usize width,
                      u32 value) {
  assert(width > 0 && width <= 32);
  for (usize i = 0; i < width; ++i) {
    const usize abs_bit = byte_offset * 8 + bit_offset + i;
    const usize byte = abs_bit / 8;
    const usize bit_in_byte = abs_bit % 8;
    assert(byte < buf.size());
    const u8 mask = static_cast<u8>(1u << (7 - bit_in_byte));
    const bool bit = (value >> (width - 1 - i)) & 1u;
    if (bit) {
      buf[byte] |= mask;
    } else {
      buf[byte] &= static_cast<u8>(~mask);
    }
  }
}

}  // namespace emu
