#include "src/common/hexdump.h"

#include <cctype>
#include <cstdio>

namespace emu {

std::string Hexdump(std::span<const u8> data) {
  std::string out;
  char line[24];
  for (usize offset = 0; offset < data.size(); offset += 16) {
    std::snprintf(line, sizeof(line), "%06zx ", offset);
    out += line;
    for (usize i = 0; i < 16; ++i) {
      if (i == 8) {
        out += ' ';
      }
      if (offset + i < data.size()) {
        char hex[4];
        std::snprintf(hex, sizeof(hex), " %02x", data[offset + i]);
        out += hex;
      } else {
        out += "   ";
      }
    }
    out += "  |";
    for (usize i = 0; i < 16 && offset + i < data.size(); ++i) {
      const u8 c = data[offset + i];
      out += std::isprint(c) ? static_cast<char>(c) : '.';
    }
    out += "|\n";
  }
  return out;
}

std::string HexJoin(std::span<const u8> data, char sep) {
  std::string out;
  out.reserve(data.size() * 3);
  char hex[3];
  for (usize i = 0; i < data.size(); ++i) {
    if (i != 0) {
      out += sep;
    }
    std::snprintf(hex, sizeof(hex), "%02x", data[i]);
    out += hex;
  }
  return out;
}

}  // namespace emu
