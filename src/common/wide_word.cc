#include "src/common/wide_word.h"

#include <cstdio>

namespace emu {
namespace wide_word_detail {

std::string LimbsToHex(const u64* limbs, usize n) {
  std::string out;
  out.reserve(n * 16 + 2);
  out += "0x";
  char buf[17];
  for (usize i = n; i-- > 0;) {
    std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(limbs[i]));
    out += buf;
  }
  return out;
}

}  // namespace wide_word_detail
}  // namespace emu
