// Byte-array field accessors in network (big-endian) order.
//
// These mirror the paper's BitUtil.Get32 / BitUtil.Set32 helpers (Fig. 4),
// which Emu's protocol wrappers use to give names and types to bit fields of a
// raw frame. All offsets are byte offsets into the buffer; all multi-byte
// accessors use network byte order because they operate on wire-format frames.
#ifndef SRC_COMMON_BIT_UTIL_H_
#define SRC_COMMON_BIT_UTIL_H_

#include <span>

#include "src/common/types.h"

namespace emu {

class BitUtil {
 public:
  BitUtil() = delete;

  static u8 Get8(std::span<const u8> buf, usize offset);
  static u16 Get16(std::span<const u8> buf, usize offset);
  static u32 Get32(std::span<const u8> buf, usize offset);
  static u64 Get48(std::span<const u8> buf, usize offset);
  static u64 Get64(std::span<const u8> buf, usize offset);

  static void Set8(std::span<u8> buf, usize offset, u8 value);
  static void Set16(std::span<u8> buf, usize offset, u16 value);
  static void Set32(std::span<u8> buf, usize offset, u32 value);
  static void Set48(std::span<u8> buf, usize offset, u64 value);
  static void Set64(std::span<u8> buf, usize offset, u64 value);

  // Bit-granular accessors, used by parsers for sub-byte fields (e.g. the
  // IPv4 version/IHL nibbles and TCP flags). Bit 0 is the most significant
  // bit of the byte at `byte_offset`, matching RFC diagram order.
  static u32 GetBits(std::span<const u8> buf, usize byte_offset, usize bit_offset, usize width);
  static void SetBits(std::span<u8> buf, usize byte_offset, usize bit_offset, usize width,
                      u32 value);
};

}  // namespace emu

#endif  // SRC_COMMON_BIT_UTIL_H_
