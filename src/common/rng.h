// Deterministic random number generation for workloads and latency models.
//
// Every stochastic component of the reproduction (host-stack jitter, loadgen
// key choice, packet payloads) draws from an explicitly seeded Rng so that
// tests and benchmark tables are reproducible run to run.
#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <numeric>
#include <span>
#include <utility>
#include <vector>

#include "src/common/types.h"

namespace emu {

// xoshiro256** by Blackman & Vigna: small, fast, and high quality; avoids
// dragging <random> engine state (and its libstdc++-version-dependent
// distributions) into reproducible results.
class Rng {
 public:
  explicit Rng(u64 seed);

  u64 NextU64();

  // Uniform in [0, bound), bound > 0. Uses rejection sampling to stay unbiased.
  u64 NextBelow(u64 bound);

  // Uniform in [lo, hi], inclusive.
  u64 NextInRange(u64 lo, u64 hi);

  // Uniform in [0, 1).
  double NextDouble();

  // True with probability p.
  bool NextBool(double p);

  // Samples an exponential distribution with the given mean.
  double NextExponential(double mean);

  // Samples a (mu, sigma) lognormal; used by the host-stack latency model
  // where kernel-path delays are right-skewed.
  double NextLognormal(double mu, double sigma);

  // Standard normal via Box-Muller (no cached spare; simple and stateless).
  double NextGaussian();

 private:
  u64 state_[4];
};

// Seed-stable sequence helpers (emu-gossip uses them for ping-target
// round-robin order and ping-req proxy choice). Deliberately not
// std::shuffle/std::sample: their draw sequences are unspecified and differ
// across standard libraries, which would make a replay digest depend on the
// toolchain. These consume a fixed, documented number of draws — Shuffle
// draws size()-1 times, PickK draws min(k, size()) times — so a protocol's
// RNG stream position is also seed-stable.
namespace rng {

// Fisher-Yates, high index down, NextBelow per step.
template <typename T>
void Shuffle(Rng& rng, std::span<T> items) {
  for (usize i = items.size(); i > 1; --i) {
    const usize j = static_cast<usize>(rng.NextBelow(i));
    using std::swap;
    swap(items[i - 1], items[j]);
  }
}

template <typename T>
void Shuffle(Rng& rng, std::vector<T>& items) {
  Shuffle(rng, std::span<T>(items));
}

// k distinct elements, uniform over k-subsets, in shuffled order: the first
// k steps of a front-to-back Fisher-Yates over an index array (partial
// shuffle — cheap for k << size).
template <typename T>
std::vector<T> PickK(Rng& rng, std::span<const T> items, usize k) {
  const usize n = items.size();
  if (k > n) {
    k = n;
  }
  std::vector<usize> index(n);
  std::iota(index.begin(), index.end(), usize{0});
  std::vector<T> picked;
  picked.reserve(k);
  for (usize i = 0; i < k; ++i) {
    const usize j = i + static_cast<usize>(rng.NextBelow(n - i));
    std::swap(index[i], index[j]);
    picked.push_back(items[index[i]]);
  }
  return picked;
}

template <typename T>
std::vector<T> PickK(Rng& rng, const std::vector<T>& items, usize k) {
  return PickK(rng, std::span<const T>(items), k);
}

}  // namespace rng

}  // namespace emu

#endif  // SRC_COMMON_RNG_H_
