// Deterministic random number generation for workloads and latency models.
//
// Every stochastic component of the reproduction (host-stack jitter, loadgen
// key choice, packet payloads) draws from an explicitly seeded Rng so that
// tests and benchmark tables are reproducible run to run.
#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include "src/common/types.h"

namespace emu {

// xoshiro256** by Blackman & Vigna: small, fast, and high quality; avoids
// dragging <random> engine state (and its libstdc++-version-dependent
// distributions) into reproducible results.
class Rng {
 public:
  explicit Rng(u64 seed);

  u64 NextU64();

  // Uniform in [0, bound), bound > 0. Uses rejection sampling to stay unbiased.
  u64 NextBelow(u64 bound);

  // Uniform in [lo, hi], inclusive.
  u64 NextInRange(u64 lo, u64 hi);

  // Uniform in [0, 1).
  double NextDouble();

  // True with probability p.
  bool NextBool(double p);

  // Samples an exponential distribution with the given mean.
  double NextExponential(double mean);

  // Samples a (mu, sigma) lognormal; used by the host-stack latency model
  // where kernel-path delays are right-skewed.
  double NextLognormal(double mu, double sigma);

  // Standard normal via Box-Muller (no cached spare; simple and stateless).
  double NextGaussian();

 private:
  u64 state_[4];
};

}  // namespace emu

#endif  // SRC_COMMON_RNG_H_
