// Fixed-width integer aliases and small shared vocabulary types used across the
// Emu reproduction. Kept deliberately tiny: anything protocol- or
// hardware-specific lives in its own module.
#ifndef SRC_COMMON_TYPES_H_
#define SRC_COMMON_TYPES_H_

#include <cstddef>
#include <cstdint>

namespace emu {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using usize = std::size_t;
// Signed counterpart of usize; used where -1 is a meaningful sentinel (e.g.
// "no process" in the analysis layer).
using isize = std::ptrdiff_t;

// Simulation time in clock cycles of whichever clock domain a module lives in.
using Cycle = std::uint64_t;

// Simulation time in picoseconds. The network simulator and the latency
// accounting use picoseconds so that both a 200 MHz FPGA clock (5000 ps) and
// sub-nanosecond wire delays are representable without rounding.
using Picoseconds = std::int64_t;

inline constexpr Picoseconds kPicosPerNano = 1'000;
inline constexpr Picoseconds kPicosPerMicro = 1'000'000;
inline constexpr Picoseconds kPicosPerMilli = 1'000'000'000;
inline constexpr Picoseconds kPicosPerSecond = 1'000'000'000'000;

constexpr double ToMicroseconds(Picoseconds ps) {
  return static_cast<double>(ps) / static_cast<double>(kPicosPerMicro);
}

constexpr double ToNanoseconds(Picoseconds ps) {
  return static_cast<double>(ps) / static_cast<double>(kPicosPerNano);
}

}  // namespace emu

#endif  // SRC_COMMON_TYPES_H_
