// Lightweight status / expected-value types.
//
// The library is exception-free on its hot paths (a packet that fails to
// parse is data, not an exceptional condition), so fallible operations return
// Status or Expected<T>.
#ifndef SRC_COMMON_STATUS_H_
#define SRC_COMMON_STATUS_H_

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace emu {

enum class ErrorCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kResourceExhausted,
  kFailedPrecondition,
  kUnimplemented,
  kMalformedPacket,
  kUnsupportedProtocol,
  kTimeout,
};

std::string_view ErrorCodeName(ErrorCode code);

class Status {
 public:
  Status() : code_(ErrorCode::kOk) {}
  Status(ErrorCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const;

 private:
  ErrorCode code_;
  std::string message_;
};

inline Status InvalidArgument(std::string msg) {
  return Status(ErrorCode::kInvalidArgument, std::move(msg));
}
inline Status OutOfRange(std::string msg) { return Status(ErrorCode::kOutOfRange, std::move(msg)); }
inline Status NotFound(std::string msg) { return Status(ErrorCode::kNotFound, std::move(msg)); }
inline Status AlreadyExists(std::string msg) {
  return Status(ErrorCode::kAlreadyExists, std::move(msg));
}
inline Status ResourceExhausted(std::string msg) {
  return Status(ErrorCode::kResourceExhausted, std::move(msg));
}
inline Status FailedPrecondition(std::string msg) {
  return Status(ErrorCode::kFailedPrecondition, std::move(msg));
}
inline Status Unimplemented(std::string msg) {
  return Status(ErrorCode::kUnimplemented, std::move(msg));
}
inline Status MalformedPacket(std::string msg) {
  return Status(ErrorCode::kMalformedPacket, std::move(msg));
}
inline Status UnsupportedProtocol(std::string msg) {
  return Status(ErrorCode::kUnsupportedProtocol, std::move(msg));
}
inline Status Timeout(std::string msg) { return Status(ErrorCode::kTimeout, std::move(msg)); }

// Minimal expected-value type (std::expected is C++23; this toolchain is
// C++20). Holds either a T or a non-OK Status.
template <typename T>
class Expected {
 public:
  Expected(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Expected(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!status_.ok() && "Expected<T> built from OK status must carry a value");
  }

  bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  const Status& status() const { return status_; }

  T& value() {
    CheckOk();
    return *value_;
  }
  const T& value() const {
    CheckOk();
    return *value_;
  }

  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  T value_or(T fallback) const { return ok() ? *value_ : std::move(fallback); }

 private:
  // Unconditional (not assert): dereferencing an error is a programming bug
  // that must fail loudly in release builds too.
  void CheckOk() const {
    if (!value_.has_value()) {
      std::fprintf(stderr, "Expected<T>::value() on error: %s\n",
                   status_.ToString().c_str());
      std::abort();
    }
  }

  std::optional<T> value_;
  Status status_;
};

}  // namespace emu

#endif  // SRC_COMMON_STATUS_H_
