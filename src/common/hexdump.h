// Human-readable hex dumps of packet buffers (used by examples, trace dumps,
// and test failure messages).
#ifndef SRC_COMMON_HEXDUMP_H_
#define SRC_COMMON_HEXDUMP_H_

#include <span>
#include <string>

#include "src/common/types.h"

namespace emu {

// Classic 16-bytes-per-line offset/hex/ASCII dump.
std::string Hexdump(std::span<const u8> data);

// Compact single-line "de:ad:be:ef" rendering.
std::string HexJoin(std::span<const u8> data, char sep = ':');

}  // namespace emu

#endif  // SRC_COMMON_HEXDUMP_H_
