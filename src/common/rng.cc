#include "src/common/rng.h"

#include <cassert>
#include <cmath>

namespace emu {
namespace {

u64 Rotl(u64 x, int k) { return (x << k) | (x >> (64 - k)); }

// splitmix64, the recommended seeder for xoshiro state.
u64 SplitMix64(u64& x) {
  x += 0x9e3779b97f4a7c15ULL;
  u64 z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(u64 seed) {
  u64 s = seed;
  for (auto& word : state_) {
    word = SplitMix64(s);
  }
}

u64 Rng::NextU64() {
  const u64 result = Rotl(state_[1] * 5, 7) * 9;
  const u64 t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

u64 Rng::NextBelow(u64 bound) {
  assert(bound > 0);
  const u64 threshold = (~bound + 1) % bound;  // == 2^64 mod bound
  for (;;) {
    const u64 r = NextU64();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

u64 Rng::NextInRange(u64 lo, u64 hi) {
  assert(lo <= hi);
  return lo + NextBelow(hi - lo + 1);
}

double Rng::NextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

double Rng::NextExponential(double mean) {
  double u = NextDouble();
  if (u >= 1.0) {
    u = 0.9999999999999999;
  }
  return -mean * std::log1p(-u);
}

double Rng::NextGaussian() {
  double u1 = NextDouble();
  if (u1 <= 0.0) {
    u1 = 0x1.0p-53;
  }
  const double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double Rng::NextLognormal(double mu, double sigma) {
  return std::exp(mu + sigma * NextGaussian());
}

}  // namespace emu
