// Wide unsigned integers for datapath words wider than 64 bits.
//
// The paper (§3.2, extension iv) notes that C#'s largest primitive is the
// 64-bit word, while line-rate designs need wider I/O busses; Emu therefore
// defines user types for larger words with overloads for all arithmetic
// operators. WideUInt<Bits> is the C++ equivalent: a value type backed by an
// array of 64-bit limbs with the full complement of arithmetic, bitwise,
// shift, and comparison operators, usable as the tdata word of a 256- or
// 512-bit AXI-Stream bus.
#ifndef SRC_COMMON_WIDE_WORD_H_
#define SRC_COMMON_WIDE_WORD_H_

#include <array>
#include <compare>
#include <cstdint>
#include <string>

#include "src/common/types.h"

namespace emu {

template <usize Bits>
class WideUInt {
  static_assert(Bits > 0 && Bits % 64 == 0, "WideUInt width must be a positive multiple of 64");

 public:
  static constexpr usize kBits = Bits;
  static constexpr usize kLimbs = Bits / 64;

  constexpr WideUInt() = default;
  // Intentionally implicit so that small literals (port masks, zero) read
  // naturally at call sites, mirroring how C# integral promotions behave.
  constexpr WideUInt(u64 low) : limbs_{} { limbs_[0] = low; }  // NOLINT(runtime/explicit)

  static constexpr WideUInt Zero() { return WideUInt(); }

  static constexpr WideUInt Max() {
    WideUInt w;
    for (auto& limb : w.limbs_) {
      limb = ~u64{0};
    }
    return w;
  }

  // Limb 0 holds bits [0, 64).
  constexpr u64 Limb(usize i) const { return limbs_[i]; }
  constexpr void SetLimb(usize i, u64 v) { limbs_[i] = v; }

  constexpr u64 ToU64() const { return limbs_[0]; }

  constexpr bool IsZero() const {
    for (u64 limb : limbs_) {
      if (limb != 0) {
        return false;
      }
    }
    return true;
  }

  constexpr bool Bit(usize pos) const { return (limbs_[pos / 64] >> (pos % 64)) & 1u; }

  constexpr void SetBit(usize pos, bool value) {
    const u64 mask = u64{1} << (pos % 64);
    if (value) {
      limbs_[pos / 64] |= mask;
    } else {
      limbs_[pos / 64] &= ~mask;
    }
  }

  // Extracts `width` bits starting at bit `pos` (width <= 64).
  constexpr u64 Extract(usize pos, usize width) const {
    u64 out = 0;
    for (usize i = 0; i < width; ++i) {
      out |= static_cast<u64>(Bit(pos + i)) << i;
    }
    return out;
  }

  // Deposits the low `width` bits of `value` at bit `pos` (width <= 64).
  constexpr void Deposit(usize pos, usize width, u64 value) {
    for (usize i = 0; i < width; ++i) {
      SetBit(pos + i, (value >> i) & 1u);
    }
  }

  // Reads the byte at byte offset `i` with byte 0 being bits [0, 8).
  constexpr u8 Byte(usize i) const { return static_cast<u8>(limbs_[i / 8] >> ((i % 8) * 8)); }

  constexpr void SetByte(usize i, u8 value) {
    const usize limb = i / 8;
    const usize shift = (i % 8) * 8;
    limbs_[limb] = (limbs_[limb] & ~(u64{0xff} << shift)) | (static_cast<u64>(value) << shift);
  }

  friend constexpr bool operator==(const WideUInt& a, const WideUInt& b) = default;

  friend constexpr std::strong_ordering operator<=>(const WideUInt& a, const WideUInt& b) {
    for (usize i = kLimbs; i-- > 0;) {
      if (a.limbs_[i] != b.limbs_[i]) {
        return a.limbs_[i] <=> b.limbs_[i];
      }
    }
    return std::strong_ordering::equal;
  }

  constexpr WideUInt& operator+=(const WideUInt& rhs) {
    u64 carry = 0;
    for (usize i = 0; i < kLimbs; ++i) {
      const u64 prev = limbs_[i];
      limbs_[i] = prev + rhs.limbs_[i] + carry;
      carry = (limbs_[i] < prev || (carry != 0 && limbs_[i] == prev)) ? 1 : 0;
    }
    return *this;
  }

  constexpr WideUInt& operator-=(const WideUInt& rhs) {
    u64 borrow = 0;
    for (usize i = 0; i < kLimbs; ++i) {
      const u64 prev = limbs_[i];
      const u64 sub = rhs.limbs_[i] + borrow;
      // `sub` can wrap only when rhs.limbs_[i] == max and borrow == 1, in
      // which case subtracting it is a no-op that must keep the borrow.
      const bool sub_wrapped = sub < rhs.limbs_[i];
      limbs_[i] = prev - sub;
      borrow = (sub_wrapped || prev < sub) ? 1 : 0;
    }
    return *this;
  }

  constexpr WideUInt& operator&=(const WideUInt& rhs) {
    for (usize i = 0; i < kLimbs; ++i) {
      limbs_[i] &= rhs.limbs_[i];
    }
    return *this;
  }

  constexpr WideUInt& operator|=(const WideUInt& rhs) {
    for (usize i = 0; i < kLimbs; ++i) {
      limbs_[i] |= rhs.limbs_[i];
    }
    return *this;
  }

  constexpr WideUInt& operator^=(const WideUInt& rhs) {
    for (usize i = 0; i < kLimbs; ++i) {
      limbs_[i] ^= rhs.limbs_[i];
    }
    return *this;
  }

  constexpr WideUInt operator~() const {
    WideUInt out;
    for (usize i = 0; i < kLimbs; ++i) {
      out.limbs_[i] = ~limbs_[i];
    }
    return out;
  }

  constexpr WideUInt& operator<<=(usize n) {
    if (n >= kBits) {
      *this = Zero();
      return *this;
    }
    const usize limb_shift = n / 64;
    const usize bit_shift = n % 64;
    for (usize i = kLimbs; i-- > 0;) {
      u64 v = (i >= limb_shift) ? limbs_[i - limb_shift] << bit_shift : 0;
      if (bit_shift != 0 && i > limb_shift) {
        v |= limbs_[i - limb_shift - 1] >> (64 - bit_shift);
      }
      limbs_[i] = v;
    }
    return *this;
  }

  constexpr WideUInt& operator>>=(usize n) {
    if (n >= kBits) {
      *this = Zero();
      return *this;
    }
    const usize limb_shift = n / 64;
    const usize bit_shift = n % 64;
    for (usize i = 0; i < kLimbs; ++i) {
      u64 v = (i + limb_shift < kLimbs) ? limbs_[i + limb_shift] >> bit_shift : 0;
      if (bit_shift != 0 && i + limb_shift + 1 < kLimbs) {
        v |= limbs_[i + limb_shift + 1] << (64 - bit_shift);
      }
      limbs_[i] = v;
    }
    return *this;
  }

  friend constexpr WideUInt operator+(WideUInt a, const WideUInt& b) { return a += b; }
  friend constexpr WideUInt operator-(WideUInt a, const WideUInt& b) { return a -= b; }
  friend constexpr WideUInt operator&(WideUInt a, const WideUInt& b) { return a &= b; }
  friend constexpr WideUInt operator|(WideUInt a, const WideUInt& b) { return a |= b; }
  friend constexpr WideUInt operator^(WideUInt a, const WideUInt& b) { return a ^= b; }
  friend constexpr WideUInt operator<<(WideUInt a, usize n) { return a <<= n; }
  friend constexpr WideUInt operator>>(WideUInt a, usize n) { return a >>= n; }

  constexpr WideUInt& operator++() {
    *this += WideUInt(1);
    return *this;
  }

  // Number of leading zero bits; kBits when the value is zero.
  constexpr usize CountLeadingZeros() const {
    usize count = 0;
    for (usize i = kLimbs; i-- > 0;) {
      if (limbs_[i] == 0) {
        count += 64;
        continue;
      }
      u64 v = limbs_[i];
      while ((v & (u64{1} << 63)) == 0) {
        ++count;
        v <<= 1;
      }
      return count;
    }
    return kBits;
  }

  constexpr usize PopCount() const {
    usize count = 0;
    for (u64 limb : limbs_) {
      u64 v = limb;
      while (v != 0) {
        v &= v - 1;
        ++count;
      }
    }
    return count;
  }

  std::string ToHex() const;

 private:
  std::array<u64, kLimbs> limbs_{};
};

// Bus-width words used by the NetFPGA model (§5.1: SUME native 256-bit
// datapath) and the bus-width ablation.
using Word128 = WideUInt<128>;
using Word256 = WideUInt<256>;
using Word512 = WideUInt<512>;

namespace wide_word_detail {
std::string LimbsToHex(const u64* limbs, usize n);
}  // namespace wide_word_detail

template <usize Bits>
std::string WideUInt<Bits>::ToHex() const {
  return wide_word_detail::LimbsToHex(limbs_.data(), kLimbs);
}

}  // namespace emu

#endif  // SRC_COMMON_WIDE_WORD_H_
