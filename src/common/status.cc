#include "src/common/status.h"

namespace emu {

std::string_view ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "OK";
    case ErrorCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case ErrorCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case ErrorCode::kNotFound:
      return "NOT_FOUND";
    case ErrorCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case ErrorCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case ErrorCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case ErrorCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case ErrorCode::kMalformedPacket:
      return "MALFORMED_PACKET";
    case ErrorCode::kUnsupportedProtocol:
      return "UNSUPPORTED_PROTOCOL";
    case ErrorCode::kTimeout:
      return "TIMEOUT";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  std::string out(ErrorCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace emu
